"""Figure 8: programs where pass effects diverge between x86 and RISC Zero."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_figure8_divergence(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure8_divergence,
        args=(runner, BENCH_BENCHMARKS[:6], BENCH_PASSES[:8]),
        iterations=1, rounds=1)
    print()
    for name, counts in result.items():
        print("Figure 8", name, counts)
    assert set(result) == set(BENCH_PASSES[:8])
