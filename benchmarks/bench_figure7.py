"""Figure 7: average impact of each optimization on zkVMs vs x86."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_figure7_zkvm_vs_x86(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure7_zkvm_vs_x86,
        args=(runner, BENCH_BENCHMARKS[:5], BENCH_PASSES[:8]),
        iterations=1, rounds=1)
    print()
    for name, row in result.items():
        print(f"Figure 7 {name:14s} zkVM exec {row['zkvm_execution']:+.1f}% "
              f"prove {row['zkvm_proving']:+.1f}% x86 {row['x86_execution']:+.1f}%")
    assert "-O3" in result
