"""Compiler-throughput microbenchmarks: frontend, pass pipeline, backend, emulator."""
from repro.backend import compile_module
from repro.benchmarks import get_benchmark
from repro.emulator import run_program
from repro.frontend import compile_source
from repro.passes import pipeline_for_level


def test_frontend_throughput(benchmark):
    source = get_benchmark("polybench-gemm").source
    module = benchmark(compile_source, source)
    assert module.get_function("main") is not None


def test_o3_pipeline_throughput(benchmark):
    module = compile_source(get_benchmark("polybench-gemm").source)

    def run():
        clone = module.clone()
        pipeline_for_level("-O3").run(clone)
        return clone

    optimized = benchmark(run)
    # -O3 may grow *static* code (inlining, unrolling); it must stay well formed
    # and keep the entry point.
    assert optimized.get_function("main") is not None
    assert optimized.instruction_count() > 0


def test_backend_throughput(benchmark):
    module = compile_source(get_benchmark("polybench-gemm").source)
    program = benchmark(compile_module, module.clone())
    assert program.total_static_instructions() > 0


def test_emulator_throughput(benchmark):
    program = compile_module(compile_source(get_benchmark("fibonacci").source))
    stats = benchmark(run_program, program)
    assert stats.instructions > 0
