"""Engine throughput report: serial runner vs parallel engine vs warm cache.

Measures the same (benchmark, profile) matrix three ways and prints the wall
time of each, so future PRs (async backends, distributed shards) can track
the speedup:

* ``serial``   — a plain :class:`BenchmarkRunner` looping over the matrix;
* ``parallel`` — a cold :class:`ExperimentEngine` sharding the matrix across
  worker processes into a fresh disk cache;
* ``warm``     — a second engine on the same cache directory (must report
  zero computed measurements).

Runs standalone (``make bench-engine`` / ``python benchmarks/bench_engine.py``)
and as a pytest target under the bench harness.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

MATRIX_BENCHMARKS = ["fibonacci", "loop-sum", "tailcall", "factorial",
                     "polybench-trisolv", "npb-is"]
MATRIX_PROFILES = ["baseline", "-O1", "-O2"]


def _pairs():
    from repro.experiments import profile_by_name

    return [(benchmark, profile_by_name(profile))
            for benchmark in MATRIX_BENCHMARKS for profile in MATRIX_PROFILES]


def run_report(workers: int | None = None, echo=print) -> dict:
    """Time the three execution modes; returns {mode: seconds} plus metadata."""
    from repro.analysis.reporting import format_table
    from repro.experiments import BenchmarkRunner, ExperimentEngine

    pairs = _pairs()
    workers = workers or (os.cpu_count() or 1)

    start = time.perf_counter()
    serial_results = BenchmarkRunner().measure_pairs(pairs)
    serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold = ExperimentEngine(workers=workers, cache_dir=cache_dir,
                                parallel_threshold=1)
        start = time.perf_counter()
        cold_results = cold.measure_pairs(pairs)
        cold_s = time.perf_counter() - start

        warm = ExperimentEngine(workers=workers, cache_dir=cache_dir,
                                parallel_threshold=1)
        start = time.perf_counter()
        warm.measure_pairs(pairs)
        warm_s = time.perf_counter() - start

        assert [m.as_dict() for m in serial_results] == \
            [m.as_dict() for m in cold_results], "engine results diverge from serial"
        assert warm.stats.computed == 0, "warm cache must not re-emulate"

    echo(format_table(
        ["mode", "wall s", "speedup vs serial", "jobs"],
        [["serial (BenchmarkRunner)", serial_s, 1.0, len(pairs)],
         [f"parallel cold ({workers} workers)", cold_s,
          serial_s / cold_s if cold_s else float("inf"), len(pairs)],
         ["warm disk cache", warm_s,
          serial_s / warm_s if warm_s else float("inf"), len(pairs)]],
        title=f"Engine throughput: {len(MATRIX_BENCHMARKS)} benchmarks × "
              f"{len(MATRIX_PROFILES)} profiles"))
    return {"serial_s": serial_s, "parallel_s": cold_s, "warm_s": warm_s,
            "workers": workers, "jobs": len(pairs)}


def test_engine_throughput():
    """Bench-harness entry: warm cache must beat serial by a wide margin."""
    report = run_report()
    assert report["warm_s"] < report["serial_s"]


if __name__ == "__main__":
    run_report()
