"""Table 3: manual 4x/16x loop unrolling of the Figure 12 mat-vec kernel."""
from repro.experiments import tables


def test_table3_manual_unrolling(benchmark):
    result = benchmark.pedantic(tables.table3_manual_unrolling, iterations=1, rounds=3)
    print()
    for factor, row in result.items():
        print(f"Table 3 [{factor}x]:", {k: round(v, 1) for k, v in row.items()})
    assert all(row["risc0_exec_gain"] > 0 for row in result.values())
