"""Backend code-quality report: the optimizing backend vs the preserved seed.

Compiles every seed benchmark at ``-O3`` (the paper's CPU-tuned profile)
through both backends —

* ``opt``  — the optimizing backend of :func:`repro.backend.compile_module`:
  immediate-folding lowering with per-block constant/address reuse and
  loop-invariant hoisting, the machine-level peephole pass, and the
  hole-aware, loop-weighted linear-scan allocator;
* ``seed`` — the preserved pre-overhaul backend
  (:mod:`repro.backend.seed_lowering`): eager materialization, per-phi
  staging registers, single-range linear scan, no machine-level cleanup —

replays both on the emulator, and evaluates the RISC Zero cost model on each
trace.  Every emitted instruction is *proven* on a zkVM, so the acceptance
bar is the **geomean reduction in RISC Zero total cycles** (user + paging)
across all 58 benchmarks: ≥10% locally, relaxed via ``--min-reduction`` in
CI.  Guest outputs must match between the two backends for every benchmark
(the full differential suite lives in ``tests/test_backend_differential.py``).

``make bench-backend`` writes ``BENCH_backend.json`` so the code-quality
trajectory is tracked across PRs.  Runs standalone
(``python benchmarks/bench_backend.py [--json PATH]``) and as a pytest
target under the bench harness.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The optimizing backend must reduce RISC Zero total cycles by this fraction
#: (geomean across the suite) versus the preserved seed backend.
REQUIRED_REDUCTION = 0.10

#: Instruction budget per run; a few -O3 kernels legitimately run long.
MAX_INSTRUCTIONS = 80_000_000


def _measure(program, benchmark):
    """Replay ``program`` and return (trace, risc0_metrics, sp1_metrics)."""
    from repro.emulator import Machine
    from repro.zkvm.models import ZKVMS

    machine = Machine(program, max_instructions=MAX_INSTRUCTIONS,
                      input_values=benchmark.inputs)
    trace = machine.run("main", benchmark.args)
    risc0 = ZKVMS["risc0"].evaluate(trace, machine.page_in_events,
                                    machine.page_out_events)
    sp1 = ZKVMS["sp1"].evaluate(trace, machine.page_in_events,
                                machine.page_out_events)
    return trace, risc0, sp1


def run_report(benchmarks=None, echo=print) -> dict:
    """Compile + replay every benchmark under both backends; returns the report."""
    from repro.analysis.reporting import format_table
    from repro.backend import compile_module
    from repro.benchmarks import all_benchmark_names, get_benchmark
    from repro.experiments.profiles import profile_by_name
    from repro.frontend import compile_source
    from repro.passes import PassManager

    names = benchmarks or all_benchmark_names()
    profile = profile_by_name("-O3")

    per_benchmark: dict[str, dict] = {}
    log_ratio_sum = 0.0
    totals = {"seed_cycles": 0, "opt_cycles": 0,
              "seed_instructions": 0, "opt_instructions": 0,
              "seed_static": 0, "opt_static": 0}
    for name in names:
        benchmark = get_benchmark(name)
        module = compile_source(benchmark.source, module_name=name)
        PassManager(profile.passes, profile.config).run(module)
        seed_program = compile_module(module, profile.cost_model,
                                      seed_backend=True)
        opt_program = compile_module(module, profile.cost_model)

        seed_trace, seed_risc0, _ = _measure(seed_program, benchmark)
        opt_trace, opt_risc0, opt_sp1 = _measure(opt_program, benchmark)
        if (seed_trace.output, seed_trace.return_value) != \
                (opt_trace.output, opt_trace.return_value):
            raise AssertionError(
                f"{name}: seed and optimizing backends disagree on guest "
                f"output — run tests/test_backend_differential.py")

        ratio = opt_risc0.total_cycles / seed_risc0.total_cycles
        log_ratio_sum += math.log(ratio)
        per_benchmark[name] = {
            "seed_total_cycles": seed_risc0.total_cycles,
            "opt_total_cycles": opt_risc0.total_cycles,
            "cycle_ratio": ratio,
            "seed_instructions": seed_trace.instructions,
            "opt_instructions": opt_trace.instructions,
            "seed_static": seed_program.total_static_instructions(),
            "opt_static": opt_program.total_static_instructions(),
            "opt_sp1_cycles": opt_sp1.total_cycles,
        }
        totals["seed_cycles"] += seed_risc0.total_cycles
        totals["opt_cycles"] += opt_risc0.total_cycles
        totals["seed_instructions"] += seed_trace.instructions
        totals["opt_instructions"] += opt_trace.instructions
        totals["seed_static"] += seed_program.total_static_instructions()
        totals["opt_static"] += opt_program.total_static_instructions()

    geomean_ratio = math.exp(log_ratio_sum / len(names))
    aggregate = {
        "benchmarks": len(names),
        "profile": profile.name,
        "geomean_cycle_ratio": geomean_ratio,
        "geomean_reduction": 1.0 - geomean_ratio,
        "required_reduction": REQUIRED_REDUCTION,
        **totals,
    }

    top = sorted(per_benchmark.items(), key=lambda item: item[1]["cycle_ratio"])
    rows = [[name, data["seed_total_cycles"], data["opt_total_cycles"],
             f"{(1 - data['cycle_ratio']) * 100:.1f}%"]
            for name, data in top[:10] + top[-3:]]
    echo(format_table(
        ["benchmark", "seed cycles", "opt cycles", "reduction"],
        rows, title=f"RISC Zero total cycles at -O3 (best 10 / worst 3 of "
                    f"{len(names)} benchmarks)"))
    echo(f"aggregate: geomean cycle reduction "
         f"{(1 - geomean_ratio) * 100:.1f}% "
         f"(required: {REQUIRED_REDUCTION * 100:.0f}%) | dynamic instructions "
         f"{totals['seed_instructions']} -> {totals['opt_instructions']} | "
         f"static {totals['seed_static']} -> {totals['opt_static']}")
    return {"aggregate": aggregate, "per_benchmark": per_benchmark}


def test_backend_code_quality():
    """Bench-harness entry: the optimizing backend must hold its bar."""
    report = run_report()
    assert report["aggregate"]["geomean_reduction"] >= REQUIRED_REDUCTION


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    parser.add_argument("--benchmarks", nargs="+",
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--min-reduction", type=float,
                        default=REQUIRED_REDUCTION,
                        help="geomean cycle-reduction bar to enforce "
                             f"(default: {REQUIRED_REDUCTION})")
    args = parser.parse_args(argv)
    report = run_report(benchmarks=args.benchmarks)
    report["aggregate"]["enforced_reduction"] = args.min_reduction
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    reduction = report["aggregate"]["geomean_reduction"]
    if reduction < args.min_reduction:
        print(f"FAIL: geomean RISC Zero cycle reduction "
              f"{reduction * 100:.1f}% is below the "
              f"{args.min_reduction * 100:.0f}% bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
