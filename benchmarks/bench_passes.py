"""Pass-pipeline compile-time report: invalidation-aware analysis caching
vs the preserved seed pass manager.

Compiles every seed benchmark under both paper profiles (CPU-tuned ``-O3``
and the zkVM-aware ``-O3-zkvm``) through three pipelines:

* ``cached``  — the default :class:`~repro.passes.pass_manager.PassManager`:
  per-function analyses cached by the
  :class:`~repro.passes.analysis.AnalysisManager` with preserves-driven
  invalidation, CFG-version-validated predecessor/reachability maps, and
  no-op pass skipping;
* ``fresh``   — the ``--no-analysis-cache`` escape hatch: identical code, but
  every analysis and CFG query recomputed per use (the differential-testing
  oracle; byte-identical output to ``cached``);
* ``seed``    — the preserved seed pass manager
  (:mod:`repro.passes.seed_analysis`): the seed's analysis implementations
  *and* the seed's IR hot-path cost model (per-query predecessor scans,
  isinstance-chain instruction classification, per-call interpreter imports),
  measured on the same workload.

The acceptance bar is the aggregate ``seed / cached`` wall-time ratio across
all benchmarks: ≥1.5x locally, relaxed via ``--min-speedup`` in CI.  Each
(pipeline, benchmark, profile) cell is the best of ``--repeats`` runs, with
the pipelines interleaved per benchmark so machine-load drift hits all three
equally.  ``make bench-passes`` writes ``BENCH_passes.json`` so the
compile-time trajectory is tracked across PRs.

Runs standalone (``python benchmarks/bench_passes.py [--json PATH]``) and as
a pytest target under the bench harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The cached pipeline must beat the preserved seed pass manager by this much.
REQUIRED_SPEEDUP = 1.5

#: Pipeline modes measured per benchmark, as PassManager keyword arguments.
MODES = {
    "cached": {"analysis_cache": True},
    "fresh": {"analysis_cache": False},
    "seed": {"seed_baseline": True},
}


def _profiles():
    from repro.experiments.profiles import profile_by_name, zkvm_aware_profile

    return [profile_by_name("-O3"), zkvm_aware_profile()]


def run_report(benchmarks=None, repeats: int = 3, echo=print) -> dict:
    """Time every benchmark × profile × pipeline mode; returns the report."""
    from repro.analysis.reporting import format_table
    from repro.benchmarks import all_benchmark_names, get_benchmark
    from repro.frontend import compile_source
    from repro.passes import PassManager

    names = benchmarks or all_benchmark_names()
    profiles = _profiles()
    modules = {name: compile_source(get_benchmark(name).source, module_name=name)
               for name in names}

    per_benchmark: dict[str, dict] = {}
    totals = {mode: 0.0 for mode in MODES}
    cache_stats = {"hits": 0, "computed": 0, "invalidated": 0, "drifted": 0,
                   "skipped": 0}
    for name in names:
        cells = {mode: 0.0 for mode in MODES}
        for profile in profiles:
            best = {mode: None for mode in MODES}
            for repeat in range(repeats):
                # Interleave modes so load drift is shared fairly.
                for mode, kwargs in MODES.items():
                    manager = PassManager(profile.passes, profile.config,
                                          **kwargs)
                    clone = modules[name].clone()
                    start = time.perf_counter()
                    manager.run(clone)
                    elapsed = time.perf_counter() - start
                    if best[mode] is None or elapsed < best[mode]:
                        best[mode] = elapsed
                    # Cache activity is deterministic per compile; count one
                    # repeat so the reported totals mean "per full sweep"
                    # regardless of --repeats.
                    if mode == "cached" and repeat == 0:
                        for key in cache_stats:
                            cache_stats[key] += getattr(manager.analysis.stats,
                                                        key)
            for mode in MODES:
                cells[mode] += best[mode]
        per_benchmark[name] = {
            **{f"{mode}_s": cells[mode] for mode in MODES},
            "speedup_vs_seed": cells["seed"] / cells["cached"],
            "speedup_vs_fresh": cells["fresh"] / cells["cached"],
        }
        for mode in MODES:
            totals[mode] += cells[mode]

    aggregate = {
        "benchmarks": len(names),
        "profiles": [profile.name for profile in profiles],
        "repeats": repeats,
        "cached_s": totals["cached"],
        "fresh_s": totals["fresh"],
        "seed_s": totals["seed"],
        "speedup_vs_seed": totals["seed"] / totals["cached"],
        "speedup_vs_fresh": totals["fresh"] / totals["cached"],
        "required_speedup": REQUIRED_SPEEDUP,
        "analysis_cache": dict(cache_stats),
    }

    top = sorted(per_benchmark.items(), key=lambda item: -item[1]["seed_s"])[:12]
    rows = [[name, round(data["seed_s"] * 1000, 2),
             round(data["fresh_s"] * 1000, 2),
             round(data["cached_s"] * 1000, 2),
             round(data["speedup_vs_seed"], 2)]
            for name, data in top]
    echo(format_table(
        ["benchmark", "seed ms", "fresh ms", "cached ms", "speedup"],
        rows, title=f"Pipeline compile time (top {len(rows)} of {len(names)} "
                    "benchmarks by seed wall time; both profiles summed)"))
    stats = aggregate["analysis_cache"]
    requests = stats["hits"] + stats["computed"]
    echo(f"analysis cache: {stats['hits']}/{requests} hits, "
         f"{stats['invalidated']} invalidated, {stats['drifted']} drifted, "
         f"{stats['skipped']} no-op pass runs skipped")
    echo(f"aggregate: seed {totals['seed']:.3f}s | fresh {totals['fresh']:.3f}s"
         f" | cached {totals['cached']:.3f}s"
         f" | speedup {aggregate['speedup_vs_seed']:.2f}x vs seed /"
         f" {aggregate['speedup_vs_fresh']:.2f}x vs fresh"
         f" (required: {REQUIRED_SPEEDUP:.1f}x vs seed)")
    return {"aggregate": aggregate, "per_benchmark": per_benchmark}


def test_pass_pipeline_compile_time():
    """Bench-harness entry: the cached pipeline must hold its bar vs seed."""
    report = run_report()
    assert report["aggregate"]["speedup_vs_seed"] >= REQUIRED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    parser.add_argument("--benchmarks", nargs="+",
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell; best is kept")
    parser.add_argument("--min-speedup", type=float, default=REQUIRED_SPEEDUP,
                        help="aggregate seed/cached bar to enforce "
                             f"(default: {REQUIRED_SPEEDUP})")
    args = parser.parse_args(argv)
    report = run_report(benchmarks=args.benchmarks, repeats=args.repeats)
    report["aggregate"]["enforced_speedup"] = args.min_speedup
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    speedup = report["aggregate"]["speedup_vs_seed"]
    if speedup < args.min_speedup:
        print(f"FAIL: aggregate speedup {speedup:.2f}x vs the seed pass "
              f"manager is below the {args.min_speedup:.1f}x bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
