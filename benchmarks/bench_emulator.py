"""Emulator throughput report: pre-decoded fast path vs seed interpreter.

Replays the full seed benchmark suite (baseline profile) three ways and
reports Minstr/s per benchmark plus the aggregate:

* ``reference`` — the seed per-instruction interpreter
  (:class:`~repro.emulator.reference.ReferenceMachine`);
* ``fast cold`` — the production :class:`~repro.emulator.machine.Machine` on a
  freshly compiled program (timing includes the one-off decode);
* ``fast warm`` — a second replay of the same program, decoded stream cached.

The acceptance bar for the decode-once pipeline is an aggregate fast/reference
speedup of at least 3x.  ``make bench-emulator`` writes ``BENCH_emulator.json``
so the throughput trajectory is tracked across PRs.

Runs standalone (``python benchmarks/bench_emulator.py [--json PATH]``) and as
a pytest target under the bench harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The fast path must beat the seed interpreter by at least this factor.
REQUIRED_SPEEDUP = 3.0


def _compile(name: str):
    from repro.backend import compile_module
    from repro.benchmarks import get_benchmark
    from repro.frontend import compile_source

    return compile_module(compile_source(get_benchmark(name).source,
                                         module_name=name))


def run_report(benchmarks=None, echo=print) -> dict:
    """Measure every benchmark on both interpreters; returns the report dict."""
    from repro.analysis.reporting import format_table
    from repro.benchmarks import all_benchmark_names, get_benchmark
    from repro.emulator import Machine, ReferenceMachine

    names = benchmarks or all_benchmark_names()
    rows = []
    per_benchmark = {}
    totals = {"instructions": 0, "reference_s": 0.0, "cold_s": 0.0,
              "warm_s": 0.0}
    for name in names:
        benchmark = get_benchmark(name)
        program = _compile(name)
        args = benchmark.args

        start = time.perf_counter()
        ref = ReferenceMachine(program, input_values=benchmark.inputs)
        ref_stats = ref.run("main", args)
        reference_s = time.perf_counter() - start

        # Cold: decode happens inside Machine construction on a fresh program.
        if hasattr(program, "_decoded_cache"):
            del program._decoded_cache
        start = time.perf_counter()
        fast = Machine(program, input_values=benchmark.inputs)
        fast_stats = fast.run("main", args)
        cold_s = time.perf_counter() - start

        # Warm: same program object, decoded stream already cached.
        start = time.perf_counter()
        warm_stats = Machine(program, input_values=benchmark.inputs).run(
            "main", args)
        warm_s = time.perf_counter() - start

        assert fast_stats == ref_stats, f"fast path diverged on {name}"
        assert warm_stats == ref_stats, f"warm fast path diverged on {name}"

        instructions = ref_stats.instructions
        per_benchmark[name] = {
            "instructions": instructions,
            "reference_minstr_s": instructions / reference_s / 1e6,
            "fast_cold_minstr_s": instructions / cold_s / 1e6,
            "fast_warm_minstr_s": instructions / warm_s / 1e6,
            "speedup_cold": reference_s / cold_s,
            "speedup_warm": reference_s / warm_s,
        }
        totals["instructions"] += instructions
        totals["reference_s"] += reference_s
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s

    top = sorted(per_benchmark.items(),
                 key=lambda item: -item[1]["instructions"])[:12]
    for name, data in top:
        rows.append([name, data["instructions"],
                     round(data["reference_minstr_s"], 2),
                     round(data["fast_cold_minstr_s"], 2),
                     round(data["fast_warm_minstr_s"], 2),
                     round(data["speedup_warm"], 2)])

    aggregate = {
        "benchmarks": len(names),
        "instructions": totals["instructions"],
        "reference_minstr_s": totals["instructions"] / totals["reference_s"] / 1e6,
        "fast_cold_minstr_s": totals["instructions"] / totals["cold_s"] / 1e6,
        "fast_warm_minstr_s": totals["instructions"] / totals["warm_s"] / 1e6,
        "speedup_cold": totals["reference_s"] / totals["cold_s"],
        "speedup_warm": totals["reference_s"] / totals["warm_s"],
        "required_speedup": REQUIRED_SPEEDUP,
    }

    echo(format_table(
        ["benchmark", "instrs", "ref Mi/s", "cold Mi/s", "warm Mi/s",
         "speedup"],
        rows, title=f"Emulator throughput (top {len(rows)} of {len(names)} "
                    "benchmarks by dynamic instructions)"))
    echo(f"aggregate: reference {aggregate['reference_minstr_s']:.2f} Minstr/s"
         f" | fast cold {aggregate['fast_cold_minstr_s']:.2f}"
         f" | fast warm {aggregate['fast_warm_minstr_s']:.2f}"
         f" | speedup {aggregate['speedup_cold']:.2f}x cold /"
         f" {aggregate['speedup_warm']:.2f}x warm"
         f" (required: {REQUIRED_SPEEDUP:.1f}x)")
    return {"aggregate": aggregate, "per_benchmark": per_benchmark}


def test_emulator_throughput():
    """Bench-harness entry: the decode-once fast path must hold its 3x bar."""
    report = run_report()
    assert report["aggregate"]["speedup_cold"] >= REQUIRED_SPEEDUP
    assert report["aggregate"]["speedup_warm"] >= REQUIRED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    parser.add_argument("--benchmarks", nargs="+",
                        help="subset of benchmark names (default: all)")
    args = parser.parse_args(argv)
    report = run_report(benchmarks=args.benchmarks)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    ok = report["aggregate"]["speedup_cold"] >= REQUIRED_SPEEDUP
    if not ok:
        print(f"FAIL: aggregate cold speedup "
              f"{report['aggregate']['speedup_cold']:.2f}x is below the "
              f"{REQUIRED_SPEEDUP:.1f}x bar", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
