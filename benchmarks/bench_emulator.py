"""Emulator throughput report: pre-decoded fast path vs seed interpreter.

Replays the full seed benchmark suite (baseline profile) three ways and
reports Minstr/s per benchmark plus the aggregate:

* ``reference`` — the seed per-instruction interpreter
  (:class:`~repro.emulator.reference.ReferenceMachine`);
* ``fast cold`` — the production :class:`~repro.emulator.machine.Machine` on a
  freshly compiled program (timing includes the one-off decode);
* ``fast warm`` — a second replay of the same program, decoded stream cached;
* ``batched`` (``--batched``) — N lockstep lanes through the NumPy
  :class:`~repro.emulator.batched.BatchedMachine`, reported as *aggregate*
  Minstr/s (all lanes' instructions over one wall clock);
* ``translated`` (``--translated``) — single-stream replay through the
  superblock-translating :class:`~repro.emulator.translate.TranslatedMachine`,
  with byte-for-byte parity (TraceStats, page events, final memory) asserted
  against the warm ``Machine`` replay of every benchmark.

Every timing repeats its workload until a minimum wall-clock duration
(default 0.2s) and reports the per-replay average, so 114-instruction
benchmarks (``ecdsa-verify``, ``eddsa-verify``) no longer produce
single-timer-tick noise instead of throughput.

The acceptance bars: the decode-once fast path must hold an aggregate
fast/reference speedup of at least 3x; with ``--batched`` the batched
aggregate must beat the single-stream warm aggregate by at least
``--min-batched-speedup`` (default 5x, the CI bar; the local target at 256
lanes is 20x+); with ``--translated`` the translated single-stream aggregate
must beat the warm aggregate by at least ``--min-translated-speedup``
(default 4x).  ``make bench-emulator`` / ``make bench-emulator-batched``
write ``BENCH_emulator.json`` so the throughput trajectory is tracked across
PRs.

Runs standalone (``python benchmarks/bench_emulator.py [--json PATH]``) and as
a pytest target under the bench harness.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: The fast path must beat the seed interpreter by at least this factor.
REQUIRED_SPEEDUP = 3.0
#: The batched aggregate must beat the warm single-stream aggregate by at
#: least this factor (the CI bar; locally 256 lanes lands well above 20x).
REQUIRED_BATCHED_SPEEDUP = 5.0
#: The translated single-stream aggregate must beat the warm fast-path
#: aggregate by at least this factor.
REQUIRED_TRANSLATED_SPEEDUP = 4.0
#: Default lane count for the batched pass.
DEFAULT_LANES = 256
#: Repeat each timed workload until it has run at least this long, then
#: report the per-replay average — tiny benchmarks otherwise measure timer
#: granularity, not throughput.
MIN_DURATION_S = 0.2


def _compile(name: str):
    from repro.backend import compile_module
    from repro.benchmarks import get_benchmark
    from repro.frontend import compile_source

    return compile_module(compile_source(get_benchmark(name).source,
                                         module_name=name))


def _timed(once, min_seconds: float):
    """Average per-replay seconds of ``once()``, repeated to ``min_seconds``.

    The first replay's return value is kept (for the parity assertions);
    subsequent replays only accumulate wall clock.
    """
    start = time.perf_counter()
    result = once()
    total = time.perf_counter() - start
    repeats = 1
    while total < min_seconds:
        start = time.perf_counter()
        once()
        total += time.perf_counter() - start
        repeats += 1
    return total / repeats, result


def run_report(benchmarks=None, echo=print, batched_lanes=None,
               translated=False, min_seconds: float = MIN_DURATION_S) -> dict:
    """Measure every benchmark on both interpreters; returns the report dict.

    ``batched_lanes`` adds the batched lockstep pass at that lane count (and
    its per-lane differential check against the single-stream trace);
    ``translated`` adds the superblock-translation pass (with full
    byte-for-byte parity checks against the warm single-stream machine).
    """
    from repro.analysis.reporting import format_table
    from repro.benchmarks import all_benchmark_names, get_benchmark
    from repro.emulator import Machine, ReferenceMachine, TranslatedMachine

    if batched_lanes:
        from repro.emulator.batched import BatchedMachine, require_numpy

        require_numpy()

    names = benchmarks or all_benchmark_names()
    rows = []
    per_benchmark = {}
    totals = {"instructions": 0, "reference_s": 0.0, "cold_s": 0.0,
              "warm_s": 0.0, "batched_instructions": 0, "batched_s": 0.0,
              "translated_s": 0.0}
    for name in names:
        benchmark = get_benchmark(name)
        program = _compile(name)
        args = benchmark.args

        reference_s, ref_stats = _timed(
            lambda: ReferenceMachine(program, input_values=benchmark.inputs)
            .run("main", args), min_seconds)

        # Cold: decode happens inside Machine construction on a fresh program
        # (the cache is dropped every replay so each one pays the decode).
        def cold_once():
            if hasattr(program, "_decoded_cache"):
                del program._decoded_cache
            return Machine(program, input_values=benchmark.inputs).run(
                "main", args)

        cold_s, fast_stats = _timed(cold_once, min_seconds)

        # Warm: same program object, decoded stream already cached.  The
        # machine object is kept so the translated pass can compare page
        # events and final memory byte-for-byte.
        def warm_once():
            machine = Machine(program, input_values=benchmark.inputs)
            machine.run("main", args)
            return machine

        warm_s, warm_machine = _timed(warm_once, min_seconds)
        warm_stats = warm_machine.stats

        assert fast_stats == ref_stats, f"fast path diverged on {name}"
        assert warm_stats == ref_stats, f"warm fast path diverged on {name}"

        instructions = ref_stats.instructions
        per_benchmark[name] = {
            "instructions": instructions,
            "reference_minstr_s": instructions / reference_s / 1e6,
            "fast_cold_minstr_s": instructions / cold_s / 1e6,
            "fast_warm_minstr_s": instructions / warm_s / 1e6,
            "speedup_cold": reference_s / cold_s,
            "speedup_warm": reference_s / warm_s,
        }
        totals["instructions"] += instructions
        totals["reference_s"] += reference_s
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s

        if batched_lanes:
            batched_s, lane_stats = _timed(
                lambda: BatchedMachine(program, batched_lanes,
                                       input_values=benchmark.inputs)
                .run("main", args=args), min_seconds)
            for lane, stats in enumerate(lane_stats):
                assert stats == ref_stats, \
                    f"batched lane {lane} diverged on {name}"
            batched_instructions = instructions * batched_lanes
            data = per_benchmark[name]
            data["batched_minstr_s"] = batched_instructions / batched_s / 1e6
            data["batched_speedup"] = (data["batched_minstr_s"]
                                       / data["fast_warm_minstr_s"])
            totals["batched_instructions"] += batched_instructions
            totals["batched_s"] += batched_s

        if translated:
            def translated_once():
                machine = TranslatedMachine(program,
                                            input_values=benchmark.inputs)
                machine.run("main", args)
                return machine

            # Warm the code cache first (mirrors the warm fast-path pass,
            # whose decode cost was likewise paid outside the timing): the
            # one-off superblock compilation happens here, untimed.
            translated_once()
            translated_s, trans_machine = _timed(translated_once, min_seconds)
            assert trans_machine.stats == ref_stats, \
                f"translated engine diverged on {name}"
            assert trans_machine.page_in_events == \
                warm_machine.page_in_events, f"page-in events on {name}"
            assert trans_machine.page_out_events == \
                warm_machine.page_out_events, f"page-out events on {name}"
            assert trans_machine.memory == warm_machine.memory, \
                f"final memory on {name}"
            data = per_benchmark[name]
            data["translated_minstr_s"] = instructions / translated_s / 1e6
            data["translated_speedup"] = warm_s / translated_s
            totals["translated_s"] += translated_s

    top = sorted(per_benchmark.items(),
                 key=lambda item: -item[1]["instructions"])[:12]
    for name, data in top:
        row = [name, data["instructions"],
               round(data["reference_minstr_s"], 2),
               round(data["fast_cold_minstr_s"], 2),
               round(data["fast_warm_minstr_s"], 2),
               round(data["speedup_warm"], 2)]
        if batched_lanes:
            row.append(round(data["batched_minstr_s"], 2))
            row.append(round(data["batched_speedup"], 2))
        if translated:
            row.append(round(data["translated_minstr_s"], 2))
            row.append(round(data["translated_speedup"], 2))
        rows.append(row)

    aggregate = {
        "benchmarks": len(names),
        "instructions": totals["instructions"],
        "reference_minstr_s": totals["instructions"] / totals["reference_s"] / 1e6,
        "fast_cold_minstr_s": totals["instructions"] / totals["cold_s"] / 1e6,
        "fast_warm_minstr_s": totals["instructions"] / totals["warm_s"] / 1e6,
        "speedup_cold": totals["reference_s"] / totals["cold_s"],
        "speedup_warm": totals["reference_s"] / totals["warm_s"],
        "required_speedup": REQUIRED_SPEEDUP,
        "min_duration_s": min_seconds,
    }
    if batched_lanes:
        aggregate["batched_lanes"] = batched_lanes
        aggregate["batched_minstr_s"] = (totals["batched_instructions"]
                                         / totals["batched_s"] / 1e6)
        aggregate["batched_speedup"] = (aggregate["batched_minstr_s"]
                                        / aggregate["fast_warm_minstr_s"])
        aggregate["required_batched_speedup"] = REQUIRED_BATCHED_SPEEDUP
    if translated:
        aggregate["translated_minstr_s"] = (totals["instructions"]
                                            / totals["translated_s"] / 1e6)
        aggregate["translated_speedup"] = (totals["warm_s"]
                                           / totals["translated_s"])
        aggregate["required_translated_speedup"] = REQUIRED_TRANSLATED_SPEEDUP

    headers = ["benchmark", "instrs", "ref Mi/s", "cold Mi/s", "warm Mi/s",
               "speedup"]
    if batched_lanes:
        headers += [f"batch({batched_lanes}) Mi/s", "batch speedup"]
    if translated:
        headers += ["xlate Mi/s", "xlate speedup"]
    echo(format_table(
        headers, rows,
        title=f"Emulator throughput (top {len(rows)} of {len(names)} "
              "benchmarks by dynamic instructions)"))
    echo(f"aggregate: reference {aggregate['reference_minstr_s']:.2f} Minstr/s"
         f" | fast cold {aggregate['fast_cold_minstr_s']:.2f}"
         f" | fast warm {aggregate['fast_warm_minstr_s']:.2f}"
         f" | speedup {aggregate['speedup_cold']:.2f}x cold /"
         f" {aggregate['speedup_warm']:.2f}x warm"
         f" (required: {REQUIRED_SPEEDUP:.1f}x)")
    if batched_lanes:
        echo(f"batched:   {aggregate['batched_minstr_s']:.2f} Minstr/s "
             f"aggregate over {batched_lanes} lanes | "
             f"{aggregate['batched_speedup']:.2f}x warm single-stream "
             f"(required: {REQUIRED_BATCHED_SPEEDUP:.1f}x)")
    if translated:
        echo(f"translated: {aggregate['translated_minstr_s']:.2f} Minstr/s "
             f"single-stream | {aggregate['translated_speedup']:.2f}x warm "
             f"(required: {REQUIRED_TRANSLATED_SPEEDUP:.1f}x)")
    return {"aggregate": aggregate, "per_benchmark": per_benchmark}


def test_emulator_throughput():
    """Bench-harness entry: the decode-once fast path must hold its 3x bar."""
    report = run_report()
    assert report["aggregate"]["speedup_cold"] >= REQUIRED_SPEEDUP
    assert report["aggregate"]["speedup_warm"] >= REQUIRED_SPEEDUP


def test_emulator_batched_throughput():
    """Bench-harness entry: batched lockstep must hold its aggregate bar."""
    from repro.emulator import numpy_available

    if not numpy_available():  # pragma: no cover - CI images ship numpy
        import pytest

        pytest.skip("numpy not installed")
    report = run_report(batched_lanes=DEFAULT_LANES)
    assert report["aggregate"]["batched_speedup"] >= REQUIRED_BATCHED_SPEEDUP


def test_emulator_translated_throughput():
    """Bench-harness entry: superblock translation must hold its 4x bar."""
    report = run_report(translated=True)
    assert report["aggregate"]["translated_speedup"] >= \
        REQUIRED_TRANSLATED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    parser.add_argument("--benchmarks", nargs="+",
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--batched", action="store_true",
                        help="also measure the batched lockstep emulator and "
                             "enforce its aggregate speedup bar")
    parser.add_argument("--lanes", type=int, default=DEFAULT_LANES,
                        help=f"batched lane count (default: {DEFAULT_LANES})")
    parser.add_argument("--min-batched-speedup", type=float,
                        default=REQUIRED_BATCHED_SPEEDUP,
                        help="minimum batched-vs-warm aggregate speedup "
                             f"(default: {REQUIRED_BATCHED_SPEEDUP})")
    parser.add_argument("--translated", action="store_true",
                        help="also measure the superblock-translating engine "
                             "and enforce its aggregate speedup bar")
    parser.add_argument("--min-translated-speedup", type=float,
                        default=REQUIRED_TRANSLATED_SPEEDUP,
                        help="minimum translated-vs-warm aggregate speedup "
                             f"(default: {REQUIRED_TRANSLATED_SPEEDUP})")
    parser.add_argument("--min-seconds", type=float, default=MIN_DURATION_S,
                        help="minimum wall clock per timing before the "
                             f"per-replay average (default: {MIN_DURATION_S})")
    args = parser.parse_args(argv)
    report = run_report(benchmarks=args.benchmarks,
                        batched_lanes=args.lanes if args.batched else None,
                        translated=args.translated,
                        min_seconds=args.min_seconds)
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    ok = report["aggregate"]["speedup_cold"] >= REQUIRED_SPEEDUP
    if not ok:
        print(f"FAIL: aggregate cold speedup "
              f"{report['aggregate']['speedup_cold']:.2f}x is below the "
              f"{REQUIRED_SPEEDUP:.1f}x bar", file=sys.stderr)
    if args.batched:
        batched_ok = (report["aggregate"]["batched_speedup"]
                      >= args.min_batched_speedup)
        if not batched_ok:
            print(f"FAIL: batched aggregate speedup "
                  f"{report['aggregate']['batched_speedup']:.2f}x is below "
                  f"the {args.min_batched_speedup:.1f}x bar", file=sys.stderr)
        ok = ok and batched_ok
    if args.translated:
        translated_ok = (report["aggregate"]["translated_speedup"]
                         >= args.min_translated_speedup)
        if not translated_ok:
            print(f"FAIL: translated aggregate speedup "
                  f"{report['aggregate']['translated_speedup']:.2f}x is "
                  f"below the {args.min_translated_speedup:.1f}x bar",
                  file=sys.stderr)
        ok = ok and translated_ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
