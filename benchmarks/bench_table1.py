"""Table 1: gain/loss instance counts per zkVM (execution & proving)."""
from repro.experiments import tables
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_table1_gain_loss_counts(benchmark, runner):
    result = benchmark.pedantic(
        tables.table1_gain_loss_counts,
        args=(runner, BENCH_BENCHMARKS, BENCH_PASSES),
        iterations=1, rounds=1)
    print()
    for zkvm, counts in result.items():
        print(f"Table 1 [{zkvm}]: {counts}")
    assert result["risc0"]["execution_gain"] + result["risc0"]["execution_loss"] > 0
