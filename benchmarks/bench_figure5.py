"""Figure 5: impact of the standard optimization levels."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS


def test_figure5_optimization_levels(benchmark, runner):
    result = benchmark.pedantic(figures.figure5_optimization_levels,
                                args=(runner, BENCH_BENCHMARKS),
                                iterations=1, rounds=1)
    print()
    for level, row in result.items():
        print(f"Figure 5 {level}: risc0 exec {row[('risc0', 'execution_time')]:+.1f}% "
              f"prove {row[('risc0', 'proving_time')]:+.1f}% | "
              f"sp1 exec {row[('sp1', 'execution_time')]:+.1f}%")
    # Small guest programs are paging-heavy, which dilutes relative gains
    # compared with the paper's larger inputs; the direction must hold.
    assert result["-O3"][("risc0", "execution_time")] > 8
