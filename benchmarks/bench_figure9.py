"""Figure 9: cost-component breakdown for representative passes."""
from repro.experiments import figures


def test_figure9_cost_components(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure9_cost_components,
        kwargs={"runner": runner,
                "benchmarks": ["polybench-floyd-warshall", "factorial", "npb-lu", "tailcall"],
                "profiles": ["inline", "always-inline", "licm", "loop-extract", "-O3", "-O0"]},
        iterations=1, rounds=1)
    print()
    for profile, rows in result.items():
        for bench, row in rows.items():
            print(f"Figure 9 {profile:13s} {bench:26s} exec {row['exec_gain']:+.1f}% "
                  f"instr {row['instructions_change']:+.1f}% paging {row['paging_cycles_change']:+.1f}%")
    assert result["inline"]["polybench-floyd-warshall"]["exec_gain"] is not None
