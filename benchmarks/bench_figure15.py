"""Figure 15: native vs zkVM execution vs proving time (NPB, unoptimized)."""
from repro.experiments import figures


def test_figure15_native_vs_zkvm(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure15_native_vs_zkvm,
        kwargs={"runner": runner, "benchmarks": ["npb-is", "npb-lu", "npb-ep", "npb-mg"]},
        iterations=1, rounds=1)
    print()
    for bench, row in result.items():
        print(f"Figure 15 {bench:8s} native {row['native_execution_s']:.6f}s "
              f"r0-exec {row['risc0_execution_s']:.4f}s r0-prove {row['risc0_proving_s']:.2f}s")
    assert all(r["risc0_proving_s"] > r["native_execution_s"] for r in result.values())
