"""Binary-encoding report: round-trip integrity and RVC code-size reduction.

Compiles every seed benchmark at ``-O3`` through the optimizing backend and
pushes the result through the binary-encoding subsystem
(:mod:`repro.backend.encoding` + :mod:`repro.backend.rvc`), checking three
contracts per benchmark:

* **Round-trip** — ``encode → decode_words → encode_one`` reproduces the
  byte blob exactly, for both the plain RV32I encoding and the
  RVC-compressed one.
* **Stream equality** — the RVC-compressed blob decodes to the *same*
  canonical instruction stream (opcodes, operands, resolved targets) as the
  uncompressed blob, instruction for instruction.
* **Semantics** — the decoded stream reassembles into a program the
  emulator runs to the same guest output and return value as the original.

The acceptance bar is the **geomean RVC code-size reduction** across all 58
benchmarks: ≥20% locally, relaxed via ``--min-reduction`` in CI.  ``make
bench-encoding`` writes ``BENCH_encoding.json`` so the size trajectory is
tracked across PRs.  Runs standalone
(``python benchmarks/bench_encoding.py [--json PATH]``) and as a pytest
target under the bench harness.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: RVC must shrink the binary by this fraction (geomean across the suite).
REQUIRED_REDUCTION = 0.20

#: Instruction budget per semantic replay; a few -O3 kernels run long.
MAX_INSTRUCTIONS = 80_000_000


def _stream(instrs):
    """The comparable fields of a decoded stream (source index excluded)."""
    return [(i.size, i.word, i.opcode, i.operands, i.target) for i in instrs]


def _check_round_trip(program, rvc: bool):
    """Encode/decode/re-encode one program; returns the encoded program."""
    from repro.backend.encoding import decode_words, encode_one, encode_program

    encoded = encode_program(program, rvc=rvc)
    decoded = decode_words(encoded.blob, encoded.base_address)
    blob = bytearray()
    for instr in decoded:
        blob += encode_one(instr).to_bytes(instr.size, "little")
    if bytes(blob) != encoded.blob:
        raise AssertionError("re-encoded blob differs from the original")
    if _stream(decoded) != _stream(encoded.instrs):
        raise AssertionError("decoded stream differs from the encoded one")
    return encoded, decoded


def run_report(benchmarks=None, echo=print) -> dict:
    """Encode every benchmark both ways, verify round-trips, report sizes."""
    from repro.analysis.reporting import format_table
    from repro.backend import compile_module
    from repro.backend.encoding import fold_relaxed_branches, reassemble
    from repro.benchmarks import all_benchmark_names, get_benchmark
    from repro.emulator import run_program
    from repro.experiments.profiles import profile_by_name
    from repro.frontend import compile_source
    from repro.passes import PassManager

    names = benchmarks or all_benchmark_names()
    profile = profile_by_name("-O3")

    per_benchmark: dict[str, dict] = {}
    log_ratio_sum = 0.0
    totals = {"rv32_bytes": 0, "rvc_bytes": 0,
              "instructions": 0, "compressed": 0}
    for name in names:
        benchmark = get_benchmark(name)
        module = compile_source(benchmark.source, module_name=name)
        PassManager(profile.passes, profile.config).run(module)
        program = compile_module(module, profile.cost_model)

        plain, _ = _check_round_trip(program, rvc=False)
        packed, packed_decoded = _check_round_trip(program, rvc=True)

        # The compressed stream must carry the same instructions as the
        # uncompressed one (sizes/addresses differ; meanings must not).
        # Far-branch relaxation is folded first: it is layout-dependent, so
        # the smaller RVC image may legitimately relax fewer branches.
        plain_atoms = fold_relaxed_branches(plain.instrs)
        packed_atoms = fold_relaxed_branches(packed.instrs)
        if plain_atoms != packed_atoms:
            raise AssertionError(
                f"{name}: RVC compression changed the instruction stream")

        # Semantic replay: the reassembled program must behave identically.
        base = run_program(program, args=benchmark.args,
                           input_values=benchmark.inputs,
                           max_instructions=MAX_INSTRUCTIONS)
        lifted = reassemble(packed_decoded, packed.symbols, like=program)
        replay = run_program(lifted, args=benchmark.args,
                             input_values=benchmark.inputs,
                             max_instructions=MAX_INSTRUCTIONS)
        if (base.output, base.return_value) != \
                (replay.output, replay.return_value):
            raise AssertionError(
                f"{name}: reassembled binary diverges from the original "
                f"program on the emulator")

        ratio = packed.code_bytes / plain.code_bytes
        log_ratio_sum += math.log(ratio)
        compressed = sum(1 for instr in packed.instrs if instr.size == 2)
        per_benchmark[name] = {
            "rv32_bytes": plain.code_bytes,
            "rvc_bytes": packed.code_bytes,
            "size_ratio": ratio,
            "instructions": len(packed.instrs),
            "compressed_instructions": compressed,
        }
        totals["rv32_bytes"] += plain.code_bytes
        totals["rvc_bytes"] += packed.code_bytes
        totals["instructions"] += len(packed.instrs)
        totals["compressed"] += compressed

    geomean_ratio = math.exp(log_ratio_sum / len(names))
    aggregate = {
        "benchmarks": len(names),
        "profile": profile.name,
        "geomean_size_ratio": geomean_ratio,
        "geomean_reduction": 1.0 - geomean_ratio,
        "required_reduction": REQUIRED_REDUCTION,
        **totals,
    }

    top = sorted(per_benchmark.items(), key=lambda item: item[1]["size_ratio"])
    rows = [[name, data["rv32_bytes"], data["rvc_bytes"],
             f"{(1 - data['size_ratio']) * 100:.1f}%"]
            for name, data in top[:10] + top[-3:]]
    echo(format_table(
        ["benchmark", "rv32 bytes", "rvc bytes", "reduction"],
        rows, title=f"RVC code-size reduction at -O3 (best 10 / worst 3 of "
                    f"{len(names)} benchmarks)"))
    echo(f"aggregate: geomean size reduction "
         f"{(1 - geomean_ratio) * 100:.1f}% "
         f"(required: {REQUIRED_REDUCTION * 100:.0f}%) | bytes "
         f"{totals['rv32_bytes']} -> {totals['rvc_bytes']} | "
         f"{totals['compressed']}/{totals['instructions']} instructions "
         f"compressed")
    return {"aggregate": aggregate, "per_benchmark": per_benchmark}


def test_encoding_size_bar():
    """Bench-harness entry: every round-trip holds and RVC holds its bar."""
    report = run_report()
    assert report["aggregate"]["geomean_reduction"] >= REQUIRED_REDUCTION


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON to PATH")
    parser.add_argument("--benchmarks", nargs="+",
                        help="subset of benchmark names (default: all)")
    parser.add_argument("--min-reduction", type=float,
                        default=REQUIRED_REDUCTION,
                        help="geomean size-reduction bar to enforce "
                             f"(default: {REQUIRED_REDUCTION})")
    args = parser.parse_args(argv)
    report = run_report(benchmarks=args.benchmarks)
    report["aggregate"]["enforced_reduction"] = args.min_reduction
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    reduction = report["aggregate"]["geomean_reduction"]
    if reduction < args.min_reduction:
        print(f"FAIL: geomean RVC size reduction {reduction * 100:.1f}% is "
              f"below the {args.min_reduction * 100:.0f}% bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
