"""Figure 4: per-pass counts of severe/moderate gains and losses."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_figure4_effect_categories(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure4_effect_categories,
        args=(runner, BENCH_BENCHMARKS, BENCH_PASSES),
        iterations=1, rounds=1)
    print()
    table = result[("risc0", "execution_time")]
    for name, counts in list(table.items())[:8]:
        print("Figure 4 risc0/exec", name, counts)
    assert sum(table["inline"].values()) <= len(BENCH_BENCHMARKS)
