"""Figure 6: autotuning speedups over -O3 (NPB + crypto slices)."""
from repro.experiments import figures


def test_figure6_autotuning(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure6_autotuning,
        kwargs={"benchmarks": ["npb-is", "sha256"], "iterations": 6, "runner": runner},
        iterations=1, rounds=1)
    print()
    for key, row in result.items():
        print("Figure 6", key, f"gain over -O3: {row['gain_over_o3_percent']:+.1f}%")
    assert all(row["speedup_over_o3"] > 0 for row in result.values())
