"""Benchmark/pass slices shared by the bench targets (see DESIGN.md)."""

BENCH_BENCHMARKS = [
    "fibonacci", "loop-sum", "tailcall",
    "polybench-gemm", "polybench-trisolv", "npb-is", "npb-lu", "sha256",
]
BENCH_PASSES = [
    "inline", "always-inline", "gvn", "instcombine", "simplifycfg",
    "mem2reg", "sroa", "licm", "loop-extract", "loop-rotate", "reg2mem",
    "jump-threading", "tailcall",
]
