"""Figure 3: impact of individual passes on exec/prove/cycles for both zkVMs."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_figure3_pass_impact(benchmark, runner):
    result = benchmark.pedantic(
        figures.figure3_pass_impact,
        args=(runner, BENCH_BENCHMARKS, BENCH_PASSES),
        iterations=1, rounds=1)
    print()
    for name in result["top_passes"][:10]:
        risc0 = result["risc0"]["execution_time"][name]["mean"]
        sp1 = result["sp1"]["execution_time"][name]["mean"]
        print(f"Figure 3 {name:16s} risc0 exec {risc0:+.1f}%  sp1 exec {sp1:+.1f}%")
    assert "inline" in result["top_passes"]
