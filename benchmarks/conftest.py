"""Shared fixtures for the benchmark harness.

Every bench file regenerates one of the paper's tables or figures on a
reduced-but-representative slice of the benchmark matrix (see DESIGN.md's
per-experiment index).  ``examples/full_study.py`` runs the same regenerators
over the full matrix.
"""

from __future__ import annotations

import pytest

from repro.experiments import BenchmarkRunner


@pytest.fixture(scope="session")
def runner():
    """One shared measurement cache across all bench targets."""
    return BenchmarkRunner()
