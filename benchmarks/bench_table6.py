"""Table 6: baseline execution/proving time statistics per zkVM."""
from repro.experiments import tables
from bench_config import BENCH_BENCHMARKS


def test_table6_baseline_statistics(benchmark, runner):
    result = benchmark.pedantic(tables.table6_baseline_statistics,
                                args=(runner, BENCH_BENCHMARKS),
                                iterations=1, rounds=1)
    print()
    for key, row in result.items():
        print("Table 6", key, {k: round(v, 4) for k, v in row.items()})
    assert result[("risc0", "proving_time")]["max"] >= result[("risc0", "proving_time")]["min"]
