"""Section 2 / 5.2 case studies: strength reduction, branchless abs, loop fission."""
from repro.experiments import tables


def test_case_study_strength_reduction(benchmark):
    result = benchmark.pedantic(tables.case_study_strength_reduction, iterations=1, rounds=2)
    print()
    print("Case study (Fig 2a): -O3 instr", result["-O3"]["instructions"],
          "vs zkVM-aware -O3 instr", result["-O3-zkvm"]["instructions"])
    assert result["-O3-zkvm"]["instructions"] <= result["-O3"]["instructions"]


def test_case_study_branchless_abs(benchmark):
    result = benchmark.pedantic(tables.case_study_branchless_abs, iterations=1, rounds=2)
    print()
    print("Case study (Fig 13): branchy", result["branchy"]["instructions"],
          "branchless", result["branchless"]["instructions"])
    assert result["branchy"]["output"] == result["branchless"]["output"]


def test_case_study_loop_fission(benchmark):
    result = benchmark.pedantic(tables.case_study_loop_fission, iterations=1, rounds=2)
    print()
    print("Case study (Fig 2b): fused", result["fused"]["instructions"],
          "fissioned", result["fissioned"]["instructions"])
    assert result["fissioned"]["instructions"] > result["fused"]["instructions"]
