"""Figure 14: zkVM-aware -O3 vs vanilla -O3."""
from repro.experiments import figures
from bench_config import BENCH_BENCHMARKS


def test_figure14_zkvm_aware(benchmark, runner):
    result = benchmark.pedantic(figures.figure14_zkvm_aware,
                                args=(runner, BENCH_BENCHMARKS),
                                iterations=1, rounds=1)
    print()
    improved = 0
    for bench, row in result.items():
        gain = row[("risc0", "execution_time")]
        improved += gain > 0
        print(f"Figure 14 {bench:22s} risc0 exec {gain:+.1f}% sp1 exec "
              f"{row[('sp1', 'execution_time')]:+.1f}% instr {row['instruction_reduction']:+.1f}%")
    print(f"Figure 14: improved on {improved}/{len(result)} benchmarks")
    assert improved >= len(result) // 3
