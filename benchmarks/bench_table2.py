"""Table 2: Kendall/Pearson correlations between cost metrics and performance."""
from repro.experiments import tables
from bench_config import BENCH_BENCHMARKS, BENCH_PASSES


def test_table2_correlations(benchmark, runner):
    result = benchmark.pedantic(
        tables.table2_correlations,
        args=(runner, BENCH_BENCHMARKS[:5], BENCH_PASSES[:8]),
        iterations=1, rounds=1)
    print()
    for key, row in result.items():
        print("Table 2", key, row)
    assert result[("risc0", "execution_time", "instructions")]["kendall"] > 0.3
