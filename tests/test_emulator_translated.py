"""Seeded property suite for the superblock translator.

The translated engine already rides the engine-parametrized differential
battery (microprogram, all 58 seed benchmarks, segment/fault parity) in
``test_emulator_differential.py``; this file adds the translator-specific
properties: a 500-seed replay across every fuzz generator mode, the
checked-in fuzz corpus, faults landing *mid-superblock* (instruction limits
that expire inside a compiled region), segment boundaries pinned to the
exact dynamic run length, the observer-forced interpreter fallback, and
code-cache reuse across re-runs and machines.
"""

from pathlib import Path

import pytest

from engines import assert_runs_identical, run_engine
from repro.backend import compile_module
from repro.backend.isa import AssemblyFunction, AssemblyProgram, MachineInstr
from repro.emulator import EmulationError, Machine, TranslatedMachine
from repro.frontend import compile_source
from repro.fuzz import load_corpus
from repro.fuzz.genprog import MODES, generate_program

#: 5 modes x 100 seeds = the 500-seed replay bar the translator must clear.
SEEDS_PER_MODE = 100

#: A tight counted loop whose body compiles into one superblock: the
#: instruction-limit sweep lands the fault at every offset inside it.
LOOP_SOURCE = """
fn main() -> int {
  var acc;
  var i;
  acc = 0;
  for (i = 0; i < 1000; i = i + 1) { acc = acc + i * 3 - (acc >> 1); }
  return acc;
}
"""


def _compile(source: str) -> AssemblyProgram:
    return compile_module(compile_source(source))


def _assert_translated_matches_fast(program, context="", **kwargs):
    """Run both scalar engines and require observational identity."""
    fast = run_engine("fast", program, **kwargs)
    translated = run_engine("translated", program, **kwargs)
    assert_runs_identical(translated, fast, context)
    return translated, fast


class TestFuzzModeReplay:
    @pytest.mark.parametrize("mode", MODES)
    def test_seeded_generated_programs_replay_identically(self, mode):
        for seed in range(SEEDS_PER_MODE):
            generated = generate_program(seed, mode=mode)
            program = _compile(generated.source)
            _assert_translated_matches_fast(
                program, f"mode={mode} seed={seed}")


class TestFuzzCorpusReplay:
    CORPUS = load_corpus(Path(__file__).parent / "corpus")

    @pytest.mark.parametrize(
        "path,header,source", CORPUS,
        ids=[Path(entry[0]).stem for entry in CORPUS])
    def test_corpus_entry_replays_identically(self, path, header, source):
        program = _compile(source)
        _assert_translated_matches_fast(program, Path(path).name)


class TestMidSuperblockFaults:
    def test_limit_expires_at_every_block_offset(self):
        # Sweep the instruction limit across a window wider than any
        # superblock in the loop: every limit lands the fault at a different
        # offset relative to block entry, and the partial trace (counts,
        # memory, paging) must still match the interpreter exactly.
        program = _compile(LOOP_SOURCE)
        run_length = Machine(program).run().instructions
        limits = list(range(1, 40)) + [run_length - 1]
        for limit in limits:
            translated, _ = _assert_translated_matches_fast(
                program, f"max_instructions={limit}",
                max_instructions=limit)
            assert isinstance(translated.error, EmulationError)
            assert translated.stats.instructions == limit

    def test_fault_after_straight_line_prefix(self):
        # An ebreak at the end of a straight-line region: the instructions
        # before the fault are mid-superblock work that must be folded into
        # the partial trace identically.
        body = [
            MachineInstr("li", ["t0", 7]),
            MachineInstr("addi", ["t1", "t0", 5]),
            MachineInstr("sw", ["t1", 0, "sp"]),
            MachineInstr("ebreak", []),
        ]
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", body)})
        translated, _ = _assert_translated_matches_fast(
            program, "ebreak after straight-line prefix")
        assert isinstance(translated.error, EmulationError)
        assert translated.stats.instructions == 4


class TestSegmentBoundaries:
    def test_segment_sizes_straddling_the_run_length(self):
        # The fuel check must stop a superblock short of every segment
        # boundary: sizes pinned to the exact dynamic run length (and its
        # neighbours) land a boundary at the most awkward offsets.
        program = _compile(LOOP_SOURCE)
        run_length = Machine(program).run().instructions
        for segment_size in (1, 7, run_length - 1, run_length,
                             run_length + 1):
            _assert_translated_matches_fast(
                program,
                f"segment_size={segment_size} (run_length={run_length})",
                segment_size=segment_size)

    @pytest.mark.parametrize("mode", ["loop-heavy", "call-heavy"])
    def test_generated_programs_with_tiny_segments(self, mode):
        for seed in range(5):
            program = _compile(generate_program(seed, mode=mode).source)
            for segment_size in (1, 7, 100):
                _assert_translated_matches_fast(
                    program, f"mode={mode} seed={seed} seg={segment_size}",
                    segment_size=segment_size)


class _CountingObserver:
    def __init__(self):
        self.events = []

    def on_instruction(self, opcode, instruction_class, dest, sources,
                       memory_address, is_store, branch_taken, pc):
        self.events.append((opcode, instruction_class, dest, tuple(sources),
                            memory_address, is_store, branch_taken, pc))


class TestObserverFallback:
    def test_observers_force_the_interpreter_path(self):
        # With an observer attached the translator must take the inherited
        # observed path: no superblock runs, and the per-instruction event
        # stream is exactly the interpreter's.
        program = _compile(LOOP_SOURCE)
        fast_obs, trans_obs = _CountingObserver(), _CountingObserver()
        fast = Machine(program, observers=[fast_obs])
        translated = TranslatedMachine(program, observers=[trans_obs])
        assert fast.run() == translated.run()
        assert trans_obs.events == fast_obs.events
        # Superblocks compile lazily on first dispatch, so an observed run —
        # which never enters the block dispatcher — leaves the cache empty.
        assert translated._tcache.compiled_blocks == 0, \
            "observed run must not dispatch (or compile) superblocks"

    def test_unobserved_run_actually_uses_superblocks(self):
        # The fallback test above is only meaningful if the fast path really
        # does dispatch blocks when unobserved.
        program = _compile(LOOP_SOURCE)
        translated = TranslatedMachine(program)
        translated.run()
        assert translated._tcache.compiled_blocks > 0


class TestCodeCacheReuse:
    def test_reruns_reuse_compiled_blocks(self):
        program = _compile(LOOP_SOURCE)
        machine = TranslatedMachine(program)
        first = machine.run()
        compiled_after_first = machine._tcache.compiled_blocks
        second = machine.run()
        assert first == second
        assert machine._tcache.compiled_blocks == compiled_after_first, \
            "a re-run must not recompile cached superblocks"

    def test_machines_share_one_cache_per_program(self):
        program = _compile(LOOP_SOURCE)
        first = TranslatedMachine(program)
        first.run()
        compiled = first._tcache.compiled_blocks
        second = TranslatedMachine(program)
        assert second._tcache is first._tcache
        second.run()
        assert second._tcache.compiled_blocks == compiled

    def test_cache_survives_a_faulting_run(self):
        # A limit fault mid-run must leave the shared cache usable: a fresh
        # machine over the same program still replays to a clean halt.
        program = _compile(LOOP_SOURCE)
        faulting = TranslatedMachine(program, max_instructions=50)
        with pytest.raises(EmulationError):
            faulting.run()
        clean = TranslatedMachine(program).run()
        assert clean.instructions == Machine(program).run().instructions
