"""Unit tests for individual optimization passes (what each transformation
actually does to the IR, beyond preserving semantics)."""

import pytest

from repro.frontend import compile_source
from repro.ir import Alloca, Call, Load, Phi, Select, Store, verify_module
from repro.ir.interpreter import run_module
from repro.passes import PassConfig, PassManager, get_pass, run_passes


def count_instructions(module, kind=None):
    total = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            if kind is None or isinstance(inst, kind):
                total += 1
    return total


def count_opcode(module, opcode):
    return sum(1 for f in module.defined_functions() for i in f.instructions()
               if getattr(i, "opcode", None) == opcode)


SIMPLE_LOOP = """
global data[16];
fn main() -> int {
  var acc = 0;
  var i;
  for (i = 0; i < 16; i = i + 1) {
    data[i] = i * 4;
    acc = acc + data[i];
  }
  print(acc);
  return acc;
}
"""


class TestMem2Reg:
    def test_promotes_scalars_and_inserts_phis(self):
        module = compile_source(SIMPLE_LOOP)
        before_allocas = count_instructions(module, Alloca)
        optimized = run_passes(module, ["mem2reg"])
        assert count_instructions(optimized, Alloca) < before_allocas
        assert count_instructions(optimized, Phi) > 0
        assert count_instructions(optimized, Load) < count_instructions(module, Load)

    def test_does_not_touch_escaping_arrays(self):
        source = """
        fn use(p, n) -> int { return p[n]; }
        fn main() -> int { var buf[4]; buf[2] = 9; return use(buf, 2); }
        """
        module = compile_source(source)
        optimized = run_passes(module, ["mem2reg"])
        # The array alloca must survive (its address escapes into the call).
        assert any(isinstance(i, Alloca) and i.count == 4
                   for i in optimized.get_function("main").instructions())


class TestSROA:
    def test_splits_small_constant_indexed_arrays(self):
        source = """
        fn main() -> int {
          var pair[2];
          pair[0] = 3;
          pair[1] = 4;
          return pair[0] * pair[1];
        }
        """
        module = compile_source(source)
        optimized = run_passes(module, ["sroa"])
        assert run_module(optimized).return_value == 12
        # The 2-element aggregate is gone (either split or fully promoted).
        assert not any(isinstance(i, Alloca) and i.count == 2
                       for i in optimized.get_function("main").instructions())


class TestInstCombine:
    def test_multiplication_becomes_shift(self):
        source = "fn main() -> int { var x = read_input(0); return x * 8; }"
        optimized = run_passes(compile_source(source), ["instcombine"])
        assert count_opcode(optimized, "shl") >= 1
        assert count_opcode(optimized, "mul") == 0

    def test_division_expansion_is_cost_model_dependent(self):
        source = "fn main() -> int { var x = read_input(0); return x / 8; }"
        module = compile_source(source)
        cpu_tuned = run_passes(module, ["instcombine"], PassConfig(zkvm_aware=False))
        zkvm_tuned = run_passes(module, ["instcombine"], PassConfig(zkvm_aware=True))
        # CPU tuning expands sdiv-by-power-of-two into shifts (Figure 2a) ...
        assert count_opcode(cpu_tuned, "sdiv") == 0
        # ... the zkVM-aware cost model keeps the single division.
        assert count_opcode(zkvm_tuned, "sdiv") == 1

    def test_constant_folding(self):
        source = "fn main() -> int { return (3 + 4) * (10 - 2); }"
        optimized = run_passes(compile_source(source), ["mem2reg", "instcombine", "dce"])
        assert count_opcode(optimized, "add") == 0
        assert count_opcode(optimized, "mul") == 0


class TestSimplifyCFG:
    def test_folds_diamond_into_select(self):
        source = """
        fn main() -> int {
          var x = read_input(0) % 100;
          var y;
          if (x < 50) { y = x * 2; } else { y = x + 5; }
          return y;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg", "simplifycfg"])
        has_select = any(isinstance(i, Select)
                         for i in module.get_function("main").instructions())
        assert has_select
        assert len(module.get_function("main").blocks) == 1

    def test_zkvm_aware_config_is_more_conservative(self):
        source = """
        fn main() -> int {
          var x = read_input(0) % 100;
          var y;
          if (x < 50) { y = x * 2 + x / 3; } else { y = x + 5 - x * 7; }
          return y;
        }
        """
        module = compile_source(source)
        aggressive = run_passes(module, ["mem2reg", "simplifycfg"],
                                PassConfig(fold_branch_to_select_threshold=3))
        conservative = run_passes(module, ["mem2reg", "simplifycfg"],
                                  PassConfig(fold_branch_to_select_threshold=3,
                                             zkvm_aware=True))
        aggressive_blocks = len(aggressive.get_function("main").blocks)
        conservative_blocks = len(conservative.get_function("main").blocks)
        assert aggressive_blocks <= conservative_blocks

    def test_removes_constant_branches(self):
        source = """
        fn main() -> int {
          if (1 < 2) { return 10; }
          return 20;
        }
        """
        optimized = run_passes(compile_source(source),
                               ["mem2reg", "instcombine", "simplifycfg"])
        assert len(optimized.get_function("main").blocks) == 1
        assert run_module(optimized).return_value == 10


class TestInlining:
    def test_inline_removes_call(self):
        source = """
        fn helper(a, b) -> int { return a * 3 + b; }
        fn main() -> int { return helper(4, 5) + helper(1, 2); }
        """
        optimized = run_passes(compile_source(source), ["inline"])
        assert count_instructions(optimized.get_function("main").module, Call) == \
            count_opcode(optimized, "__nonexistent__")  # i.e. zero direct calls
        assert run_module(optimized).return_value == 22

    def test_always_inline_respects_attribute(self):
        source = """
        inline fn tiny(x) -> int { return x + 1; }
        fn big(x) -> int {
          var acc = 0; var i;
          for (i = 0; i < 20; i = i + 1) { acc = acc + x * i + i / 3 + i % 5 - x; }
          return acc;
        }
        fn main() -> int { return tiny(1) + big(2); }
        """
        optimized = run_passes(compile_source(source), ["always-inline"])
        calls = [i.callee for f in optimized.defined_functions()
                 for i in f.instructions() if isinstance(i, Call)]
        assert "tiny" not in calls
        assert "big" in calls

    def test_recursive_functions_not_inlined(self):
        source = """
        fn f(n) -> int { if (n <= 0) { return 0; } return n + f(n - 1); }
        fn main() -> int { return f(5); }
        """
        optimized = run_passes(compile_source(source), ["inline"])
        assert run_module(optimized).return_value == 15
        assert optimized.get_function("f") is not None

    def test_inline_threshold_controls_decisions(self):
        source = """
        fn medium(x) -> int {
          var acc = x;
          var i;
          for (i = 0; i < 10; i = i + 1) { acc = acc + i * x - i / 2 + (i ^ x); }
          return acc;
        }
        fn main() -> int { var a = read_input(0); var b = read_input(1); return medium(a) + medium(b); }
        """
        module = compile_source(source)
        not_inlined = run_passes(module, ["inline"], PassConfig(inline_threshold=1))
        inlined = run_passes(module, ["inline"], PassConfig(inline_threshold=4328))
        calls_low = sum(1 for f in not_inlined.defined_functions()
                        for i in f.instructions() if isinstance(i, Call))
        calls_high = sum(1 for f in inlined.defined_functions()
                         for i in f.instructions() if isinstance(i, Call))
        assert calls_high < calls_low


class TestLoopPasses:
    def test_licm_creates_preheader_and_hoists(self):
        source = """
        fn main() -> int {
          var n = read_input(0) % 50 + 8;
          var acc = 0;
          var i;
          for (i = 0; i < n; i = i + 1) { acc = acc + (n * 7 + 3); }
          print(acc);
          return acc;
        }
        """
        module = compile_source(source)
        reference = run_module(module)
        optimized = run_passes(module, ["mem2reg", "licm"], verify_each=True)
        assert run_module(optimized).return_value == reference.return_value
        # The invariant n*7+3 must have been hoisted out of the loop body.
        from repro.ir import LoopInfo
        function = optimized.get_function("main")
        loops = LoopInfo(function).loops()
        assert loops, "loop disappeared unexpectedly"
        in_loop_muls = sum(1 for b in loops[0].blocks for i in b.instructions
                           if getattr(i, "opcode", None) == "mul")
        assert in_loop_muls == 0

    def test_loop_unroll_eliminates_small_loop(self):
        source = """
        fn main() -> int {
          var acc = 0;
          var i;
          for (i = 0; i < 4; i = i + 1) { acc = acc + i * 3; }
          return acc;
        }
        """
        module = compile_source(source)
        optimized = run_passes(module, ["mem2reg", "instcombine", "loop-unroll", "sccp", "adce"],
                               verify_each=True)
        from repro.ir import LoopInfo
        assert run_module(optimized).return_value == 18
        assert not LoopInfo(optimized.get_function("main")).loops()

    def test_loop_deletion_removes_dead_loop(self):
        source = """
        fn main() -> int {
          var waste = 0;
          var i;
          for (i = 0; i < 100; i = i + 1) { waste = waste + i; }
          return 7;
        }
        """
        module = compile_source(source)
        optimized = run_passes(module, ["mem2reg", "instcombine", "dce", "loop-deletion"],
                               verify_each=True)
        from repro.ir import LoopInfo
        assert run_module(optimized).return_value == 7
        assert not LoopInfo(optimized.get_function("main")).loops()

    def test_loop_extract_outlines_loops(self):
        module = compile_source(SIMPLE_LOOP)
        optimized = run_passes(module, ["loop-extract"], verify_each=True)
        assert len(optimized.functions) > len(module.functions)
        assert run_module(optimized).output == run_module(module).output

    def test_unswitch_drops_phi_entry_of_specialized_branch(self):
        # Fuzzer-found (seed 397, pointer-heavy): unswitching a loop-invariant
        # short-circuit branch removed one side of the conditional but left the
        # dropped successor's phi with a stale incoming entry for the branch
        # block.  The verifier rejects that IR, and a later simplifycfg folded
        # the phi to the stale value, miscompiling the program.  The `k && ...`
        # diamond below puts a phi in the false successor of an unswitchable
        # branch (licm hoists the invariant `k != 0` test out of the loop).
        source = """
        global g0[2] = {5, 9};
        global acc[1] = {0};

        fn main() -> int {
          var k = g0[0];
          for (var i = 0; (i < 8); i = (i + 1)) {
            acc[0] = ((acc[0] * 31) + (k && g0[(i & 1)]));
          }
          print(acc[0]);
          return acc[0];
        }
        """
        module = compile_source(source)
        reference = run_module(module.clone())
        optimized = run_passes(module, ["mem2reg", "licm", "simple-loop-unswitch"],
                               verify_each=True)
        from repro.ir.printer import format_module
        assert ".unswitch" in format_module(optimized), \
            "unswitch did not fire; the test no longer exercises the pass"
        result = run_module(optimized)
        assert result.return_value == reference.return_value
        assert result.output == reference.output


class TestTailCall:
    def test_self_recursive_tail_call_becomes_loop(self):
        source = """
        fn count(n, acc) -> int {
          if (n == 0) { return acc; }
          return count(n - 1, acc + n);
        }
        fn main() -> int { return count(2000, 0); }
        """
        module = compile_source(source)
        optimized = run_passes(module, ["tailcall"], verify_each=True)
        calls = [i for i in optimized.get_function("count").instructions()
                 if isinstance(i, Call)]
        assert not calls
        # Deep recursion now runs in constant stack.
        assert run_module(optimized).return_value == 2000 * 2001 // 2


class TestCSE:
    def test_gvn_removes_redundant_computation(self):
        source = """
        fn main() -> int {
          var a = read_input(0) % 97;
          var x = a * 13 + 7;
          var y = a * 13 + 7;
          return x + y;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg", "gvn"])
        assert count_opcode(module, "mul") == 1

    def test_sccp_folds_constant_branches(self):
        source = """
        fn main() -> int {
          var mode = 3;
          if (mode == 3) { return 111; }
          return 222;
        }
        """
        optimized = run_passes(compile_source(source), ["mem2reg", "sccp"])
        assert run_module(optimized).return_value == 111
        assert len(optimized.get_function("main").blocks) <= 2


class TestReg2Mem:
    def test_inverse_of_mem2reg_adds_memory_traffic(self):
        module = compile_source(SIMPLE_LOOP)
        ssa = run_passes(module, ["mem2reg"])
        demoted = run_passes(module, ["mem2reg", "reg2mem"])
        assert count_instructions(demoted, Phi) == 0
        assert count_instructions(demoted, Store) > count_instructions(ssa, Store)
        assert run_module(demoted).return_value == run_module(module).return_value
