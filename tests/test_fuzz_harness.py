"""Tests for the differential harness, reducer, triage and campaign driver.

Planted-bug coverage: two deliberately evil passes are registered under
``fuzz-evil-*`` names and wrapped in synthetic profiles, proving the harness
buckets a semantic miscompile as ``passes`` and verifier-breaking IR as
``pipeline`` (naming the guilty pass when ``verify_each_pass`` is on), and
that the reducer shrinks such failures while preserving the stage.
"""

import pytest

from repro.experiments.engine import ExperimentEngine
from repro.experiments.profiles import Profile
from repro.frontend import compile_source
from repro.fuzz import (
    HarnessConfig, STAGES, failure_fingerprint, format_repro, generate_program,
    load_corpus, minimize_source, parse_repro, run_campaign, run_differential,
    triage_failure, write_corpus,
)
from repro.fuzz.triage import TriageSummary
from repro.ir import BinaryOp
from repro.ir.interpreter import InterpreterError, StepLimitExceeded, run_module
from repro.passes import Pass, available_passes, register_pass

from support import REFERENCE_PROGRAM

INFINITE_LOOP = """
fn spin(x) -> int {
  while (1) {
    x = (x + 1);
  }
  return x;
}

fn main() -> int {
  print(spin(0));
  return 0;
}
"""

SMALL_SUM = """
global g0[2] = {40, 2};

fn junk(p0) -> int {
  return (p0 * 3);
}

fn main() -> int {
  var unused = junk(5);
  print((g0[0] + g0[1]));
  return 0;
}
"""


@pytest.fixture(scope="module", autouse=True)
def _unregister_evil_passes():
    """Planted-bug passes must not leak into other test modules.

    ``test_properties`` samples random pipelines from ``available_passes()``;
    an evil pass left in the global registry would (by design) miscompile its
    programs.
    """
    yield
    from repro.passes.pass_manager import _REGISTRY
    _REGISTRY.pop("fuzz-evil-flip-add", None)
    _REGISTRY.pop("fuzz-evil-drop-ret", None)


def _ensure_evil_passes():
    """Register the planted-bug passes once per process."""
    if "fuzz-evil-flip-add" in available_passes():
        return

    @register_pass
    class FlipFirstAdd(Pass):
        name = "fuzz-evil-flip-add"
        description = "planted bug: first 'add' in main becomes 'sub'"

        def run(self, module):
            function = module.get_function("main")
            for block in function.blocks:
                for inst in block.instructions:
                    if isinstance(inst, BinaryOp) and inst.opcode == "add":
                        inst.opcode = "sub"
                        return True
            return False

    @register_pass
    class DropMainTerminator(Pass):
        name = "fuzz-evil-drop-ret"
        description = "planted bug: main's entry block loses its terminator"

        def run(self, module):
            function = module.get_function("main")
            block = function.entry_block
            block.remove_instruction(block.instructions[-1])
            return True


def _evil_profile(pass_name: str) -> Profile:
    _ensure_evil_passes()
    return Profile(name=f"evil:{pass_name}", passes=(pass_name,), kind="custom")


class TestStepLimitExceeded:
    """Satellite: the step-limit error reports function + executed steps."""

    def test_reports_function_and_steps(self):
        module = compile_source(INFINITE_LOOP, "spin")
        with pytest.raises(StepLimitExceeded) as exc:
            run_module(module, max_steps=500)
        error = exc.value
        assert error.function_name == "spin"
        assert error.steps > 500
        assert "spin" in str(error) and str(error.steps) in str(error)

    def test_is_an_interpreter_error(self):
        # Existing callers catching InterpreterError keep working.
        assert issubclass(StepLimitExceeded, InterpreterError)
        module = compile_source(INFINITE_LOOP, "spin")
        with pytest.raises(InterpreterError):
            run_module(module, max_steps=500)


class TestHarnessStages:
    def test_reference_program_is_clean(self):
        report = run_differential(REFERENCE_PROGRAM)
        assert report.ok and report.stage is None
        assert report.interp_steps > 0
        assert report.bucket == "ok"

    def test_frontend_bucket(self):
        report = run_differential("fn main( { ???")
        assert not report.ok and report.stage == "frontend"
        assert report.detail

    def test_step_limit_bucket(self):
        config = HarnessConfig(interp_max_steps=1_000)
        report = run_differential(INFINITE_LOOP, config)
        assert report.stage == "step-limit"
        assert "spin" in report.detail

    def test_planted_miscompile_buckets_as_passes(self):
        config = HarnessConfig(profiles=[_evil_profile("fuzz-evil-flip-add")])
        report = run_differential(SMALL_SUM, config)
        assert not report.ok
        assert report.stage == "passes"
        assert report.profile == "evil:fuzz-evil-flip-add"
        assert "expected" in report.detail  # names the diverging value

    def test_planted_verifier_break_buckets_as_pipeline(self):
        config = HarnessConfig(profiles=[_evil_profile("fuzz-evil-drop-ret")])
        report = run_differential(SMALL_SUM, config)
        assert not report.ok
        assert report.stage == "pipeline"

    def test_verify_each_pass_names_the_guilty_pass(self):
        config = HarnessConfig(profiles=[_evil_profile("fuzz-evil-drop-ret")],
                               verify_each_pass=True)
        report = run_differential(SMALL_SUM, config)
        assert report.stage == "pipeline"
        assert "fuzz-evil-drop-ret" in report.detail

    def test_all_reported_stages_are_known(self):
        assert set(STAGES) >= {"frontend", "step-limit", "pipeline", "passes",
                               "backend-seed", "backend-opt", "emulator"}


class TestMinimizer:
    def test_shrinks_planted_miscompile(self):
        config = HarnessConfig(profiles=[_evil_profile("fuzz-evil-flip-add")])
        report = run_differential(SMALL_SUM, config)
        assert report.stage == "passes"
        result = minimize_source(SMALL_SUM, report, config, max_evals=150)
        assert result.report.stage == "passes"
        assert len(result.source) < len(SMALL_SUM)
        assert "junk" not in result.source  # the unrelated helper is gone
        # The reduced program still fails the same way when replayed.
        replay = run_differential(result.source, config)
        assert replay.stage == "passes"

    def test_shrinks_generated_step_limit_failure(self):
        program = generate_program(3, mode="loop-heavy")
        config = HarnessConfig(interp_max_steps=200)
        report = run_differential(program.source, config)
        assert report.stage == "step-limit"
        result = minimize_source(program.source, report, config, max_evals=150)
        assert result.report.stage == "step-limit"
        assert len(result.source.splitlines()) < \
            len(program.source.splitlines()) // 2

    def test_refuses_passing_program(self):
        report = run_differential(REFERENCE_PROGRAM)
        with pytest.raises(ValueError):
            minimize_source(REFERENCE_PROGRAM, report)


class TestTriage:
    def _failing_report(self):
        config = HarnessConfig(interp_max_steps=1_000)
        return run_differential(INFINITE_LOOP, config)

    def test_fingerprint_is_content_addressed(self):
        assert failure_fingerprint("passes", "src") == \
            failure_fingerprint("passes", "src")
        assert failure_fingerprint("passes", "src") != \
            failure_fingerprint("emulator", "src")
        assert failure_fingerprint("passes", "src") != \
            failure_fingerprint("passes", "other")

    def test_triage_and_dedupe(self):
        report = self._failing_report()
        summary = TriageSummary()
        first = triage_failure(INFINITE_LOOP, report, seed=1, mode="mixed")
        duplicate = triage_failure(INFINITE_LOOP, report, seed=2, mode="mixed")
        assert summary.add(first) is True
        assert summary.add(duplicate) is False
        assert summary.unique_failures == 1 and summary.duplicates == 1
        assert summary.as_dict()["buckets"]["step-limit"][0]["seed"] == 1

    def test_repro_round_trip(self, tmp_path):
        report = self._failing_report()
        failure = triage_failure(INFINITE_LOOP, report, seed=9, mode="mixed")
        text = format_repro(failure)
        header, source = parse_repro(text)
        assert header["stage"] == "step-limit"
        assert header["seed"] == "9"
        assert source.strip() == INFINITE_LOOP.strip()
        # The whole .repro file is itself compilable (headers are comments).
        compile_source(text, "repro")

        paths = write_corpus([failure], tmp_path)
        assert paths == [str(tmp_path / failure.filename)]
        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        _, loaded_header, loaded_source = entries[0]
        assert loaded_header == header and loaded_source == source

    def test_triage_refuses_passing_report(self):
        report = run_differential(REFERENCE_PROGRAM)
        with pytest.raises(ValueError):
            triage_failure(REFERENCE_PROGRAM, report)


class TestCampaignDriver:
    def test_clean_campaign(self):
        engine = ExperimentEngine(workers=1, use_disk_cache=False)
        summary = run_campaign(6, mode="all", engine=engine)
        assert summary.clean
        assert summary.ok == summary.unique_programs
        assert summary.generated == 6
        assert summary.as_dict()["failed"] == 0

    def test_campaign_with_planted_bug_triages_and_persists(self, tmp_path):
        config = HarnessConfig(profiles=[_evil_profile("fuzz-evil-flip-add")])
        engine = ExperimentEngine(workers=1, use_disk_cache=False)
        summary = run_campaign(3, mode="mixed", engine=engine, config=config,
                               corpus_dir=tmp_path)
        assert not summary.clean
        assert summary.failed > 0
        assert summary.triage.unique_failures >= 1
        assert summary.corpus_files
        # Every persisted reproducer replays to a failure of the same stage.
        for path, header, source in load_corpus(tmp_path):
            replay = run_differential(source, config)
            assert replay.stage == header["stage"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(1, mode="nope")
