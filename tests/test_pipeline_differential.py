"""Pipeline differential suite: the analysis-caching pass manager must be
behaviourally invisible.

For every seed benchmark and both paper profiles (the CPU-tuned ``-O3`` and
the zkVM-aware ``-O3-zkvm``), the optimization pipeline runs twice — once
with the :class:`~repro.passes.analysis.AnalysisManager` caching analyses
(the default), once through the ``--no-analysis-cache`` escape hatch that
recomputes everything fresh, exactly as the seed pass manager did.  The two
runs must produce byte-identical printed IR, and the compiled programs must
produce identical emulator outputs and :class:`TraceStats`.

A third check pins down determinism itself: two fresh runs over separate
clones must also agree byte-for-byte (the seed pipeline iterated
address-ordered block sets, so its output layout differed from run to run —
and on some runs the unroller emitted use-before-def IR).
"""

from __future__ import annotations

import pytest

from repro.backend import compile_module
from repro.benchmarks import all_benchmark_names, get_benchmark
from repro.emulator import Machine
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.printer import format_module
from repro.passes import PassManager
from repro.experiments.profiles import profile_by_name, zkvm_aware_profile


def _profiles():
    return [profile_by_name("-O3"), zkvm_aware_profile()]


def _optimize(module, profile, **kwargs):
    clone = module.clone()
    PassManager(profile.passes, profile.config, **kwargs).run(clone)
    return clone


def _replay(module, profile, benchmark):
    program = compile_module(module, profile.cost_model)
    machine = Machine(program, max_instructions=50_000_000,
                      input_values=benchmark.inputs)
    stats = machine.run("main", benchmark.args)
    return stats, list(machine.output)


@pytest.mark.parametrize("benchmark_name", all_benchmark_names())
def test_cached_pipeline_is_behaviourally_invisible(benchmark_name):
    benchmark = get_benchmark(benchmark_name)
    module = compile_source(benchmark.source, module_name=benchmark_name)
    for profile in _profiles():
        cached = _optimize(module, profile, analysis_cache=True)
        fresh = _optimize(module, profile, analysis_cache=False)

        context = f"{benchmark_name} under {profile.name}"
        assert format_module(cached) == format_module(fresh), \
            f"cached and fresh pipelines produced different IR for {context}"
        verify_module(cached)

        cached_stats, cached_output = _replay(cached, profile, benchmark)
        fresh_stats, fresh_output = _replay(fresh, profile, benchmark)
        assert cached_output == fresh_output, \
            f"emulator outputs diverged for {context}"
        assert cached_stats == fresh_stats, \
            f"TraceStats diverged for {context}"


@pytest.mark.parametrize("benchmark_name",
                         ["polybench-floyd-warshall", "polybench-atax",
                          "sha3-bench", "merkle"])
def test_fresh_pipeline_output_is_deterministic(benchmark_name):
    """Two escape-hatch runs over separate clones agree byte-for-byte.

    These benchmarks were the flakiest under the seed's address-ordered
    block-set iteration (floyd-warshall additionally tripped the unroller's
    use-before-def cloning bug on most runs).
    """
    benchmark = get_benchmark(benchmark_name)
    module = compile_source(benchmark.source, module_name=benchmark_name)
    for profile in _profiles():
        first = _optimize(module, profile, analysis_cache=False)
        second = _optimize(module, profile, analysis_cache=False)
        assert format_module(first) == format_module(second)
        verify_module(first)
