"""Shared helper programs and execution utilities for the test suite."""

from __future__ import annotations

from repro.backend import compile_module
from repro.emulator import run_program
from repro.frontend import compile_source
from repro.ir.interpreter import run_module

# A mid-sized program exercising calls, recursion, loops, arrays, globals,
# short-circuit logic and division — used by the differential tests.
REFERENCE_PROGRAM = """
const N = 12;
global table[32] = {3,1,4,1,5,9,2,6,5,3,5,8,9,7,9,3};
global out[32];

inline fn square(x) -> int { return x * x; }

fn gcd(a, b) -> int {
  while (b != 0) {
    var t = a % b;
    a = b;
    b = t;
  }
  return a;
}

fn sum_to(n) -> int {
  if (n <= 0) { return 0; }
  return n + sum_to(n - 1);
}

fn matvec(n) -> int {
  var acc = 0;
  var i; var j;
  for (i = 0; i < n; i = i + 1) {
    var row = 0;
    for (j = 0; j < n; j = j + 1) {
      row = row + table[(i * n + j) % 32] * (j + 1);
    }
    out[i] = row;
    acc = acc + row;
  }
  return acc;
}

fn classify(x) -> int {
  if (x < 0) { return 0 - x; }
  else { if (x % 4 == 0 && x > 8) { return x / 4; } }
  return x;
}

fn main() -> int {
  var total = 0;
  var k;
  for (k = 0; k < N; k = k + 1) {
    total = total + square(k) - classify(k - 6);
  }
  total = total + gcd(462, 1071) + sum_to(10) + matvec(5);
  print(total);
  return total;
}
"""


def interpret(source: str, entry: str = "main", args=None):
    """Compile MiniC source and run it under the IR interpreter."""
    return run_module(compile_source(source), entry, args)


def execute(source: str, passes=(), entry: str = "main", args=None):
    """Compile MiniC source (optionally optimized) and run it on the emulator."""
    from repro.passes import run_passes

    module = compile_source(source)
    if passes:
        module = run_passes(module, list(passes))
    return run_program(compile_module(module), entry, args)
