"""Backend differential suite: the optimizing backend must be behaviourally
invisible.

For every seed benchmark and both paper profiles (the CPU-tuned ``-O3`` and
the zkVM-aware ``-O3-zkvm``), the optimized IR is lowered twice — once by the
optimizing backend (:func:`repro.backend.compile_module`: immediate folding,
loop-invariant hoisting, peephole, hole-aware allocation), once by the
preserved seed backend (``--seed-backend``,
:mod:`repro.backend.seed_lowering`).  Both programs must produce identical
guest outputs and return values, and the optimizing backend's ``TraceStats``
must stay internally consistent (the accounting identities the cost models
rely on) — the dynamic instruction mix itself is *expected* to differ: the
overhaul exists to shrink it.

``benchmarks/bench_backend.py`` (``make bench-backend``) enforces how much it
shrinks; this suite proves behaviour is untouched.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_module
from repro.backend.isa import OPCODE_CLASS
from repro.benchmarks import all_benchmark_names, get_benchmark
from repro.emulator import Machine
from repro.frontend import compile_source
from repro.passes import PassManager
from repro.experiments.profiles import profile_by_name, zkvm_aware_profile


def _profiles():
    return [profile_by_name("-O3"), zkvm_aware_profile()]


def _replay(program, benchmark):
    machine = Machine(program, max_instructions=80_000_000,
                      input_values=benchmark.inputs)
    stats = machine.run("main", benchmark.args)
    return stats, machine


def _assert_consistent(stats, context: str) -> None:
    """The accounting identities every cost model depends on."""
    assert sum(stats.opcode_counts.values()) == stats.instructions, context
    assert sum(stats.class_counts.values()) == stats.instructions, context
    assert stats.loads == stats.class_counts.get("load", 0), context
    assert stats.stores == stats.class_counts.get("store", 0), context
    for opcode in stats.opcode_counts:
        assert opcode in OPCODE_CLASS, f"{context}: unclassified {opcode}"


@pytest.mark.parametrize("benchmark_name", all_benchmark_names())
def test_optimizing_backend_preserves_guest_behaviour(benchmark_name):
    benchmark = get_benchmark(benchmark_name)
    for profile in _profiles():
        module = compile_source(benchmark.source, module_name=benchmark_name)
        if profile.passes:
            PassManager(profile.passes, profile.config).run(module)

        seed_program = compile_module(module, profile.cost_model,
                                      seed_backend=True)
        opt_program = compile_module(module, profile.cost_model)

        context = f"{benchmark_name} under {profile.name}"
        seed_stats, _ = _replay(seed_program, benchmark)
        opt_stats, _ = _replay(opt_program, benchmark)

        assert opt_stats.output == seed_stats.output, \
            f"guest outputs diverged for {context}"
        assert opt_stats.return_value == seed_stats.return_value, \
            f"return values diverged for {context}"
        _assert_consistent(opt_stats, context)
        # The overhaul's reason to exist: programs must not grow.  A small
        # slack covers machine-level edge blocks and spill placement on the
        # handful of register-pressure-bound kernels (e.g. deriche); the
        # dynamic win is what bench_backend.py enforces.
        assert opt_program.total_static_instructions() <= \
            1.1 * seed_program.total_static_instructions(), \
            f"optimizing backend emitted much more code for {context}"


@pytest.mark.parametrize("benchmark_name",
                         ["polybench-gemm", "sha256", "fibonacci", "merkle"])
def test_backend_stats_are_attached_and_sane(benchmark_name):
    """``compile_module`` publishes per-function backend statistics."""
    benchmark = get_benchmark(benchmark_name)
    profile = profile_by_name("-O3")
    module = compile_source(benchmark.source, module_name=benchmark_name)
    PassManager(profile.passes, profile.config).run(module)
    program = compile_module(module, profile.cost_model)
    assert set(program.backend_stats) == set(program.functions)
    for name, stats in program.backend_stats.items():
        final = len(program.functions[name].instructions())
        assert stats["final_instructions"] == final
        assert stats["spill_loads"] >= 0 and stats["spill_stores"] >= 0
        assert isinstance(stats["peephole"], dict)
