"""Tests for the zkVM cost models, the CPU timing model, the precompile layer
and the analysis statistics."""

import pytest

from repro.analysis import format_table, kendall_tau, mean, pearson_r, stddev
from repro.backend import compile_module
from repro.cpu import CpuTimingModel, DirectMappedCache, TwoBitPredictor
from repro.emulator import Machine, TraceStats
from repro.frontend import compile_source
from repro.zkvm import PRECOMPILE_CYCLES, RISC_ZERO, SP1, ZKVMS, make_signature
from repro.zkvm.precompiles import interpret_host_call

from support import REFERENCE_PROGRAM


def measure(source: str, **machine_kwargs):
    program = compile_module(compile_source(source))
    cpu = CpuTimingModel()
    machine = Machine(program, observers=[cpu], **machine_kwargs)
    trace = machine.run()
    return trace, machine, cpu


class TestZkvmModels:
    def test_metrics_scale_with_instruction_count(self):
        small, machine_s, _ = measure("fn main() -> int { var i; var a = 0;"
                                      " for (i = 0; i < 10; i = i + 1) { a = a + i; }"
                                      " return a; }")
        large, machine_l, _ = measure("fn main() -> int { var i; var a = 0;"
                                      " for (i = 0; i < 1000; i = i + 1) { a = a + i; }"
                                      " return a; }")
        for model in (RISC_ZERO, SP1):
            m_small = model.evaluate(small, machine_s.page_in_events, machine_s.page_out_events)
            m_large = model.evaluate(large, machine_l.page_in_events, machine_l.page_out_events)
            assert m_large.total_cycles > m_small.total_cycles
            assert m_large.execution_time > m_small.execution_time
            assert m_large.proving_time >= m_small.proving_time

    def test_proving_slower_than_execution(self):
        trace, machine, _ = measure(REFERENCE_PROGRAM)
        for model in ZKVMS.values():
            metrics = model.evaluate(trace, machine.page_in_events, machine.page_out_events)
            assert metrics.proving_time > metrics.execution_time

    def test_risc0_charges_paging_sp1_does_not(self):
        trace, machine, _ = measure("""
        global big[4096];
        fn main() -> int {
          var i;
          for (i = 0; i < 4096; i = i + 64) { big[i] = i; }
          return 0;
        }
        """)
        r0 = RISC_ZERO.evaluate(trace, machine.page_in_events, machine.page_out_events)
        sp1 = SP1.evaluate(trace, machine.page_in_events, machine.page_out_events)
        assert r0.paging_cycles > 0
        assert sp1.paging_cycles == 0
        assert r0.total_cycles > r0.user_cycles

    def test_segment_count_drives_proving_time(self):
        trace = TraceStats()
        trace.class_counts = {"alu": RISC_ZERO.segment_cycles * 3}
        trace.instructions = RISC_ZERO.segment_cycles * 3
        metrics = RISC_ZERO.evaluate(trace, 0, 0)
        assert metrics.segments == 3
        single = TraceStats()
        single.class_counts = {"alu": 100}
        single.instructions = 100
        assert RISC_ZERO.evaluate(single, 0, 0).segments == 1

    def test_precompiles_charged_fixed_cycles(self):
        trace = TraceStats()
        trace.class_counts = {"alu": 1000}
        trace.instructions = 1000
        trace.host_calls = {"__sha256": 5}
        with_precompile = RISC_ZERO.evaluate(trace, 0, 0)
        trace_plain = TraceStats()
        trace_plain.class_counts = {"alu": 1000}
        trace_plain.instructions = 1000
        without = RISC_ZERO.evaluate(trace_plain, 0, 0)
        assert with_precompile.user_cycles == \
            without.user_cycles + 5 * PRECOMPILE_CYCLES["risc0"]["__sha256"]


class TestCpuModel:
    def test_division_heavy_code_is_slower_on_cpu(self):
        div_heavy = "fn main() -> int { var a = 1000000; var i;" \
                    " for (i = 1; i < 200; i = i + 1) { a = a / i + 17; } return a; }"
        add_heavy = "fn main() -> int { var a = 1000000; var i;" \
                    " for (i = 1; i < 200; i = i + 1) { a = a - i + 17; } return a; }"
        _, _, cpu_div = measure(div_heavy)
        _, _, cpu_add = measure(add_heavy)
        div_metrics, add_metrics = cpu_div.finalize(), cpu_add.finalize()
        assert div_metrics.cycles > add_metrics.cycles
        # On the zkVM model the two differ far less (uniform cost).
        assert div_metrics.cycles / add_metrics.cycles > 1.5

    def test_ipc_is_bounded_by_issue_width(self):
        _, _, cpu = measure(REFERENCE_PROGRAM)
        metrics = cpu.finalize()
        assert 0.0 < metrics.ipc <= cpu.config.issue_width

    def test_branch_predictor_learns_regular_patterns(self):
        predictor = TwoBitPredictor()
        for _ in range(100):
            predictor.predict_and_update(1234, True)
        assert predictor.accuracy > 0.9

    def test_cache_hits_after_warmup(self):
        cache = DirectMappedCache(size_bytes=1024, line_bytes=64, ways=2)
        for _ in range(4):
            for address in range(0, 512, 4):
                cache.access(address)
        assert cache.hit_rate > 0.8

    def test_cache_conflicts_cause_misses(self):
        cache = DirectMappedCache(size_bytes=256, line_bytes=64, ways=1)
        for _ in range(8):
            cache.access(0)
            cache.access(256)  # maps to the same set, evicts the other line
        assert cache.misses >= 8


class TestPrecompiles:
    class _FakeMachine:
        def __init__(self):
            self.memory = {}
            self.output = []

        def _read_word(self, address):
            return self.memory.get(address & ~3, 0)

        def _write_word(self, address, value):
            self.memory[address & ~3] = value & 0xFFFFFFFF

    def test_print_and_read_input(self):
        machine = self._FakeMachine()
        interpret_host_call("__print", [123], machine)
        assert machine.output == [123]
        value = interpret_host_call("__read_input", [3], machine)
        assert 0 <= value <= 0xFFFFFFFF

    def test_sha256_is_deterministic_and_input_sensitive(self):
        machine = self._FakeMachine()
        for i in range(4):
            machine._write_word(0x100 + 4 * i, i + 1)
        interpret_host_call("__sha256", [0x100, 4, 0x200], machine)
        first = [machine._read_word(0x200 + 4 * i) for i in range(8)]
        machine._write_word(0x100, 999)
        interpret_host_call("__sha256", [0x100, 4, 0x200], machine)
        second = [machine._read_word(0x200 + 4 * i) for i in range(8)]
        assert first != second and any(first)

    def test_signature_verification_roundtrip(self):
        machine = self._FakeMachine()
        message = [i + 1 for i in range(8)]
        key = [i * 3 + 7 for i in range(8)]
        signature = make_signature(message, key, "ecdsa")
        for i in range(8):
            machine._write_word(0x100 + 4 * i, message[i])
            machine._write_word(0x200 + 4 * i, key[i])
            machine._write_word(0x300 + 4 * i, signature[i])
        assert interpret_host_call("__ecdsa_verify", [0x100, 0x200, 0x300], machine) == 1
        machine._write_word(0x300, 0)
        assert interpret_host_call("__ecdsa_verify", [0x100, 0x200, 0x300], machine) == 0

    def test_bigint_modmul(self):
        machine = self._FakeMachine()
        machine._write_word(0x100, 7)
        machine._write_word(0x200, 9)
        machine._write_word(0x300, 5)
        interpret_host_call("__bigint_modmul", [0x100, 0x200, 0x300, 0x400], machine)
        assert machine._read_word(0x400) == (7 * 9) % 5

    def test_unknown_host_call_rejected(self):
        with pytest.raises(ValueError):
            interpret_host_call("__nope", [], self._FakeMachine())


class TestAnalysis:
    def test_kendall_tau_perfect_orderings(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_pearson_linear_relationship(self):
        xs = [1, 2, 3, 4, 5]
        assert pearson_r(xs, [2 * x + 1 for x in xs]) == pytest.approx(1.0)

    def test_degenerate_inputs_return_zero(self):
        assert kendall_tau([1, 1, 1], [2, 3, 4]) == 0.0
        assert pearson_r([1], [2]) == 0.0

    def test_mean_and_stddev(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([1, 3]) == pytest.approx(2 ** 0.5)

    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]], title="T")
        assert "name" in text and "bb" in text and "1.50" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1])
