"""Tests for the IR core: types, values, builder, verifier, CFG analyses."""

import pytest

from repro.ir import (
    Alloca, BinaryOp, Branch, CondBranch, Constant, DominatorTree, Function,
    GEP, ICmp, IRBuilder, IntType, Load, LoopInfo, Module, Phi, Ret, Store,
    UndefValue, VerificationError, clone_module, dominance_frontiers,
    format_function, postorder, predecessors_map, reachable_blocks,
    remove_unreachable_blocks, reverse_postorder, verify_function, verify_module,
    I1, I32, PTR, VOID,
)
from repro.ir.interpreter import run_module


def build_loop_function(module=None):
    """for (i = 0; i < 10; i++) acc += i; return acc  (in SSA form)."""
    module = module or Module("m")
    function = module.create_function("loop_sum", I32, [])
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    exit_block = function.add_block("exit")
    builder = IRBuilder(entry)
    builder.br(header)

    i_phi = Phi(I32, "i")
    acc_phi = Phi(I32, "acc")
    header.append(i_phi)
    header.append(acc_phi)
    builder.position_at_end(header)
    cond = builder.icmp("slt", i_phi, Constant(10))
    builder.cond_br(cond, body, exit_block)

    builder.position_at_end(body)
    acc_next = builder.add(acc_phi, i_phi, "acc.next")
    i_next = builder.add(i_phi, Constant(1), "i.next")
    builder.br(header)

    i_phi.add_incoming(Constant(0), entry)
    i_phi.add_incoming(i_next, body)
    acc_phi.add_incoming(Constant(0), entry)
    acc_phi.add_incoming(acc_next, body)

    builder.position_at_end(exit_block)
    builder.ret(acc_phi)
    return module, function


class TestTypes:
    def test_integer_widths_and_masks(self):
        assert I32.size_bytes == 4 and I32.mask == 0xFFFFFFFF
        assert I1.bits == 1 and I1.wrap(3) == 1

    def test_signed_wrapping(self):
        assert I32.to_signed(0xFFFFFFFF) == -1
        assert I32.to_signed(0x7FFFFFFF) == 2 ** 31 - 1

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(24)

    def test_constants_wrap(self):
        assert Constant(-1).value == 0xFFFFFFFF
        assert Constant(-1).signed_value == -1


class TestUseDef:
    def test_users_tracked_and_rauw(self):
        module = Module("m")
        f = module.create_function("f", I32, [I32], ["x"])
        block = f.add_block("entry")
        builder = IRBuilder(block)
        a = builder.add(f.arguments[0], Constant(1), "a")
        b = builder.mul(a, Constant(2), "b")
        builder.ret(b)
        assert b in a.users
        replacement = Constant(7)
        a.replace_all_uses_with(replacement)
        assert b.lhs is replacement and a.users == []

    def test_erase_drops_operand_uses(self):
        module = Module("m")
        f = module.create_function("f", I32, [I32], ["x"])
        block = f.add_block("entry")
        builder = IRBuilder(block)
        a = builder.add(f.arguments[0], Constant(1), "a")
        builder.ret(f.arguments[0])
        a.erase()
        assert a not in block.instructions
        assert all(u is not a for u in f.arguments[0].users)


class TestVerifier:
    def test_accepts_well_formed_function(self):
        module, function = build_loop_function()
        verify_module(module)

    def test_rejects_missing_terminator(self):
        module = Module("m")
        f = module.create_function("f", I32, [])
        block = f.add_block("entry")
        block.append(BinaryOp("add", Constant(1), Constant(2), "x"))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_rejects_phi_after_non_phi(self):
        module, function = build_loop_function()
        header = function.blocks[1]
        phi = Phi(I32, "late")
        phi.add_incoming(Constant(0), function.blocks[0])
        phi.add_incoming(Constant(0), function.blocks[2])
        header.append(phi)  # appended at the end: after non-phi instructions
        with pytest.raises(VerificationError):
            verify_function(function)

    def test_rejects_use_not_dominating(self):
        module = Module("m")
        f = module.create_function("f", I32, [])
        entry = f.add_block("entry")
        other = f.add_block("other")
        merge = f.add_block("merge")
        builder = IRBuilder(entry)
        cond = builder.icmp("eq", Constant(0), Constant(0))
        builder.cond_br(cond, other, merge)
        builder.position_at_end(other)
        value = builder.add(Constant(1), Constant(2), "v")
        builder.br(merge)
        builder.position_at_end(merge)
        builder.ret(value)  # `value` does not dominate merge
        with pytest.raises(VerificationError):
            verify_function(f)


class TestCFGAnalyses:
    def test_reverse_postorder_starts_at_entry(self):
        module, function = build_loop_function()
        rpo = reverse_postorder(function)
        assert rpo[0] is function.entry_block
        assert len(rpo) == len(function.blocks)

    def test_predecessors_map(self):
        module, function = build_loop_function()
        preds = predecessors_map(function)
        header = function.blocks[1]
        assert {b.name for b in preds[header]} == {function.blocks[0].name,
                                                   function.blocks[2].name}

    def test_unreachable_block_removal(self):
        module, function = build_loop_function()
        dead = function.add_block("dead")
        IRBuilder(dead).ret(Constant(0))
        assert remove_unreachable_blocks(function) == 1
        assert dead not in function.blocks

    def test_dominator_tree(self):
        module, function = build_loop_function()
        entry, header, body, exit_block = function.blocks
        domtree = DominatorTree(function)
        assert domtree.dominates(entry, exit_block)
        assert domtree.dominates(header, body)
        assert not domtree.dominates(body, exit_block)
        assert domtree.strictly_dominates(entry, header)

    def test_dominance_frontiers(self):
        module, function = build_loop_function()
        entry, header, body, exit_block = function.blocks
        frontiers = dominance_frontiers(function)
        assert header in frontiers[body]  # back edge makes header its own frontier

    def test_loop_info_finds_natural_loop(self):
        module, function = build_loop_function()
        info = LoopInfo(function)
        loops = info.loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.name == "header.2"
        assert loop.depth == 1
        assert loop.preheader() is function.entry_block
        assert {b.name for b in loop.exit_blocks()} == {"exit.4"}


class TestCloning:
    def test_clone_module_is_independent_and_equivalent(self):
        module, function = build_loop_function()
        clone = clone_module(module)
        assert run_module(clone, "loop_sum").return_value == \
               run_module(module, "loop_sum").return_value == 45
        # Mutating the clone must not affect the original.
        clone.get_function("loop_sum").blocks[0].instructions[0]
        clone_f = clone.get_function("loop_sum")
        clone_f.remove_block(clone_f.blocks[-1])
        verify_module(module)

    def test_clone_preserves_attributes_and_globals(self):
        module = Module("m")
        module.add_global("g", I32, 4, [1, 2, 3, 4])
        f = module.create_function("f", I32, [])
        f.attributes.add("alwaysinline")
        block = f.add_block("entry")
        IRBuilder(block).ret(Constant(0))
        clone = clone_module(module)
        assert clone.get_global("g").initializer == [1, 2, 3, 4]
        assert "alwaysinline" in clone.get_function("f").attributes


class TestInterpreter:
    def test_loop_function_result(self):
        module, _ = build_loop_function()
        assert run_module(module, "loop_sum").return_value == sum(range(10))

    def test_select_and_undef(self):
        module = Module("m")
        f = module.create_function("f", I32, [I32], ["x"])
        block = f.add_block("entry")
        builder = IRBuilder(block)
        cond = builder.icmp("sgt", f.arguments[0], Constant(0))
        result = builder.select(cond, f.arguments[0], Constant(-1))
        builder.ret(result)
        assert run_module(module, "f", [5]).return_value == 5
        assert run_module(module, "f", [-5]).return_value == -1

    def test_memory_operations(self):
        module = Module("m")
        module.add_global("g", I32, 4)
        f = module.create_function("f", I32, [])
        block = f.add_block("entry")
        builder = IRBuilder(block)
        gv = module.get_global("g")
        ptr = builder.gep(gv, Constant(2), 4)
        builder.store(Constant(99), ptr)
        loaded = builder.load(ptr)
        builder.ret(loaded)
        assert run_module(module, "f").return_value == 99

    def test_division_by_zero_follows_riscv_semantics(self):
        module = Module("m")
        f = module.create_function("f", I32, [])
        block = f.add_block("entry")
        builder = IRBuilder(block)
        builder.ret(builder.sdiv(Constant(5), Constant(0)))
        assert run_module(module, "f").return_value == -1

    def test_printer_output_contains_structure(self):
        module, function = build_loop_function()
        text = format_function(function)
        assert "define i32 @loop_sum" in text
        assert "phi" in text and "icmp slt" in text and "br" in text
