"""Tests for the fuzz program generator (``repro.fuzz.genprog``)."""

import dataclasses

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend import compile_source, parse
from repro.fuzz import MODES, generate_program
from repro.ir import verify_module
from repro.ir.interpreter import run_module


def iter_nodes(node):
    """Every AST node reachable from ``node`` (depth-first)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if not isinstance(current, ast.Node):
            continue
        yield current
        for field in dataclasses.fields(current):
            value = getattr(current, field.name)
            if isinstance(value, ast.Node):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.Node))


def main_function(program: ast.Program) -> ast.FunctionDecl:
    return next(f for f in program.functions if f.name == "main")


class TestDeterminism:
    @pytest.mark.parametrize("mode", MODES)
    def test_same_seed_same_program(self, mode):
        first = generate_program(1234, mode=mode)
        second = generate_program(1234, mode=mode)
        assert first.source == second.source
        assert first.ast == second.ast  # dataclass equality, whole tree

    def test_different_seeds_differ(self):
        assert generate_program(1).source != generate_program(2).source

    def test_source_matches_ast(self):
        # The rendered source re-parses into a program with the same shape
        # (statement/function counts), so corpus files reduce faithfully.
        program = generate_program(7)
        reparsed = parse(program.source)
        assert len(reparsed.functions) == len(program.ast.functions)
        assert [f.name for f in reparsed.functions] == \
            [f.name for f in program.ast.functions]


class TestModeCoverage:
    """Each mode must plant its signature constructs (checked over several
    seeds: the constructs are *forced*, not merely probable)."""

    SEEDS = range(5)

    def test_loop_heavy_has_loops(self):
        for seed in self.SEEDS:
            main = main_function(generate_program(seed, "loop-heavy").ast)
            kinds = {type(n) for n in iter_nodes(main)}
            assert ast.ForStmt in kinds and ast.WhileStmt in kinds

    def test_call_heavy_has_helpers_and_recursion(self):
        for seed in self.SEEDS:
            program = generate_program(seed, "call-heavy").ast
            helper_names = {f.name for f in program.functions if f.name != "main"}
            assert len(helper_names) >= 3
            assert any(name.startswith("rec") for name in helper_names)
            calls = {n.callee for n in iter_nodes(main_function(program))
                     if isinstance(n, ast.CallExpr)}
            assert calls & helper_names, "main never calls a helper"

    def test_pointer_heavy_has_local_array_and_stores(self):
        for seed in self.SEEDS:
            main = main_function(generate_program(seed, "pointer-heavy").ast)
            nodes = list(iter_nodes(main))
            assert any(isinstance(n, ast.VarDecl) and n.array_size is not None
                       for n in nodes), "no local array declared"
            stores = [n for n in nodes if isinstance(n, ast.Assign)
                      and isinstance(n.target, ast.IndexExpr)]
            assert len(stores) >= 2

    def test_branchy_int_has_else_chain(self):
        for seed in self.SEEDS:
            main = main_function(generate_program(seed, "branchy-int").ast)
            nodes = list(iter_nodes(main))
            assert any(isinstance(n, ast.IfStmt) and n.else_body
                       for n in nodes), "no if/else chain"
            logic_ops = {n.op for n in nodes if isinstance(n, ast.BinaryExpr)
                         and n.op in ("&&", "||")}
            assert logic_ops, "no short-circuit operators"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            generate_program(0, mode="bogus")


class TestValiditySweep:
    """100 seeds (20 per mode): every generated program parses, verifies,
    terminates in the IR interpreter, and prints a deterministic checksum."""

    BUDGET = 2_000_000

    @pytest.mark.parametrize("mode", MODES)
    def test_sweep(self, mode):
        for seed in range(20):
            program = generate_program(seed, mode=mode)
            module = compile_source(program.source, module_name="sweep")
            verify_module(module)
            result = run_module(module, max_steps=self.BUDGET)
            assert result.output, f"seed {seed}/{mode}: no printed checksum"
            # Terminating + deterministic: a second run agrees exactly.
            again = run_module(module, max_steps=self.BUDGET)
            assert (result.output, result.return_value) == \
                (again.output, again.return_value)
