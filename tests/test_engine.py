"""Tests for the experiment engine: the content-addressed measurement cache,
parallel/serial result equivalence, cache invalidation, and the CLI."""

import json

import pytest

from repro import cli
from repro.benchmarks import get_benchmark
from repro.experiments import (
    BenchmarkRunner, ExperimentEngine, MeasurementCache, baseline_profile,
    custom_profile, measurement_fingerprint, profile_by_name,
)
from repro.experiments import figures
from repro.passes import PassConfig

PAIR_BENCHMARKS = ["fibonacci", "loop-sum"]
PAIR_PROFILES = ["baseline", "-O1"]


def _pairs():
    return [(b, profile_by_name(p)) for b in PAIR_BENCHMARKS for p in PAIR_PROFILES]


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("parallel_threshold", 1)
    return ExperimentEngine(cache_dir=tmp_path / "cache", **kwargs)


class TestFingerprint:
    def test_deterministic(self):
        benchmark = get_benchmark("fibonacci")
        profile = profile_by_name("-O1")
        assert measurement_fingerprint(benchmark, profile, 1000) == \
            measurement_fingerprint(benchmark, profile, 1000)

    def test_ignores_profile_name(self):
        benchmark = get_benchmark("fibonacci")
        level = profile_by_name("-O1")
        renamed = custom_profile("anything", list(level.passes), level.config)
        assert measurement_fingerprint(benchmark, level, 1000) == \
            measurement_fingerprint(benchmark, renamed, 1000)

    def test_sensitive_to_every_ingredient(self):
        benchmark = get_benchmark("fibonacci")
        base = custom_profile("c", ["inline"], PassConfig())
        reference = measurement_fingerprint(benchmark, base, 1000)
        variants = [
            # different benchmark source
            measurement_fingerprint(get_benchmark("loop-sum"), base, 1000),
            # different pass list
            measurement_fingerprint(
                benchmark, custom_profile("c", ["inline", "dce"], PassConfig()), 1000),
            # different pass-config knob
            measurement_fingerprint(
                benchmark,
                custom_profile("c", ["inline"], PassConfig(inline_threshold=999)),
                1000),
            # different backend cost model
            measurement_fingerprint(
                benchmark,
                custom_profile("c", ["inline"], PassConfig(), zkvm_aware_backend=True),
                1000),
            # different instruction budget
            measurement_fingerprint(benchmark, base, 2000),
        ]
        assert reference not in variants
        assert len(set(variants)) == len(variants)


class TestMeasurementCache:
    def test_round_trip(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        measurement = BenchmarkRunner().measure("fibonacci", baseline_profile())
        cache.put("a" * 64, measurement)
        restored = cache.get("a" * 64)
        assert restored.as_dict() == measurement.as_dict()
        assert len(cache) == 1
        assert cache.stats.stores == 1 and cache.stats.hits == 1

    def test_miss_and_corruption_tolerance(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        assert cache.get("b" * 64) is None
        assert cache.stats.misses == 1
        path = cache.path_for("c" * 64)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get("c" * 64) is None
        assert not path.exists(), "corrupt entry should be evicted"

    def test_clear(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        measurement = BenchmarkRunner().measure("fibonacci", baseline_profile())
        cache.put("d" * 64, measurement)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEngine:
    def test_parallel_results_identical_to_serial(self, tmp_path):
        serial = BenchmarkRunner().measure_pairs(_pairs())
        engine = _engine(tmp_path)
        parallel = engine.measure_pairs(_pairs())
        assert [m.as_dict() for m in serial] == [m.as_dict() for m in parallel]
        assert engine.stats.computed == len(_pairs())

    def test_warm_disk_cache_recomputes_nothing(self, tmp_path):
        _engine(tmp_path).measure_pairs(_pairs())
        warm = _engine(tmp_path)
        results = warm.measure_pairs(_pairs())
        assert warm.stats.computed == 0
        assert warm.stats.disk_hits == len(_pairs())
        assert all(m is not None for m in results)

    def test_single_measure_uses_disk_cache(self, tmp_path):
        profile = profile_by_name("-O1")
        _engine(tmp_path).measure("fibonacci", profile)
        warm = _engine(tmp_path)
        measurement = warm.measure("fibonacci", profile)
        assert warm.stats.disk_hits == 1 and warm.stats.computed == 0
        assert measurement.profile == "-O1"

    def test_pass_config_change_invalidates_cache(self, tmp_path):
        engine = _engine(tmp_path)
        engine.measure("fibonacci",
                       custom_profile("tuned", ["inline"],
                                      PassConfig(inline_threshold=100)))
        assert engine.stats.computed == 1
        engine.measure("fibonacci",
                       custom_profile("tuned", ["inline"],
                                      PassConfig(inline_threshold=500)))
        assert engine.stats.computed == 2, "changed knob must be a cache miss"
        engine.measure("fibonacci",
                       custom_profile("renamed", ["inline"],
                                      PassConfig(inline_threshold=500)))
        assert engine.stats.computed == 2, "renamed identical profile must hit"

    def test_on_error_none_maps_failures(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache", workers=1,
                                  max_instructions=10)  # absurdly small budget
        results = engine.measure_pairs([("fibonacci", baseline_profile())],
                                       on_error="none")
        assert results == [None]
        assert engine.stats.errors == 1
        with pytest.raises(Exception):
            engine.measure_pairs([("fibonacci", baseline_profile())])

    def test_figure_regenerator_runs_warm_from_cache(self, tmp_path):
        cold = _engine(tmp_path)
        first = figures.figure5_optimization_levels(cold, ["fibonacci"])
        assert cold.stats.computed > 0
        warm = _engine(tmp_path)
        second = figures.figure5_optimization_levels(warm, ["fibonacci"])
        assert second == first, "warm run must reproduce identical numbers"
        assert warm.stats.computed == 0, "second invocation must be all cache hits"

    def test_shared_runner_tuners_do_not_alias_candidates(self):
        # Two tuners on one name-keyed runner must not read each other's
        # "tuned-N" measurements (candidate names are globally unique).
        from repro.autotuner import GeneticAutotuner

        shared = BenchmarkRunner()
        GeneticAutotuner(runner=shared, seed=1, zkvm="risc0",
                         population_size=4).tune("loop-sum", iterations=5)
        shared_sp1 = GeneticAutotuner(runner=shared, seed=1, zkvm="sp1",
                                      population_size=4).tune("loop-sum",
                                                              iterations=5)
        fresh_sp1 = GeneticAutotuner(runner=BenchmarkRunner(), seed=1,
                                     zkvm="sp1", population_size=4) \
            .tune("loop-sum", iterations=5)
        assert shared_sp1.best.passes == fresh_sp1.best.passes
        assert shared_sp1.best_cycles == fresh_sp1.best_cycles

    def test_autotuner_generations_share_engine_cache(self, tmp_path):
        from repro.autotuner import GeneticAutotuner

        engine = _engine(tmp_path)
        result = GeneticAutotuner(runner=engine, seed=3, population_size=4) \
            .tune("loop-sum", iterations=6)
        assert result.evaluations == 6
        assert result.best_cycles <= result.baseline_cycles
        # Same seed, fresh engine on the same cache: every candidate is a hit.
        warm = _engine(tmp_path)
        rerun = GeneticAutotuner(runner=warm, seed=3, population_size=4) \
            .tune("loop-sum", iterations=6)
        assert warm.stats.computed == 0
        assert rerun.best_cycles == result.best_cycles


class TestCli:
    def _run(self, tmp_path, *argv):
        return cli.main(["--cache-dir", str(tmp_path / "cache"),
                         "--workers", "1", *argv])

    def test_measure_json(self, tmp_path, capsys):
        assert self._run(tmp_path, "measure", "fibonacci",
                         "--profile", "baseline", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["benchmark"] == "fibonacci"
        assert payload[0]["risc0"]["total_cycles"] > 0

    def test_figure_smoke_and_warm_cache(self, tmp_path, capsys):
        args = ("figure", "5", "--benchmarks", "fibonacci", "--json")
        assert self._run(tmp_path, *args) == 0
        first = json.loads(capsys.readouterr().out)
        assert self._run(tmp_path, *args) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == first
        assert "computed=0" in captured.err, "second CLI run must be fully cached"

    def test_table_smoke(self, tmp_path, capsys):
        assert self._run(tmp_path, "table", "6", "--benchmarks", "fibonacci",
                         "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["risc0/proving_time"]["min"] > 0

    def test_compile_run_and_list(self, tmp_path, capsys):
        assert self._run(tmp_path, "compile", "fibonacci", "--profile=-O1") == 0
        assert "main:" in capsys.readouterr().out
        assert self._run(tmp_path, "run", "loop-sum") == 0
        assert "return value" in capsys.readouterr().out
        assert cli.main(["list", "benchmarks"]) == 0
        assert "fibonacci" in capsys.readouterr().out

    def test_unknown_inputs_fail_cleanly(self, tmp_path, capsys):
        assert self._run(tmp_path, "figure", "99") == 2
        assert self._run(tmp_path, "measure", "no-such-benchmark") == 2

    @pytest.mark.parametrize("lanes", ["0", "-3"])
    def test_run_batch_rejects_non_positive_lane_counts(self, tmp_path,
                                                        capsys, lanes):
        assert self._run(tmp_path, "run", "loop-sum", "--batch",
                         "--lanes", lanes) == 2
        err = capsys.readouterr().err
        assert "--lanes must be a positive integer" in err, err

    def test_run_translate_smoke(self, tmp_path, capsys):
        assert self._run(tmp_path, "run", "loop-sum", "--translate") == 0
        out = capsys.readouterr().out
        assert "[translated superblocks]" in out
        assert "return value" in out

    def test_run_translate_rejects_other_engines(self, tmp_path, capsys):
        assert self._run(tmp_path, "run", "loop-sum", "--translate",
                         "--reference") == 2
        assert "--translate cannot be combined" in capsys.readouterr().err
