"""Differential tests: every pass and every preset pipeline must preserve the
observable behaviour (return value + output) of the guest programs, both under
the IR interpreter and end-to-end through the RISC-V backend and emulator."""

import pytest

from repro.backend import compile_module
from repro.emulator import run_program
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.interpreter import run_module
from repro.passes import (
    OPTIMIZATION_LEVELS, available_passes, pipeline_for_level, run_passes,
)

from support import REFERENCE_PROGRAM

SMALL_PROGRAMS = {
    "arith": """
        fn main() -> int {
          var acc = 0;
          var i;
          for (i = 1; i <= 30; i = i + 1) { acc = acc + i * i - i / 3 + i % 7; }
          print(acc);
          return acc;
        }
    """,
    "nested-loops": """
        global grid[64];
        fn main() -> int {
          var i; var j;
          for (i = 0; i < 8; i = i + 1) {
            for (j = 0; j < 8; j = j + 1) { grid[i * 8 + j] = (i + 1) * (j + 2); }
          }
          var acc = 0;
          for (i = 0; i < 64; i = i + 1) { acc = acc + grid[i]; }
          print(acc);
          return acc;
        }
    """,
    "branches": """
        fn pick(x) -> int {
          if (x < 0) { return 0 - x; }
          if (x % 3 == 0) { return x / 3; }
          if (x % 3 == 1) { return x * 2 + 1; }
          return x - 1;
        }
        fn main() -> int {
          var acc = 0;
          var i;
          for (i = 0 - 10; i < 20; i = i + 1) { acc = acc + pick(i); }
          print(acc);
          return acc;
        }
    """,
    "calls-and-recursion": """
        fn fib(n) -> int { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn twice(x) -> int { return x + x; }
        fn main() -> int {
          var r = fib(11) + twice(fib(7));
          print(r);
          return r;
        }
    """,
}


@pytest.fixture(scope="module")
def interpreter_references():
    refs = {}
    for name, source in SMALL_PROGRAMS.items():
        module = compile_source(source, name)
        refs[name] = (module, run_module(module))
    return refs


@pytest.mark.parametrize("pass_name", available_passes())
def test_single_pass_preserves_interpreter_behaviour(pass_name, interpreter_references):
    for name, (module, reference) in interpreter_references.items():
        optimized = run_passes(module, [pass_name])
        verify_module(optimized)
        result = run_module(optimized)
        assert result.return_value == reference.return_value, \
            f"{pass_name} changed the return value of {name}"
        assert result.output == reference.output, \
            f"{pass_name} changed the output of {name}"


@pytest.mark.parametrize("pass_name", available_passes())
def test_single_pass_preserves_machine_behaviour(pass_name):
    module = compile_source(REFERENCE_PROGRAM, "reference")
    reference = run_program(compile_module(module))
    optimized = run_passes(module, [pass_name])
    result = run_program(compile_module(optimized))
    assert result.return_value == reference.return_value
    assert result.output == reference.output


@pytest.mark.parametrize("level", [l for l in OPTIMIZATION_LEVELS if l != "baseline"])
def test_preset_levels_preserve_behaviour(level, interpreter_references):
    for name, (module, reference) in interpreter_references.items():
        optimized = module.clone()
        pipeline_for_level(level).run(optimized)
        verify_module(optimized)
        result = run_module(optimized)
        assert result.return_value == reference.return_value
        assert result.output == reference.output


@pytest.mark.parametrize("level", ["-O1", "-O2", "-O3"])
def test_optimization_reduces_machine_instructions(level):
    module = compile_source(REFERENCE_PROGRAM, "reference")
    baseline = run_program(compile_module(module))
    optimized = module.clone()
    pipeline_for_level(level).run(optimized)
    result = run_program(compile_module(optimized))
    assert result.return_value == baseline.return_value
    assert result.instructions < baseline.instructions, \
        f"{level} did not reduce dynamic instruction count"


def test_zkvm_aware_o3_preserves_behaviour_and_reduces_instructions():
    module = compile_source(REFERENCE_PROGRAM, "reference")
    baseline = run_program(compile_module(module))
    optimized = module.clone()
    pipeline_for_level("-O3", zkvm_aware=True).run(optimized)
    result = run_program(compile_module(optimized))
    assert result.return_value == baseline.return_value
    assert result.instructions < baseline.instructions


def test_pass_sequences_compose():
    module = compile_source(SMALL_PROGRAMS["branches"], "branches")
    reference = run_module(module)
    sequence = ["mem2reg", "instcombine", "simplifycfg", "gvn", "licm",
                "loop-unroll", "jump-threading", "adce", "simplifycfg"]
    optimized = run_passes(module, sequence, verify_each=True)
    assert run_module(optimized).return_value == reference.return_value
