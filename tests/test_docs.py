"""Documentation health checks: link integrity and CLI/doc drift.

The CI ``docs`` job runs this module (via ``make docs-check``) so README.md
and everything under ``docs/`` stay honest:

* every relative markdown link and every backtick-quoted repository path
  must point at a file that exists;
* ``docs/GUIDE.md`` must document every ``repro`` subcommand and every
  global CLI flag (the drift this PR was born to fix: the CLI had grown to
  nine subcommands with no user guide).

External (``http(s)://``) links are deliberately not fetched — the test
suite runs offline.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links are checked.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
#: Backtick-quoted repo-relative paths (e.g. ``docs/ARCHITECTURE.md``,
#: `benchmarks/bench_backend.py`) — README prose references files this way.
_PATH_REF = re.compile(r"`([A-Za-z0-9_./-]+\.(?:md|py|json|yml|toml))`")


def _targets(text: str):
    for match in _LINK.finditer(text):
        yield match.group(1)
    for match in _PATH_REF.finditer(text):
        yield match.group(1)


def _repo_files():
    """All tracked-ish repo files as repo-relative POSIX paths."""
    files = []
    for path in REPO_ROOT.rglob("*"):
        if path.is_file() and ".git" not in path.parts \
                and "__pycache__" not in path.parts:
            files.append(path.relative_to(REPO_ROOT).as_posix())
    return files


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    repo_files = _repo_files()
    basenames = {path.rsplit("/", 1)[-1] for path in repo_files}
    missing = []
    for target in _targets(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        # Markdown links and pathed references resolve relative to the doc,
        # the repo root, or as a path suffix anywhere in the tree (docs say
        # `backend/seed_lowering.py` for src/repro/backend/seed_lowering.py).
        if (doc.parent / target).exists() or (REPO_ROOT / target).exists():
            continue
        if "/" in target:
            if any(path.endswith("/" + target) for path in repo_files):
                continue
        elif target in basenames:
            # Bare module names (`lexer.py`) are package-relative prose; any
            # file of that name anywhere in the repo satisfies them.
            continue
        missing.append(target)
    assert not missing, f"{doc.name}: dead references {missing}"


def test_guide_covers_every_cli_subcommand():
    from repro.cli import build_parser

    guide = (REPO_ROOT / "docs" / "GUIDE.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(a for a in parser._actions
                      if hasattr(a, "choices") and a.choices)
    for subcommand in subparsers.choices:
        assert f"repro {subcommand}" in guide, \
            f"docs/GUIDE.md does not document `repro {subcommand}`"


def test_guide_covers_every_global_flag():
    from repro.cli import build_parser

    guide = (REPO_ROOT / "docs" / "GUIDE.md").read_text(encoding="utf-8")
    parser = build_parser()
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--"):
                assert option in guide, \
                    f"docs/GUIDE.md does not document the global {option} flag"


def test_readme_links_to_guide():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/GUIDE.md" in readme
