"""Tests for the RISC-V backend (lowering, register allocation) and emulator."""

import pytest

from repro.backend import (
    CPU_COST_MODEL, ZKVM_COST_MODEL, compile_module, lower_module,
)
from repro.backend.isa import (
    ALLOCATABLE, CALLEE_SAVED, MachineInstr, classify,
)
from repro.backend.regalloc import compute_live_intervals
from repro.emulator import EmulationError, Machine, run_program
from repro.frontend import compile_source
from repro.ir.interpreter import run_module
from repro.passes import run_passes

from support import REFERENCE_PROGRAM, execute


class TestLowering:
    def test_simple_program_round_trips(self):
        stats = execute("fn main() -> int { return 6 * 7; }")
        assert stats.return_value == 42

    def test_virtual_registers_eliminated(self):
        program = compile_module(compile_source(REFERENCE_PROGRAM))
        for asm in program.functions.values():
            for instr in asm.instructions():
                for op in instr.operands:
                    assert not (isinstance(op, str) and op.startswith("%")), \
                        f"virtual register leaked into final code: {instr}"

    def test_branch_fusion_avoids_materialized_compares(self):
        source = """
        fn main() -> int {
          var acc = 0; var i;
          for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
          return acc;
        }
        """
        program = compile_module(compile_source(source))
        opcodes = [i.opcode for i in program.functions["main"].instructions()]
        assert any(op in ("blt", "bge", "bne", "beq", "bltu", "bgeu") for op in opcodes)

    def test_select_lowering_follows_cost_model(self):
        source = """
        fn main() -> int {
          var x = read_input(0) % 10;
          var y;
          if (x < 5) { y = 1; } else { y = 2; }
          return y;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg", "simplifycfg"])
        branchless = lower_module(module, CPU_COST_MODEL)
        branchy = lower_module(module, ZKVM_COST_MODEL)
        branchless_ops = [i.opcode for i in branchless.functions["main"].instructions()]
        branchy_ops = [i.opcode for i in branchy.functions["main"].instructions()]
        assert branchy_ops.count("bnez") >= branchless_ops.count("bnez")

    def test_globals_are_laid_out_and_initialized(self):
        source = """
        global table[4] = {5, 6, 7, 8};
        fn main() -> int { return table[2]; }
        """
        program = compile_module(compile_source(source))
        assert "table" in program.globals_layout
        assert run_program(program).return_value == 7

    def test_host_calls_lower_to_ecall(self):
        program = compile_module(compile_source("fn main() -> int { print(3); return 0; }"))
        opcodes = [i.opcode for i in program.functions["main"].instructions()]
        assert "ecall" in opcodes

    def test_instruction_classification(self):
        assert classify("add") == "alu"
        assert classify("mul") == "mul"
        assert classify("div") == "div"
        assert classify("lw") == "load"
        assert classify("sw") == "store"
        assert classify("bne") == "branch"
        assert classify("ecall") == "system"
        with pytest.raises(ValueError):
            classify("vadd.vv")


class TestRegisterAllocation:
    def test_high_pressure_functions_spill_but_stay_correct(self):
        # 24 simultaneously live values exceed the allocatable register pool.
        names = [f"v{i}" for i in range(24)]
        decls = "\n".join(f"var {n} = read_input({i}) % 100 + {i};"
                          for i, n in enumerate(names))
        total = " + ".join(names)
        source = f"fn main() -> int {{\n{decls}\nvar blocker = read_input(99);\nreturn {total};\n}}"
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        instrs = program.functions["main"].instructions()
        assert any("spill" in i.comment or "reload" in i.comment for i in instrs)
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_callee_saved_registers_are_saved_and_restored(self):
        source = """
        fn leaf(x) -> int { return x * 2; }
        fn main() -> int {
          var keep = read_input(0) % 50;
          var other = leaf(keep);
          return keep + other;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        main_instrs = program.functions["main"].instructions()
        saved = [i for i in main_instrs if i.opcode == "sw" and i.operands[0] in CALLEE_SAVED]
        restored = [i for i in main_instrs if i.opcode == "lw" and i.operands[0] in CALLEE_SAVED]
        assert len(saved) >= 1 and len(restored) >= len(saved)
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_live_intervals_cover_loop_carried_values(self):
        source = """
        fn main() -> int {
          var acc = 0; var i;
          for (i = 0; i < 50; i = i + 1) { acc = acc + i; }
          return acc;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg"])
        program = lower_module(module)
        intervals = compute_live_intervals(program.functions["main"].body)
        assert intervals
        # Loop-carried virtual registers must have ranges spanning the back edge
        # (end strictly after start).
        assert any(iv.end > iv.start + 5 for iv in intervals.values())


class TestEmulator:
    def test_reference_program_matches_interpreter(self, reference_module, reference_result):
        stats = run_program(compile_module(reference_module))
        assert stats.return_value == reference_result.return_value
        assert stats.output == reference_result.output

    def test_trace_statistics_are_collected(self):
        stats = execute(REFERENCE_PROGRAM)
        assert stats.instructions > 0
        assert stats.loads > 0 and stats.stores > 0
        assert stats.branches_taken > 0
        assert stats.calls > 0
        assert sum(stats.class_counts.values()) == stats.instructions

    def test_instruction_limit_enforced(self):
        source = "fn main() -> int { while (1) { } return 0; }"
        program = compile_module(compile_source(source))
        with pytest.raises(EmulationError):
            run_program(program, max_instructions=10_000)

    def test_unknown_entry_function_rejected(self):
        program = compile_module(compile_source("fn main() -> int { return 0; }"))
        with pytest.raises(EmulationError):
            run_program(program, entry="does_not_exist")

    def test_page_tracking(self):
        source = """
        global big[2048];
        fn main() -> int {
          var i;
          for (i = 0; i < 2048; i = i + 32) { big[i] = i; }
          return big[0];
        }
        """
        program = compile_module(compile_source(source))
        machine = Machine(program)
        stats = machine.run()
        machine_pages = machine.page_in_events
        assert stats.unique_pages >= 8  # 2048 words span 8 KiB = 8 pages
        assert machine_pages >= stats.unique_pages - 1

    def test_precompile_host_calls(self):
        source = """
        global buffer[16];
        global digest[8];
        fn main() -> int {
          var i;
          for (i = 0; i < 16; i = i + 1) { buffer[i] = i; }
          sha256(buffer, 16, digest);
          return digest[0];
        }
        """
        stats = execute(source)
        assert stats.host_calls.get("__sha256") == 1
        assert stats.return_value != 0

    def test_read_input_values(self):
        source = "fn main() -> int { return read_input(0) + read_input(1); }"
        program = compile_module(compile_source(source))
        stats = run_program(program, input_values=[30, 12])
        assert stats.return_value == 42
