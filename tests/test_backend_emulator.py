"""Tests for the RISC-V backend (lowering, peephole, register allocation) and
emulator."""

import pytest

from repro.backend import (
    CPU_COST_MODEL, ZKVM_COST_MODEL, compile_module, lower_module,
    run_peephole,
)
from repro.backend.isa import (
    ALLOCATABLE, CALLEE_SAVED, MachineInstr, classify,
)
from repro.backend.regalloc import (
    LinearScanAllocator, SPILL_SCRATCH, compute_live_intervals,
    instr_registers,
)
from repro.emulator import EmulationError, Machine, run_program
from repro.emulator.decoder import decode_program
from repro.frontend import compile_source
from repro.ir.interpreter import run_module
from repro.passes import run_passes

from support import REFERENCE_PROGRAM, execute


class TestLowering:
    def test_simple_program_round_trips(self):
        stats = execute("fn main() -> int { return 6 * 7; }")
        assert stats.return_value == 42

    def test_virtual_registers_eliminated(self):
        program = compile_module(compile_source(REFERENCE_PROGRAM))
        for asm in program.functions.values():
            for instr in asm.instructions():
                for op in instr.operands:
                    assert not (isinstance(op, str) and op.startswith("%")), \
                        f"virtual register leaked into final code: {instr}"

    def test_branch_fusion_avoids_materialized_compares(self):
        source = """
        fn main() -> int {
          var acc = 0; var i;
          for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
          return acc;
        }
        """
        program = compile_module(compile_source(source))
        opcodes = [i.opcode for i in program.functions["main"].instructions()]
        assert any(op in ("blt", "bge", "bne", "beq", "bltu", "bgeu") for op in opcodes)

    def test_select_lowering_follows_cost_model(self):
        source = """
        fn main() -> int {
          var x = read_input(0) % 10;
          var y;
          if (x < 5) { y = 1; } else { y = 2; }
          return y;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg", "simplifycfg"])
        branchless = lower_module(module, CPU_COST_MODEL)
        branchy = lower_module(module, ZKVM_COST_MODEL)
        branchless_ops = [i.opcode for i in branchless.functions["main"].instructions()]
        branchy_ops = [i.opcode for i in branchy.functions["main"].instructions()]
        assert branchy_ops.count("bnez") >= branchless_ops.count("bnez")

    def test_globals_are_laid_out_and_initialized(self):
        source = """
        global table[4] = {5, 6, 7, 8};
        fn main() -> int { return table[2]; }
        """
        program = compile_module(compile_source(source))
        assert "table" in program.globals_layout
        assert run_program(program).return_value == 7

    def test_host_calls_lower_to_ecall(self):
        program = compile_module(compile_source("fn main() -> int { print(3); return 0; }"))
        opcodes = [i.opcode for i in program.functions["main"].instructions()]
        assert "ecall" in opcodes

    def test_instruction_classification(self):
        assert classify("add") == "alu"
        assert classify("mul") == "mul"
        assert classify("div") == "div"
        assert classify("lw") == "load"
        assert classify("sw") == "store"
        assert classify("bne") == "branch"
        assert classify("ecall") == "system"
        with pytest.raises(ValueError):
            classify("vadd.vv")


#: (opcode, operands) -> (expected def names, expected use names).  The
#: classification must match what the instruction actually reads/writes when
#: executed — i.e. the semantics in ``repro.emulator.decoder`` (see the
#: cross-check below).  ``call``/``ecall`` write ``ra``/``a0`` as *implicit*
#: fixed physical registers, never via operands, so they define nothing here.
INSTR_REGISTER_TABLE = [
    ("add",   ["t0", "t1", "t2"],   ["t0"], ["t1", "t2"]),
    ("sub",   ["%v1", "%v2", "%v3"], ["%v1"], ["%v2", "%v3"]),
    ("addi",  ["t0", "t1", 5],      ["t0"], ["t1"]),
    ("slti",  ["t0", "t1", -3],     ["t0"], ["t1"]),
    ("sltiu", ["t0", "t1", 1],      ["t0"], ["t1"]),
    ("li",    ["t0", 42],           ["t0"], []),
    ("lui",   ["t0", 1],            ["t0"], []),
    ("mv",    ["t0", "a0"],         ["t0"], ["a0"]),
    ("lw",    ["t0", 4, "sp"],      ["t0"], ["sp"]),
    ("lb",    ["t0", 0, "t1"],      ["t0"], ["t1"]),
    # Stores read the value *and* the base; operand order is value, offset,
    # base — nothing is written.
    ("sw",    ["t0", 4, "sp"],      [], ["t0", "sp"]),
    ("sb",    ["t0", 0, "t1"],      [], ["t0", "t1"]),
    ("sh",    ["t0", 0, "t1"],      [], ["t0", "t1"]),
    ("beq",   ["t0", "t1", ".L"],   [], ["t0", "t1"]),
    ("bne",   ["t0", "zero", ".L"], [], ["t0", "zero"]),
    ("blt",   ["t0", "t1", ".L"],   [], ["t0", "t1"]),
    ("bgeu",  ["t0", "t1", ".L"],   [], ["t0", "t1"]),
    ("beqz",  ["t0", ".L"],         [], ["t0"]),
    ("bnez",  ["%v9", ".L"],        [], ["%v9"]),
    ("j",     [".L"],               [], []),
    ("call",  ["helper"],           [], []),
    ("ret",   [],                   [], []),
    ("ecall", [],                   [], []),
    ("ebreak", [],                  [], []),
    ("nop",   [],                   [], []),
    # jal/jalr write the link register operand; jalr also reads its base.
    ("jal",   ["ra", ".L"],         ["ra"], []),
    ("jalr",  ["zero", "ra", 0],    ["zero"], ["ra"]),
]


class TestInstrRegisters:
    @pytest.mark.parametrize("opcode,operands,expected_defs,expected_uses",
                             INSTR_REGISTER_TABLE)
    def test_def_use_classification(self, opcode, operands, expected_defs,
                                    expected_uses):
        instr = MachineInstr(opcode, list(operands))
        def_positions, use_positions = instr_registers(instr)
        assert [operands[i] for i in def_positions] == expected_defs
        assert [operands[i] for i in use_positions] == expected_uses

    @pytest.mark.parametrize("opcode,operands,expected_defs,expected_uses",
                             INSTR_REGISTER_TABLE)
    def test_matches_decoder_semantics(self, opcode, operands, expected_defs,
                                       expected_uses, monkeypatch):
        """The def/use split must agree with the executable semantics the
        decoder reports (its per-pc dest/sources observer metadata)."""
        from repro.backend.isa import AssemblyFunction, AssemblyProgram

        if opcode in ("lb", "sb", "sh", "ret", "ebreak"):
            # Decoded to a lazy fault (or expanded before decode, for ret):
            # the decoder carries no dest/source metadata to compare against.
            pytest.skip("no executable decoder semantics for this opcode")
        program = AssemblyProgram(functions={"f": AssemblyFunction(
            "f", body=[MachineInstr(opcode, list(operands))])})
        decoded = decode_program(program)
        dest, sources = decoded.dests[0], decoded.sources[0]
        # The decoder models the implicit architectural writes/reads of
        # call/ecall (ra, a0/a7); instr_registers deliberately reports only
        # *operand* registers — the allocator never assigns those.
        if opcode in ("call", "ecall"):
            assert expected_defs == [] and expected_uses == []
            return
        decoder_defs = [dest] if dest is not None else []
        assert [operands[i] for i in instr_registers(
            MachineInstr(opcode, list(operands)))[0]] == decoder_defs
        assert [operands[i] for i in instr_registers(
            MachineInstr(opcode, list(operands)))[1]] == sources


class TestPeephole:
    def test_store_to_load_forwarding_in_block(self):
        # Unoptimized allocas: the value is stored then immediately reloaded;
        # the peephole must forward the stored register.
        source = """
        fn main() -> int {
          var x = read_input(0);
          var y = x + 1;
          return y;
        }
        """
        module = compile_source(source)
        program = lower_module(module, CPU_COST_MODEL)
        before = sum(1 for i in program.functions["main"].instructions()
                     if i.opcode == "lw")
        hits = run_peephole(program.functions["main"])
        after = sum(1 for i in program.functions["main"].instructions()
                    if i.opcode == "lw")
        assert hits["load_forwarded"] > 0
        assert after < before

    def test_branch_over_jump_is_flipped(self):
        source = """
        fn main() -> int {
          var x = read_input(0);
          if (x < 10) { x = x + 1; }
          return x;
        }
        """
        program = compile_module(compile_source(source))
        ops = [i.opcode for i in program.functions["main"].instructions()]
        # The flip leaves at most one unconditional jump per branch shape;
        # the seed emitted a `j` after every conditional branch.
        branches = sum(1 for op in ops if op in
                       ("beq", "bne", "blt", "bge", "bltu", "bgeu",
                        "beqz", "bnez"))
        jumps = ops.count("j")
        assert branches >= 1
        assert jumps < branches

    def test_constant_zero_uses_zero_register(self):
        program = compile_module(compile_source(
            "global g[4];\nfn main() -> int { g[0] = 0; return g[1]; }"))
        stores = [i for i in program.functions["main"].instructions()
                  if i.opcode == "sw" and i.operands[0] == "zero"]
        assert stores, "storing constant 0 should use the zero register"

    def test_behaviour_preserved_on_reference_program(self, reference_module,
                                                      reference_result):
        stats = run_program(compile_module(reference_module))
        assert stats.return_value == reference_result.return_value
        assert stats.output == reference_result.output

    def test_branchy_select_false_arm_does_not_poison_block_cache(self):
        # Regression: under the branchy (zkVM) select lowering, the false
        # arm's materialization is emitted *after* the bnez and only runs on
        # the false path.  It must not enter the per-block reuse cache, or a
        # later use of the same constant/address in the block reads a
        # register whose defining instruction was branched over.
        from repro.ir import I32, IRBuilder, Module

        module = Module("m")
        ga = module.add_global("ga", I32, 1, [32])
        gb = module.add_global("gb", I32, 1, [11])
        f = module.create_function("main", I32, [])
        entry = f.add_block("entry")
        builder = IRBuilder(entry)
        cond = builder.icmp("eq", builder.const(1), builder.const(1))
        # The false arm (ga, the region-aligned first global) is only
        # materialized on the skipped path; the later load of ga reuses the
        # same 2 KiB-region constant and must not hit a poisoned cache entry.
        chosen = builder.select(cond, gb, ga)          # always picks gb
        first = builder.load(chosen)                   # 11
        second = builder.load(ga)                      # must still read ga
        builder.ret(builder.add(first, second))        # 11 + 32

        for seed_backend in (False, True):
            program = compile_module(module, ZKVM_COST_MODEL,
                                     seed_backend=seed_backend)
            assert run_program(program).return_value == 43, \
                f"seed_backend={seed_backend}"


class TestRegisterAllocation:
    def test_high_pressure_functions_spill_but_stay_correct(self):
        # 24 simultaneously live values exceed the allocatable register pool.
        names = [f"v{i}" for i in range(24)]
        decls = "\n".join(f"var {n} = read_input({i}) % 100 + {i};"
                          for i, n in enumerate(names))
        total = " + ".join(names)
        source = f"fn main() -> int {{\n{decls}\nvar blocker = read_input(99);\nreturn {total};\n}}"
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        instrs = program.functions["main"].instructions()
        assert any("spill" in i.comment or "reload" in i.comment for i in instrs)
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_callee_saved_registers_are_saved_and_restored(self):
        source = """
        fn leaf(x) -> int { return x * 2; }
        fn main() -> int {
          var keep = read_input(0) % 50;
          var other = leaf(keep);
          return keep + other;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        main_instrs = program.functions["main"].instructions()
        saved = [i for i in main_instrs if i.opcode == "sw" and i.operands[0] in CALLEE_SAVED]
        restored = [i for i in main_instrs if i.opcode == "lw" and i.operands[0] in CALLEE_SAVED]
        assert len(saved) >= 1 and len(restored) >= len(saved)
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_call_crossing_intervals_use_callee_saved_or_spill(self):
        # Values live across a call must never sit in caller-saved registers.
        source = """
        fn leaf(x) -> int { return x * 3 + 1; }
        fn main() -> int {
          var a = read_input(0) % 7; var b = read_input(1) % 11;
          var c = read_input(2) % 13; var d = read_input(3) % 17;
          var r = leaf(a + b);
          return r + a + b + c + d;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg"])
        program = lower_module(module)
        asm = program.functions["main"]
        run_peephole(asm)
        allocator = LinearScanAllocator(asm)
        allocator.run()
        crossing = [iv for iv in allocator.intervals.values()
                    if iv.crosses_call]
        assert crossing, "test program must have call-crossing values"
        # Every crossing interval must have ended up in a callee-saved
        # register or on the stack — never caller-saved.
        for iv in crossing:
            assert iv.assigned is None or iv.assigned in CALLEE_SAVED, \
                f"{iv.vreg} crosses a call but got {iv.assigned}"
        # End-to-end: the fully compiled program computes the right value.
        expected = run_module(module).return_value
        assert run_program(compile_module(module)).return_value == expected

    def test_spill_scratch_never_exhausted_on_two_spilled_uses(self):
        # A store whose value and base are both spilled needs two scratch
        # registers (t5/t6) — the worst case an RV32IM instruction can pose.
        # Build a function with far more simultaneously-live values than
        # registers so stores of spilled values through spilled bases occur.
        names = [f"v{i}" for i in range(30)]
        decls = "\n".join(f"var {n} = read_input({i}) + {i};"
                          for i, n in enumerate(names))
        stores = "\n".join(f"out[{i}] = {n};" for i, n in enumerate(names))
        total = " + ".join(names)
        source = (f"global out[32];\nfn main() -> int {{\n{decls}\n"
                  f"{stores}\nvar blocker = read_input(99);\n"
                  f"return {total} + out[7];\n}}")
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        instrs = program.functions["main"].instructions()
        # No virtual register survives, and only t5/t6 appear as scratch.
        for instr in instrs:
            for op in instr.operands:
                assert not (isinstance(op, str) and op.startswith("%")), instr
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_more_than_16_live_values_round_trip(self):
        # >16 simultaneously-live loop-carried values force spilling inside
        # the loop; the emulator result must match the IR interpreter.
        names = [f"a{i}" for i in range(20)]
        decls = "\n".join(f"var {n} = read_input({i}) % 9 + {i};"
                          for i, n in enumerate(names))
        updates = "\n".join(
            f"{n} = {n} + {names[(i + 1) % len(names)]} % 5;"
            for i, n in enumerate(names))
        total = " + ".join(names)
        source = (f"fn main() -> int {{\n{decls}\nvar k;\n"
                  f"for (k = 0; k < 6; k = k + 1) {{\n{updates}\n}}\n"
                  f"return {total};\n}}")
        module = run_passes(compile_source(source), ["mem2reg"])
        program = compile_module(module)
        stats = program.backend_stats["main"]
        assert stats["spilled_vregs"] > 0, "the test must actually spill"
        expected = run_module(module).return_value
        assert run_program(program).return_value == expected

    def test_live_intervals_cover_loop_carried_values(self):
        source = """
        fn main() -> int {
          var acc = 0; var i;
          for (i = 0; i < 50; i = i + 1) { acc = acc + i; }
          return acc;
        }
        """
        module = run_passes(compile_source(source), ["mem2reg"])
        program = lower_module(module)
        intervals = compute_live_intervals(program.functions["main"].body)
        assert intervals
        # Loop-carried virtual registers must have ranges spanning the back edge
        # (end strictly after start).
        assert any(iv.end > iv.start + 5 for iv in intervals.values())


class TestEmulator:
    def test_reference_program_matches_interpreter(self, reference_module, reference_result):
        stats = run_program(compile_module(reference_module))
        assert stats.return_value == reference_result.return_value
        assert stats.output == reference_result.output

    def test_trace_statistics_are_collected(self):
        stats = execute(REFERENCE_PROGRAM)
        assert stats.instructions > 0
        assert stats.loads > 0 and stats.stores > 0
        assert stats.branches_taken > 0
        assert stats.calls > 0
        assert sum(stats.class_counts.values()) == stats.instructions

    def test_instruction_limit_enforced(self):
        source = "fn main() -> int { while (1) { } return 0; }"
        program = compile_module(compile_source(source))
        with pytest.raises(EmulationError):
            run_program(program, max_instructions=10_000)

    def test_unknown_entry_function_rejected(self):
        program = compile_module(compile_source("fn main() -> int { return 0; }"))
        with pytest.raises(EmulationError):
            run_program(program, entry="does_not_exist")

    def test_page_tracking(self):
        source = """
        global big[2048];
        fn main() -> int {
          var i;
          for (i = 0; i < 2048; i = i + 32) { big[i] = i; }
          return big[0];
        }
        """
        program = compile_module(compile_source(source))
        machine = Machine(program)
        stats = machine.run()
        machine_pages = machine.page_in_events
        assert stats.unique_pages >= 8  # 2048 words span 8 KiB = 8 pages
        assert machine_pages >= stats.unique_pages - 1

    def test_precompile_host_calls(self):
        source = """
        global buffer[16];
        global digest[8];
        fn main() -> int {
          var i;
          for (i = 0; i < 16; i = i + 1) { buffer[i] = i; }
          sha256(buffer, 16, digest);
          return digest[0];
        }
        """
        stats = execute(source)
        assert stats.host_calls.get("__sha256") == 1
        assert stats.return_value != 0

    def test_read_input_values(self):
        source = "fn main() -> int { return read_input(0) + read_input(1); }"
        program = compile_module(compile_source(source))
        stats = run_program(program, input_values=[30, 12])
        assert stats.return_value == 42
