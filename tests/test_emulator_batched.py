"""Batched lockstep emulator tests: per-lane parity with the scalar Machine.

Every property the batched engine claims is checked differentially: each
lane's TraceStats, paging events and final memory must be byte-for-byte what
a fresh single-stream :class:`~repro.emulator.machine.Machine` produces for
that lane's arguments/inputs — across divergence-heavy lane mixes (including
``branchy-int`` fuzz-mode programs), lanes halting at very different step
counts, awkward lane counts, segment sizes that force mid-run flushes, the
checked-in fuzz corpus, and lanes that fault mid-run.
"""

from pathlib import Path

import pytest

from repro.backend import compile_module
from repro.benchmarks import get_benchmark
from repro.emulator import (
    BatchedMachine, EmulationError, Machine, numpy_available, run_batched,
)
from repro.frontend import compile_source
from repro.fuzz import load_corpus
from repro.fuzz.genprog import generate_program

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")


def _compile(source: str):
    return compile_module(compile_source(source))


def _compile_benchmark(name: str):
    benchmark = get_benchmark(name)
    return compile_module(compile_source(benchmark.source, module_name=name))


def _scalar_run(program, args=None, **kwargs):
    machine = Machine(program, **kwargs)
    machine.run("main", list(args) if args else None)
    return machine


def _assert_lane_matches_scalar(batched, lane, scalar, context=""):
    where = f"lane {lane} {context}"
    assert batched.lane_stats[lane] == scalar.stats, where
    assert batched.lane_page_in_events[lane] == scalar.page_in_events, where
    assert batched.lane_page_out_events[lane] == scalar.page_out_events, where
    assert batched.lane_memory_matches(lane, scalar.memory), where


#: Heavily divergent control flow: per-lane Collatz walks plus a three-way
#: modulo dispatch, so neighbouring arguments take wildly different paths and
#: the scheduler's group split/merge machinery is exercised constantly.
BRANCHY_SOURCE = """
fn collatz(n) -> int {
  var steps;
  steps = 0;
  while (n > 1 && steps < 200) {
    if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
    steps = steps + 1;
  }
  return steps;
}
fn main(n) -> int {
  var acc;
  var i;
  acc = 0;
  for (i = 0; i <= n; i = i + 1) {
    if (i % 3 == 0) {
      acc = acc + collatz(i + n);
    } else {
      if (i % 3 == 1) { acc = acc ^ (i * 2654435761); }
      else { acc = acc - i; }
    }
  }
  print(acc);
  return acc;
}
"""

#: Runtime directly proportional to the argument: lanes retire at wildly
#: different step counts, so the live-lane set shrinks one lane at a time.
STAGGERED_SOURCE = """
fn main(n) -> int {
  var acc;
  var i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) { acc = acc + i; }
  return acc;
}
"""

#: Per-lane host-call inputs: every lane folds its own input words.
INPUTS_SOURCE = """
fn main() -> int {
  var acc;
  var i;
  acc = 0;
  for (i = 0; i < 4; i = i + 1) {
    acc = acc * 31 + read_input(i);
    print(acc);
  }
  return acc;
}
"""


class TestLaneMixes:
    @pytest.mark.parametrize("num_lanes", [1, 2, 33, 64])
    def test_divergent_branchy_lanes(self, num_lanes):
        program = _compile(BRANCHY_SOURCE)
        lane_args = [[(lane * 7 + 3) % 40] for lane in range(num_lanes)]
        batched = BatchedMachine(program, num_lanes)
        batched.run(lane_args=lane_args)
        for lane, args in enumerate(lane_args):
            scalar = _scalar_run(program, args)
            _assert_lane_matches_scalar(batched, lane, scalar,
                                        f"(args={args})")

    def test_lanes_halting_at_different_steps(self):
        program = _compile(STAGGERED_SOURCE)
        lane_args = [[0], [1], [10], [100], [1000], [10000], [3], [9999]]
        batched = BatchedMachine(program, len(lane_args))
        stats = batched.run(lane_args=lane_args)
        counts = [s.instructions for s in stats]
        assert len(set(counts)) == len(counts), \
            "every lane should halt at a distinct step"
        for lane, args in enumerate(lane_args):
            _assert_lane_matches_scalar(batched, lane,
                                        _scalar_run(program, args))

    def test_uniform_lanes_match_single_stream(self):
        program = _compile(BRANCHY_SOURCE)
        scalar = _scalar_run(program, [25])
        stats = run_batched(program, num_lanes=5, args=[25])
        for lane_stats in stats:
            assert lane_stats == scalar.stats

    def test_per_lane_host_call_inputs(self):
        program = _compile(INPUTS_SOURCE)
        lane_inputs = [[1, 2, 3, 4], [5, 5, 5, 5], [0, 0, 0, 7],
                       [123456789, 1, 2, 3]]
        batched = BatchedMachine(program, len(lane_inputs),
                                 lane_inputs=lane_inputs)
        batched.run()
        for lane, inputs in enumerate(lane_inputs):
            scalar = _scalar_run(program, input_values=inputs)
            _assert_lane_matches_scalar(batched, lane, scalar,
                                        f"(inputs={inputs})")


class TestBranchyIntFuzzMode:
    """Generated ``branchy-int`` programs through the batched engine."""

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_program_parity(self, seed):
        generated = generate_program(seed, mode="branchy-int")
        program = _compile(generated.source)
        scalar = _scalar_run(program)
        batched = BatchedMachine(program, 4)
        batched.run()
        for lane in range(4):
            _assert_lane_matches_scalar(batched, lane, scalar,
                                        f"(seed={seed})")


class TestFuzzCorpusReplay:
    CORPUS = load_corpus(Path(__file__).parent / "corpus")

    @pytest.mark.parametrize(
        "path,header,source", CORPUS,
        ids=[Path(entry[0]).stem for entry in CORPUS])
    def test_corpus_entry_parity(self, path, header, source):
        program = _compile(source)
        scalar = _scalar_run(program)
        batched = BatchedMachine(program, 3)
        batched.run()
        for lane in range(3):
            _assert_lane_matches_scalar(batched, lane, scalar,
                                        f"({Path(path).name})")


class TestSegmentsAndPaging:
    @pytest.mark.parametrize("segment_size", [1, 7, 100, 1 << 16])
    def test_divergent_lanes_page_identically(self, segment_size):
        program = _compile(BRANCHY_SOURCE)
        lane_args = [[2], [17], [33], [8], [0]]
        batched = BatchedMachine(program, len(lane_args),
                                 segment_size=segment_size)
        batched.run(lane_args=lane_args)
        for lane, args in enumerate(lane_args):
            scalar = _scalar_run(program, args, segment_size=segment_size)
            _assert_lane_matches_scalar(
                batched, lane, scalar, f"(segment_size={segment_size})")


class TestFaults:
    def test_partial_fault_leaves_other_lanes_intact(self):
        # Lanes 1 and 3 blow the instruction limit; the rest must retire with
        # exactly the trace a scalar run produces, and the faulting lanes must
        # leave exactly the partial trace the scalar machine leaves.
        program = _compile(STAGGERED_SOURCE)
        lane_args = [[5], [100000], [8], [100000], [0]]
        limit = 200
        batched = BatchedMachine(program, len(lane_args),
                                 max_instructions=limit, capture_faults=True)
        batched.run(lane_args=lane_args)
        for lane, args in enumerate(lane_args):
            scalar = Machine(program, max_instructions=limit)
            error = None
            try:
                scalar.run("main", list(args))
            except EmulationError as exc:
                error = exc
            if error is None:
                assert batched.lane_errors[lane] is None, f"lane {lane}"
                _assert_lane_matches_scalar(batched, lane, scalar)
            else:
                assert isinstance(batched.lane_errors[lane], EmulationError)
                assert str(batched.lane_errors[lane]) == str(error)
                assert batched.lane_stats[lane] == scalar.stats, f"lane {lane}"

    def test_first_fault_reraised_without_capture(self):
        program = _compile(STAGGERED_SOURCE)
        batched = BatchedMachine(program, 2, max_instructions=50)
        with pytest.raises(EmulationError):
            batched.run(lane_args=[[1], [100000]])

    def test_missing_entry_raises(self):
        program = _compile(STAGGERED_SOURCE)
        with pytest.raises(EmulationError):
            BatchedMachine(program, 2).run("nonexistent")


class TestReuseAndApi:
    def test_rerun_equals_fresh_machine(self):
        program = _compile(BRANCHY_SOURCE)
        lane_args = [[5], [12], [31]]
        reused = BatchedMachine(program, 3)
        first = reused.run(lane_args=lane_args)
        first_pages = (list(reused.lane_page_in_events),
                       list(reused.lane_page_out_events))
        second = reused.run(lane_args=lane_args)
        assert first == second, "second run() accumulated state"
        assert (reused.lane_page_in_events,
                reused.lane_page_out_events) == first_pages
        fresh = BatchedMachine(program, 3)
        assert fresh.run(lane_args=lane_args) == first

    def test_run_batched_infers_lane_count(self):
        program = _compile(STAGGERED_SOURCE)
        stats = run_batched(program, lane_args=[[3], [6]])
        assert len(stats) == 2
        assert stats[0] != stats[1]

    def test_lane_count_validation(self):
        program = _compile(STAGGERED_SOURCE)
        with pytest.raises(ValueError):
            BatchedMachine(program, 0)
        with pytest.raises(ValueError):
            BatchedMachine(program, 2, lane_inputs=[[1]])
        with pytest.raises(ValueError):
            BatchedMachine(program, 2).run(lane_args=[[1]])


class TestBenchmarkParity:
    #: A spread of benchmark shapes: memory-heavy, hash loops, host-call
    #: dominated, and plain compute.  (The full 58-benchmark sweep runs in
    #: the bench harness; this keeps tier-1 fast.)
    NAMES = ["fibonacci", "loop-sum", "bigmem", "merkle", "ecdsa-verify",
             "sha2-bench", "regex-match", "tailcall"]

    @pytest.mark.parametrize("name", NAMES)
    def test_three_lanes_match_single_stream(self, name):
        benchmark = get_benchmark(name)
        program = _compile_benchmark(name)
        scalar = Machine(program, input_values=benchmark.inputs)
        scalar.run("main", benchmark.args)
        batched = BatchedMachine(program, 3, input_values=benchmark.inputs)
        batched.run("main", args=benchmark.args)
        for lane in range(3):
            _assert_lane_matches_scalar(batched, lane, scalar, f"({name})")
