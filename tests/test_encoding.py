"""Binary-encoding test battery: golden words, boundaries, round-trips.

Locks down :mod:`repro.backend.encoding` and :mod:`repro.backend.rvc` from
three directions:

* **Golden words** — one hand-assembled reference word per instruction
  format (R/I/S/B/U/J and the compressed quadrants), so a regression in a
  bitfield packer fails with the offending mnemonic, not a mysterious
  downstream divergence.
* **Boundaries** — every immediate field is exercised at both ends of its
  range and rejected one past it (±2^11 I/S, ±2^12 B, ±2^20 J, the RVC
  6-bit/offset edges), plus the register-class and pseudo-expansion edges.
* **Round-trips** — all seed benchmarks and 500 fuzz-generated programs
  (100 seeds x all 5 generator modes) must ``encode → decode → re-encode``
  byte-identically in both plain-RV32I and RVC mode, the compressed stream
  must carry the same canonical instructions as the uncompressed one, and a
  reassembled subset must replay on the emulator with identical guest
  behaviour (the decoded operands/immediates/targets therefore mean exactly
  what :mod:`repro.emulator.decoder` thinks they mean).

``benchmarks/bench_encoding.py`` (``make bench-encoding``) extends the
replay to every benchmark and enforces the RVC size bar on top.
"""

from __future__ import annotations

import pytest

from repro.backend import compile_module
from repro.backend.encoding import (
    BASE_ADDRESS, ENCODABLE_OPCODES, DisassemblyError, EncodeError,
    ImmediateRangeError, RelocationError, UnencodableOperandError,
    UnsupportedOpcodeError, _encode32, decode_words, encode_one,
    encode_program, fold_relaxed_branches, reassemble, supports,
)
from repro.backend.isa import (
    OPCODE_CLASS, MachineInstr, UnknownOpcodeError, classify,
)
from repro.backend.rvc import (
    COMPRESSED_REGISTERS, CompressedDecodeError, compress, decode_compressed,
    is_compressed_reg,
)
from repro.benchmarks import all_benchmark_names, get_benchmark
from repro.emulator import run_program
from repro.experiments.profiles import profile_by_name
from repro.frontend import compile_source
from repro.fuzz.genprog import MODES, generate_program
from repro.passes import PassManager

# ---------------------------------------------------------------------------
# Golden words: one hand-assembled reference per format.
# ---------------------------------------------------------------------------

#: (opcode, canonical operands, pc-relative offset, expected word).  Words
#: were assembled by hand from the RV32I/M base-opcode tables; they are the
#: ground truth the packers are tested against, not derived from them.
GOLDEN_WORDS = [
    ("add",   ("a0", "a1", "a2"), None, 0x00C58533),   # R
    ("sub",   ("a0", "a1", "a2"), None, 0x40C58533),   # R, funct7=0x20
    ("mul",   ("a0", "a1", "a2"), None, 0x02C58533),   # R, M extension
    ("addi",  ("a0", "a1", -1),   None, 0xFFF58513),   # I
    ("slli",  ("a0", "a1", 3),    None, 0x00359513),   # I, shift
    ("srai",  ("a0", "a1", 3),    None, 0x4035D513),   # I, funct7=0x20
    ("lw",    ("a0", 8, "sp"),    None, 0x00812503),   # I, load
    ("sw",    ("a0", 8, "sp"),    None, 0x00A12423),   # S
    ("beq",   ("a0", "a1"),       8,    0x00B50463),   # B
    ("jal",   ("ra",),            16,   0x010000EF),   # J
    ("lui",   ("a0", 0x12345),    None, 0x12345537),   # U
    ("jalr",  ("zero", "ra", 0),  None, 0x00008067),   # I, jump
    ("ecall", (),                 None, 0x00000073),   # SYSTEM
    ("ebreak", (),                None, 0x00100073),   # SYSTEM
]

#: (opcode, canonical operands, offset, expected halfword) for the
#: compressed forms, hand-assembled from the RVC quadrant tables.
GOLDEN_HALFWORDS = [
    ("addi", ("a0", "a0", 1),     None, 0x0505),       # c.addi
    ("addi", ("a0", "zero", 5),   None, 0x4515),       # c.li
    ("addi", ("a0", "a1", 0),     None, 0x852E),       # c.mv
    ("addi", ("zero", "zero", 0), None, 0x0001),       # c.nop
    ("addi", ("sp", "sp", 48),    None, 0x6145),       # c.addi16sp
    ("add",  ("a0", "a0", "a1"),  None, 0x952E),       # c.add
    ("lw",   ("a0", 4, "a1"),     None, 0x41C8),       # c.lw
    ("ebreak", (),                None, 0x9002),       # c.ebreak
]


@pytest.mark.parametrize("opcode,operands,offset,expected", GOLDEN_WORDS,
                         ids=[g[0] for g in GOLDEN_WORDS])
def test_golden_word(opcode, operands, offset, expected):
    assert _encode32(opcode, operands, offset) == expected


@pytest.mark.parametrize("opcode,operands,offset,expected", GOLDEN_HALFWORDS,
                         ids=[f"{g[0]}-{g[3]:#06x}" for g in GOLDEN_HALFWORDS])
def test_golden_halfword(opcode, operands, offset, expected):
    assert compress(opcode, operands, offset) == expected
    decoded_op, decoded_ops, decoded_off = decode_compressed(expected)
    assert (decoded_op, decoded_ops) == (opcode, operands)
    assert decoded_off == offset


def test_golden_words_decode_back():
    """The 32-bit goldens survive decode → re-encode through the blob path."""
    blob = bytearray()
    for _, _, _, word in GOLDEN_WORDS:
        blob += word.to_bytes(4, "little")
    decoded = decode_words(bytes(blob), BASE_ADDRESS)
    assert [i.word for i in decoded] == [g[3] for g in GOLDEN_WORDS]
    assert [encode_one(i) for i in decoded] == [g[3] for g in GOLDEN_WORDS]


# ---------------------------------------------------------------------------
# Boundary immediates and rejections.
# ---------------------------------------------------------------------------

def test_i_type_immediate_boundaries():
    assert _encode32("addi", ("a0", "a0", 2047)) == 0x7FF50513
    assert _encode32("addi", ("a0", "a0", -2048)) == 0x80050513
    for bad in (2048, -2049):
        with pytest.raises(ImmediateRangeError):
            _encode32("addi", ("a0", "a0", bad))


def test_s_type_immediate_boundaries():
    assert _encode32("sw", ("a0", 2047, "sp"))
    assert _encode32("sw", ("a0", -2048, "sp"))
    for bad in (2048, -2049):
        with pytest.raises(ImmediateRangeError):
            _encode32("sw", ("a0", bad, "sp"))


def test_b_type_offset_boundaries():
    assert _encode32("beq", ("a0", "a1"), 4094)
    assert _encode32("beq", ("a0", "a1"), -4096)
    for bad in (4096, -4098):
        with pytest.raises(ImmediateRangeError):
            _encode32("beq", ("a0", "a1"), bad)
    with pytest.raises(ImmediateRangeError):
        _encode32("beq", ("a0", "a1"), 3)   # odd offsets are unencodable


def test_j_type_offset_boundaries():
    assert _encode32("jal", ("ra",), (1 << 20) - 2)
    assert _encode32("jal", ("ra",), -(1 << 20))
    for bad in (1 << 20, -(1 << 20) - 2, 5):
        with pytest.raises(ImmediateRangeError):
            _encode32("jal", ("ra",), bad)


def test_u_type_immediate_boundaries():
    assert _encode32("lui", ("a0", 0xFFFFF)) == 0xFFFFF537
    assert _encode32("lui", ("a0", 0)) == 0x00000537
    for bad in (1 << 20, -(1 << 19) - 1):
        with pytest.raises(ImmediateRangeError):
            _encode32("lui", ("a0", bad))


def test_unknown_register_is_rejected():
    with pytest.raises(UnencodableOperandError):
        _encode32("add", ("a0", "a1", "x99"))


def test_unsupported_opcode_is_rejected_by_name():
    with pytest.raises(UnsupportedOpcodeError) as excinfo:
        _encode32("fmadd.s", ("a0", "a1", "a2"))
    assert excinfo.value.opcode == "fmadd.s"
    assert not supports("fmadd.s")
    assert supports("add")


def test_rvc_immediate_edges():
    # c.addi / c.li carry a signed 6-bit immediate.
    assert compress("addi", ("a0", "a0", 31)) is not None
    assert compress("addi", ("a0", "a0", -32)) is not None
    assert compress("addi", ("a0", "a0", 32)) is None
    assert compress("addi", ("a0", "a0", -33)) is None
    assert compress("addi", ("a0", "zero", -32)) is not None
    # c.addi16sp: multiples of 16 in [-512, 496], disjoint from c.addi.
    assert compress("addi", ("sp", "sp", 496)) == 0x617D
    assert compress("addi", ("sp", "sp", -512)) == 0x7101
    assert compress("addi", ("sp", "sp", 512)) is None
    assert compress("addi", ("sp", "sp", -528)) is None
    assert compress("addi", ("sp", "sp", 40)) is None      # not 16-aligned
    assert decode_compressed(0x617D) == ("addi", ("sp", "sp", 496), None)
    assert decode_compressed(0x7101) == ("addi", ("sp", "sp", -512), None)
    # c.lwsp/c.swsp: word-aligned offsets 0..252; c.lw/c.sw: 0..124.
    assert compress("lw", ("a0", 252, "sp")) is not None
    assert compress("lw", ("a0", 256, "sp")) is None
    assert compress("lw", ("a0", 2, "sp")) is None
    assert compress("lw", ("a0", 124, "a1")) is not None
    assert compress("lw", ("a0", 128, "a1")) is None
    # c.j / c.jal: ±2 KiB, even.
    assert compress("jal", ("zero",), 2046) is not None
    assert compress("jal", ("zero",), 2048) is None
    assert compress("jal", ("ra",), -2048) is not None
    # c.beqz / c.bnez: ±256 B, rs1 must be a prime register.
    assert compress("beq", ("a0", "zero"), 254) is not None
    assert compress("beq", ("a0", "zero"), 256) is None
    assert compress("beq", ("t0", "zero"), 4) is None
    assert compress("beq", ("a0", "a1"), 4) is None


def test_rvc_register_classes():
    assert COMPRESSED_REGISTERS == ("s0", "s1", "a0", "a1", "a2", "a3",
                                    "a4", "a5")
    for reg in COMPRESSED_REGISTERS:
        assert is_compressed_reg(reg)
    for reg in ("zero", "ra", "sp", "t0", "t6", "s2", "a6", "a7"):
        assert not is_compressed_reg(reg)
    # 3-operand forms need prime registers; c.add only needs rd == rs1.
    assert compress("sub", ("a0", "a0", "a1")) is not None
    assert compress("sub", ("t0", "t0", "a1")) is None
    assert compress("add", ("t0", "t0", "t1")) is not None
    assert compress("add", ("a0", "a1", "a2")) is None


def test_compressed_decode_rejects_unknown_halfwords():
    with pytest.raises(CompressedDecodeError):
        decode_compressed(0x0000)          # the all-zero illegal instruction
    with pytest.raises(CompressedDecodeError):
        decode_compressed(0x2000)          # quadrant 0, funct3=001 (c.fld)


def test_decode_words_rejects_truncated_blob():
    with pytest.raises(DisassemblyError):
        decode_words(b"\x33", BASE_ADDRESS)          # dangling 32-bit prefix
    with pytest.raises(DisassemblyError):
        decode_words(b"\x93\x05", BASE_ADDRESS)      # half of an addi word


# ---------------------------------------------------------------------------
# Opcode coverage: classify() and the encoder agree on the ISA surface.
# ---------------------------------------------------------------------------

def test_classify_raises_named_error():
    with pytest.raises(UnknownOpcodeError) as excinfo:
        classify("bogus-op")
    assert excinfo.value.opcode == "bogus-op"
    assert isinstance(excinfo.value, ValueError)   # compat with old callers


def test_every_classified_opcode_is_encodable():
    """Anything the lowering can emit must encode (so ``code_bytes`` never
    silently drops a function)."""
    missing = sorted(op for op in OPCODE_CLASS if not supports(op))
    assert not missing, f"OPCODE_CLASS entries without an encoding: {missing}"


def test_every_encodable_opcode_is_classified():
    unclassified = sorted(op for op in ENCODABLE_OPCODES
                          if op not in OPCODE_CLASS)
    assert not unclassified, \
        f"encoder accepts opcodes the cost models cannot classify: " \
        f"{unclassified}"


def test_lowered_benchmarks_use_only_classified_opcodes():
    program = _compiled("fibonacci")
    for asm in program.functions.values():
        for instr in asm.instructions():
            assert classify(instr.opcode)          # raises if unknown


# ---------------------------------------------------------------------------
# Round-trips: benchmarks and fuzz-generated programs.
# ---------------------------------------------------------------------------

_PROGRAM_CACHE: dict[str, object] = {}


def _compiled(benchmark_name: str):
    if benchmark_name not in _PROGRAM_CACHE:
        benchmark = get_benchmark(benchmark_name)
        profile = profile_by_name("-O3")
        module = compile_source(benchmark.source, module_name=benchmark_name)
        PassManager(profile.passes, profile.config).run(module)
        _PROGRAM_CACHE[benchmark_name] = compile_module(module,
                                                        profile.cost_model)
    return _PROGRAM_CACHE[benchmark_name]


def _assert_round_trip(program, context: str):
    """Both encodings round-trip byte-identically and agree on the stream."""
    streams = {}
    for rvc in (False, True):
        encoded = encode_program(program, rvc=rvc)
        decoded = decode_words(encoded.blob, encoded.base_address)
        blob = bytearray()
        for instr in decoded:
            blob += encode_one(instr).to_bytes(instr.size, "little")
        assert bytes(blob) == encoded.blob, \
            f"{context}: rvc={rvc} re-encode is not byte-identical"
        assert [(i.size, i.word, i.opcode, i.operands, i.target)
                for i in decoded] == \
               [(i.size, i.word, i.opcode, i.operands, i.target)
                for i in encoded.instrs], \
            f"{context}: rvc={rvc} decoded stream differs"
        streams[rvc] = fold_relaxed_branches(encoded.instrs)
        assert len(encoded.blob) == encoded.code_bytes
    # Modulo far-branch relaxation (layout-dependent), compression must not
    # change what the program says — only how many bytes it takes.
    assert streams[False] == streams[True], \
        f"{context}: RVC compression changed the instruction stream"
    return encoded, decoded


@pytest.mark.parametrize("benchmark_name", all_benchmark_names())
def test_benchmark_round_trip(benchmark_name):
    _assert_round_trip(_compiled(benchmark_name), benchmark_name)


#: Benchmarks whose reassembled binaries are additionally replayed on the
#: emulator here (bench_encoding.py replays all 58; this keeps tier-1 quick).
REPLAY_BENCHMARKS = ("fibonacci", "loop-sum", "tailcall", "regex-match",
                     "spec-631")


@pytest.mark.parametrize("benchmark_name", REPLAY_BENCHMARKS)
def test_reassembled_binary_replays_identically(benchmark_name):
    benchmark = get_benchmark(benchmark_name)
    program = _compiled(benchmark_name)
    packed = encode_program(program, rvc=True)
    decoded = decode_words(packed.blob, packed.base_address)
    lifted = reassemble(decoded, packed.symbols, like=program)
    base = run_program(program, args=benchmark.args,
                       input_values=benchmark.inputs,
                       max_instructions=80_000_000)
    replay = run_program(lifted, args=benchmark.args,
                         input_values=benchmark.inputs,
                         max_instructions=80_000_000)
    assert (base.output, base.return_value) == \
           (replay.output, replay.return_value)


#: 100 seeds x 5 generator modes = the 500-program fuzz battery.
FUZZ_SEEDS_PER_MODE = 100


@pytest.mark.parametrize("mode", MODES)
def test_fuzz_round_trip(mode):
    profile = profile_by_name("-O3")
    for seed in range(FUZZ_SEEDS_PER_MODE):
        generated = generate_program(seed, mode)
        module = compile_source(generated.source,
                                module_name=f"fuzz-{mode}-{seed}")
        PassManager(profile.passes, profile.config).run(module)
        program = compile_module(module, profile.cost_model)
        _assert_round_trip(program, f"{mode} seed {seed}")


@pytest.mark.parametrize("mode", MODES)
def test_fuzz_reassembled_replay(mode):
    """A slice of the fuzz battery is replayed end to end on the emulator."""
    profile = profile_by_name("-O3")
    for seed in range(0, FUZZ_SEEDS_PER_MODE, 25):
        generated = generate_program(seed, mode)
        module = compile_source(generated.source,
                                module_name=f"fuzz-{mode}-{seed}")
        PassManager(profile.passes, profile.config).run(module)
        program = compile_module(module, profile.cost_model)
        packed = encode_program(program, rvc=True)
        decoded = decode_words(packed.blob, packed.base_address)
        lifted = reassemble(decoded, packed.symbols, like=program)
        base = run_program(program, max_instructions=80_000_000)
        replay = run_program(lifted, max_instructions=80_000_000)
        assert (base.output, base.return_value) == \
               (replay.output, replay.return_value), \
            f"{mode} seed {seed}: reassembled binary diverges"


def test_relocation_error_names_the_label():
    program = _compiled("fibonacci")
    func = next(iter(program.functions.values()))
    broken = MachineInstr("j", [".Lnowhere"])
    func.body.append(broken)
    try:
        with pytest.raises(RelocationError) as excinfo:
            encode_program(program)
        assert ".Lnowhere" in str(excinfo.value)
    finally:
        func.body.remove(broken)
        _PROGRAM_CACHE.pop("fibonacci", None)

    assert issubclass(RelocationError, EncodeError)
