"""Cross-engine parametrization helpers for guest-execution tests.

The repo now has four ways to execute one guest program — the readable
reference interpreter, the decoded fast interpreter, the numpy batched
lane machine and the superblock translator — and every differential
battery wants to run against all of them.  This module gives them one
uniform surface:

* :func:`engine_params` produces the ``pytest.param`` list (with the
  numpy skip attached to the batched engine) for
  ``@pytest.mark.parametrize("engine", engine_params())``.
* :func:`run_engine` constructs the right machine for an engine name,
  runs it, and normalizes the outcome into an :class:`EngineRun` —
  stats, paging events, output, memory and any fault — so assertions
  read identically whether the engine is a scalar machine or a lane of
  the batched machine.
* :func:`assert_runs_identical` is the shared "this engine matched the
  reference" check.

Adding a new engine here (one ``ENGINE_NAMES`` entry plus a
``run_engine`` branch) makes it inherit the whole differential battery
in ``test_emulator_differential.py`` and the translated property suite.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.emulator import (
    BatchedMachine,
    EmulationError,
    Machine,
    ReferenceMachine,
    TranslatedMachine,
    numpy_available,
)

#: Every guest-execution engine, in reference-first order.
ENGINE_NAMES = ("reference", "fast", "batched", "translated")

#: The engines differential tests compare *against* the reference.
DIFF_ENGINE_NAMES = ("fast", "batched", "translated")

#: Engines that share the scalar ``Machine`` interface (observers,
#: ``get()``, a plain ``memory`` dict).  The batched machine exposes its
#: lanes through dedicated accessors instead.
SCALAR_ENGINES = {
    "reference": ReferenceMachine,
    "fast": Machine,
    "translated": TranslatedMachine,
}


def engine_params(names: Sequence[str] = ENGINE_NAMES) -> list:
    """``pytest.param`` list for ``names``, numpy-skipping the batched engine."""
    params = []
    for name in names:
        marks = ()
        if name == "batched" and not numpy_available():
            marks = pytest.mark.skip(reason="numpy not installed")
        params.append(pytest.param(name, marks=marks))
    return params


class EngineRun:
    """Normalized outcome of running one program on one engine.

    ``error`` is the :class:`EmulationError` the run faulted with, or
    None for a clean halt; ``stats`` is the (possibly partial, on a
    fault) folded :class:`TraceStats` either way.
    """

    def __init__(self, engine: str, machine, stats, page_in_events: int,
                 page_out_events: int, output: list,
                 error: Optional[BaseException]):
        self.engine = engine
        self.machine = machine
        self.stats = stats
        self.page_in_events = page_in_events
        self.page_out_events = page_out_events
        self.output = output
        self.error = error

    def memory_matches(self, memory: dict) -> bool:
        """True iff this run's final memory equals a scalar machine's dict.

        Scalar engines share the dict representation, so equality is
        direct; a batched lane only distinguishes nonzero words, so it
        compares as a value function via ``lane_memory_matches``.
        """
        if self.engine == "batched":
            return self.machine.lane_memory_matches(0, memory)
        return self.machine.memory == memory


def run_engine(engine: str, program, entry: str = "main",
               args: Optional[Sequence[int]] = None, *,
               input_values: Optional[Sequence[int]] = None,
               segment_size: int = 1 << 16,
               max_instructions: int = 50_000_000,
               observers: Sequence = ()) -> EngineRun:
    """Run ``program`` on the named engine, capturing faults instead of raising."""
    if engine == "batched":
        if observers:
            raise ValueError("the batched engine does not support observers")
        machine = BatchedMachine(
            program, 1, max_instructions=max_instructions,
            segment_size=segment_size,
            input_values=list(input_values) if input_values is not None else None,
            capture_faults=True)
        machine.run(entry, args=args)
        stats = machine.lane_stats[0]
        return EngineRun(engine, machine, stats,
                         machine.lane_page_in_events[0],
                         machine.lane_page_out_events[0],
                         list(stats.output), machine.lane_errors[0])
    machine_cls = SCALAR_ENGINES[engine]
    machine = machine_cls(
        program, max_instructions=max_instructions, observers=observers,
        segment_size=segment_size,
        input_values=list(input_values) if input_values is not None else None)
    error = None
    try:
        machine.run(entry, args)
    except EmulationError as exc:
        error = exc
    return EngineRun(engine, machine, machine.stats, machine.page_in_events,
                     machine.page_out_events, list(machine.output), error)


def assert_runs_identical(run: EngineRun, reference: EngineRun,
                          context: str = "") -> None:
    """Assert ``run`` is observationally identical to the ``reference`` run."""
    where = f" [{context}]" if context else ""
    assert (run.error is None) == (reference.error is None), (
        f"{run.engine} fault behavior diverged from {reference.engine}{where}: "
        f"{run.error!r} vs {reference.error!r}")
    if run.error is not None:
        assert str(run.error) == str(reference.error), (
            f"{run.engine} fault message diverged{where}")
    assert run.stats == reference.stats, (
        f"{run.engine} TraceStats diverged from {reference.engine}{where}")
    assert run.output == reference.output, (
        f"{run.engine} output diverged{where}")
    assert run.page_in_events == reference.page_in_events, (
        f"{run.engine} page-in events diverged{where}")
    assert run.page_out_events == reference.page_out_events, (
        f"{run.engine} page-out events diverged{where}")
    if reference.engine in SCALAR_ENGINES:
        assert run.memory_matches(reference.machine.memory), (
            f"{run.engine} final memory diverged{where}")
