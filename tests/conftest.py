"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir.interpreter import run_module

from support import REFERENCE_PROGRAM


@pytest.fixture(scope="session")
def reference_module():
    """The unoptimized IR module of the reference program."""
    return compile_source(REFERENCE_PROGRAM, "reference")


@pytest.fixture(scope="session")
def reference_result(reference_module):
    """The reference program's behaviour under the IR interpreter."""
    return run_module(reference_module)
