"""Replay every checked-in ``tests/corpus/*.repro`` through the full harness.

The corpus holds minimized reproducers: programs that once exposed (or pin
down known-risky) behaviour across the oracles.  Every entry must replay
**clean** — its bug is fixed, and this test keeps it fixed.  When the fuzzer
finds a new bug, the workflow is: minimize (``repro fuzz --minimize``), fix,
then land the reducer's output here with ``stage: ok`` in its header.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, run_differential

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CORPUS, f"no .repro files under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,header,source", CORPUS,
    ids=[Path(path).stem for path, _, _ in CORPUS])
def test_corpus_replay(path, header, source):
    assert header.get("stage") == "ok", \
        f"{path}: corpus entries must be fixed (header 'stage: ok'); " \
        f"got {header.get('stage')!r}"
    report = run_differential(source)
    assert report.ok, (f"{path}: regression! diverges again at stage "
                       f"{report.stage} ({report.profile}): {report.detail}")
