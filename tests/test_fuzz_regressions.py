"""Replay every checked-in ``tests/corpus/*.repro`` through the full harness.

The corpus holds minimized reproducers: programs that once exposed (or pin
down known-risky) behaviour across the oracles.  Every entry must replay
**clean** — its bug is fixed, and this test keeps it fixed.  When the fuzzer
finds a new bug, the workflow is: minimize (``repro fuzz --minimize``), fix,
then land the reducer's output here with ``stage: ok`` in its header.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, run_differential

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CORPUS, f"no .repro files under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,header,source", CORPUS,
    ids=[Path(path).stem for path, _, _ in CORPUS])
def test_corpus_replay(path, header, source):
    assert header.get("stage") == "ok", \
        f"{path}: corpus entries must be fixed (header 'stage: ok'); " \
        f"got {header.get('stage')!r}"
    report = run_differential(source)
    assert report.ok, (f"{path}: regression! diverges again at stage "
                       f"{report.stage} ({report.profile}): {report.detail}")


@pytest.mark.parametrize(
    "path,header,source", CORPUS,
    ids=[Path(path).stem for path, _, _ in CORPUS])
def test_corpus_encodes_round_trip(path, header, source):
    """Every reproducer also survives the binary encoder, both encodings.

    Programs that once broke an oracle are exactly the kind of adversarial
    input the encoder should be pinned against: encode → decode → re-encode
    must stay byte-identical, and the reassembled RVC binary must replay to
    the same guest behaviour as the compiled original.
    """
    from repro.backend import compile_module
    from repro.backend.encoding import (
        decode_words, encode_one, encode_program, reassemble)
    from repro.emulator import run_program
    from repro.experiments.profiles import profile_by_name
    from repro.frontend import compile_source
    from repro.passes import PassManager

    profile = profile_by_name("-O3")
    module = compile_source(source, module_name=Path(path).stem)
    PassManager(profile.passes, profile.config).run(module)
    program = compile_module(module, profile.cost_model)
    for rvc in (False, True):
        encoded = encode_program(program, rvc=rvc)
        decoded = decode_words(encoded.blob, encoded.base_address)
        blob = bytearray()
        for instr in decoded:
            blob += encode_one(instr).to_bytes(instr.size, "little")
        assert bytes(blob) == encoded.blob, \
            f"{path}: rvc={rvc} re-encode is not byte-identical"
    lifted = reassemble(decoded, encoded.symbols, like=program)
    base = run_program(program, max_instructions=80_000_000)
    replay = run_program(lifted, max_instructions=80_000_000)
    assert (base.output, base.return_value) == \
           (replay.output, replay.return_value), \
        f"{path}: reassembled binary diverges on the emulator"
