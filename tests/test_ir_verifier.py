"""Direct unit tests for ``ir/verifier.py``.

Each structural rejection class gets a hand-built bad module; every test also
asserts the diagnostic names the offending function (and block, where one
exists) so fuzz triage output stays actionable.
"""

import pytest

from repro.ir import (
    Branch, Constant, IRBuilder, Module, Phi, Ret,
    VerificationError, verify_function, verify_module,
    I32, VOID,
)


def _function(module=None, name="bad", return_type=I32):
    module = module or Module("m")
    return module, module.create_function(name, return_type, [])


class TestBlockStructure:
    def test_missing_terminator(self):
        module, function = _function()
        entry = function.add_block("entry")
        builder = IRBuilder(entry)
        builder.add(Constant(1), Constant(2), "x")  # no ret/br afterwards
        with pytest.raises(VerificationError) as exc:
            verify_module(module)
        message = str(exc.value)
        assert "does not end with a terminator" in message
        assert "bad" in message and "entry" in message

    def test_empty_block(self):
        module, function = _function()
        function.add_block("entry")
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "empty basic block" in message
        assert "bad" in message and "entry" in message

    def test_terminator_in_middle_of_block(self):
        module, function = _function()
        entry = function.add_block("entry")
        # Two rets in one block: bypass the builder so nothing "fixes" it.
        entry.append(Ret(Constant(1)))
        entry.append(Ret(Constant(2)))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "terminator in the middle of a block" in message
        assert "bad/entry" in message

    def test_branch_to_foreign_block(self):
        module, function = _function()
        entry = function.add_block("entry")
        _, other = _function(Module("other"), name="elsewhere")
        foreign = other.add_block("foreign")
        IRBuilder(foreign).ret(Constant(0))
        entry.append(Branch(foreign))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "branch to a block outside the function" in message
        assert "foreign" in message


class TestUseBeforeDef:
    def test_operand_must_dominate_use(self):
        module, function = _function()
        entry = function.add_block("entry")
        left = function.add_block("left")
        right = function.add_block("right")
        join = function.add_block("join")
        builder = IRBuilder(entry)
        builder.cond_br(Constant(1), left, right)
        builder.position_at_end(left)
        defined_in_left = builder.add(Constant(1), Constant(2), "only.left")
        builder.br(join)
        builder.position_at_end(right)
        builder.br(join)
        builder.position_at_end(join)
        # Uses %only.left on the path through 'right' where it never ran.
        builder.ret(defined_in_left)
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "does not dominate its use" in message
        assert "bad/join" in message and "only.left" in message


class TestPhis:
    def _diamond(self):
        module, function = _function()
        entry = function.add_block("entry")
        left = function.add_block("left")
        right = function.add_block("right")
        join = function.add_block("join")
        builder = IRBuilder(entry)
        builder.cond_br(Constant(1), left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        return module, function, left, right, join

    def test_phi_missing_predecessor_entry(self):
        module, function, left, right, join = self._diamond()
        phi = Phi(I32, "merge")
        phi.add_incoming(Constant(1), left)  # no entry for 'right'
        join.append(phi)
        join.append(Ret(phi))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "incoming blocks" in message and "do not match predecessors" in message
        assert "bad/join" in message and "%merge" in message

    def test_phi_entry_for_non_predecessor(self):
        module, function, left, right, join = self._diamond()
        stray = function.add_block("stray")
        IRBuilder(stray).ret(Constant(0))
        phi = Phi(I32, "merge")
        phi.add_incoming(Constant(1), left)
        phi.add_incoming(Constant(2), right)
        phi.add_incoming(Constant(3), stray)  # stray never branches to join
        join.append(phi)
        join.append(Ret(phi))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        assert "do not match predecessors" in str(exc.value)

    def test_phi_after_non_phi(self):
        module, function, left, right, join = self._diamond()
        builder = IRBuilder(join)
        value = builder.add(Constant(1), Constant(2), "x")
        phi = Phi(I32, "late")
        phi.add_incoming(Constant(1), left)
        phi.add_incoming(Constant(2), right)
        join.append(phi)
        join.append(Ret(value))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        assert "phi after non-phi instruction" in str(exc.value)
        assert "bad/join" in str(exc.value)


class TestSignatures:
    def test_value_return_from_void_function(self):
        module, function = _function(return_type=VOID)
        entry = function.add_block("entry")
        entry.append(Ret(Constant(7)))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        message = str(exc.value)
        assert "return does not match function return type" in message
        assert "bad" in message

    def test_bare_return_from_value_function(self):
        module, function = _function(return_type=I32)
        entry = function.add_block("entry")
        entry.append(Ret(None))
        with pytest.raises(VerificationError) as exc:
            verify_function(function)
        assert "return does not match function return type" in str(exc.value)

    def test_call_to_unknown_function(self):
        module, function = _function()
        entry = function.add_block("entry")
        builder = IRBuilder(entry)
        result = builder.call("missing", [Constant(1)])
        builder.ret(result)
        with pytest.raises(VerificationError) as exc:
            verify_function(function, module)
        message = str(exc.value)
        assert "call to unknown function @missing" in message
        assert "bad/entry" in message

    def test_host_calls_are_exempt(self):
        module, function = _function()
        entry = function.add_block("entry")
        builder = IRBuilder(entry)
        result = builder.call("__print", [Constant(1)])
        builder.ret(result)
        verify_function(function, module)  # must not raise


class TestGoodModules:
    def test_well_formed_diamond_passes(self):
        module, function = _function(name="good")
        entry = function.add_block("entry")
        left = function.add_block("left")
        right = function.add_block("right")
        join = function.add_block("join")
        builder = IRBuilder(entry)
        builder.cond_br(Constant(1), left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        phi = Phi(I32, "merge")
        phi.add_incoming(Constant(1), left)
        phi.add_incoming(Constant(2), right)
        join.append(phi)
        join.append(Ret(phi))
        verify_module(module)  # must not raise
