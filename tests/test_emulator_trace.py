"""Direct unit tests for :mod:`repro.emulator.trace`.

The differential suites check TraceStats end-to-end (every engine must fold
to the same numbers); these tests pin the folding primitives themselves —
per-page memory folding at page boundaries, the whole-run/per-segment set
merges, fold idempotency and the empty-run identities — so a folding bug
surfaces here as a one-line arithmetic failure instead of a cross-engine
divergence on a 300k-instruction benchmark.
"""

import copy

from repro.backend.isa import AssemblyFunction, AssemblyProgram, MachineInstr
from repro.emulator import Machine, PAGE_SIZE, TraceStats


def _instr(opcode, *operands):
    return MachineInstr(opcode, list(operands))


def _memory_program() -> AssemblyProgram:
    """A tiny guest: one store and one load on page 4, then return 0."""
    body = [
        _instr("li", "t0", 0x1000),
        _instr("sw", "t0", 0, "t0"),
        _instr("lw", "t1", 0, "t0"),
        _instr("li", "a0", 0),
        _instr("jalr", "zero", "ra", 0),
    ]
    return AssemblyProgram(functions={
        "main": AssemblyFunction("main", body)})


class TestRecordInstruction:
    def test_counts_accumulate_per_opcode_and_class(self):
        stats = TraceStats()
        stats.record_instruction("addi", "alu")
        stats.record_instruction("addi", "alu")
        stats.record_instruction("mul", "mul")
        assert stats.instructions == 3
        assert stats.opcode_counts == {"addi": 2, "mul": 1}
        assert stats.class_counts == {"alu": 2, "mul": 1}


class TestRecordMemory:
    def test_boundary_addresses_fold_into_adjacent_pages(self):
        # The last byte address of page 0 and the first of page 1 must land
        # in different pages; the last word of page 1 stays in page 1.
        stats = TraceStats()
        stats.record_memory(PAGE_SIZE - 1, is_write=False)
        stats.record_memory(PAGE_SIZE, is_write=False)
        stats.record_memory(2 * PAGE_SIZE - 4, is_write=True)
        assert stats.pages_read == {0, 1}
        assert stats.pages_written == {1}
        assert stats.page_access_counts == {0: 1, 1: 2}
        assert stats.loads == 2
        assert stats.stores == 1

    def test_reads_and_writes_fold_into_separate_sets(self):
        stats = TraceStats()
        stats.record_memory(0, is_write=False)
        stats.record_memory(0, is_write=True)
        assert stats.pages_read == {0}
        assert stats.pages_written == {0}
        # One page, two accesses: the count dict folds both kinds together.
        assert stats.page_access_counts == {0: 2}

    def test_unique_pages_is_the_union(self):
        stats = TraceStats()
        stats.pages_read = {0, 1}
        stats.pages_written = {1, 2}
        assert stats.unique_pages == 3


class TestEmptyRunIdentities:
    def test_fresh_stats_are_equal_and_all_zero(self):
        assert TraceStats() == TraceStats()
        summary = TraceStats().summary()
        assert all(value == 0 for value in summary.values())

    def test_any_recorded_event_breaks_the_identity(self):
        stats = TraceStats()
        stats.record_instruction("nop", "alu")
        assert stats != TraceStats()

    def test_unrun_machine_carries_empty_stats(self):
        machine = Machine(_memory_program())
        assert machine.stats == TraceStats()
        assert (machine.page_in_events, machine.page_out_events) == (0, 0)

    def test_summary_reports_the_folded_scalars(self):
        machine = Machine(_memory_program())
        stats = machine.run()
        assert stats.summary() == {
            "instructions": 5,
            "loads": 1,
            "stores": 1,
            "branches_taken": 0,
            "branches_not_taken": 0,
            "calls": 0,
            "unique_pages": 1,
            "return_value": 0,
        }


class TestFoldingIdentities:
    def test_refolding_after_halt_is_idempotent(self):
        # _fold_stats rebuilds the dicts from the counter arrays, so running
        # the fold a second time must be the identity on the stats.
        machine = Machine(_memory_program())
        machine.run()
        snapshot = copy.deepcopy(machine.stats)
        machine._fold_stats()
        assert machine.stats == snapshot

    def test_flushing_an_empty_segment_is_the_identity(self):
        # After halt the per-segment page sets are empty; a flush of an empty
        # segment must add no paging events and leave the stats untouched.
        machine = Machine(_memory_program())
        machine.run()
        events = (machine.page_in_events, machine.page_out_events)
        snapshot = copy.deepcopy(machine.stats)
        machine._flush_segment()
        assert (machine.page_in_events, machine.page_out_events) == events
        assert machine.stats == snapshot

    def test_open_segment_pages_merge_into_whole_run_sets(self):
        # One segment covering the whole run: the trailing partial segment's
        # pages must reach pages_read/pages_written exactly once.
        machine = Machine(_memory_program(), segment_size=1 << 16)
        stats = machine.run()
        assert stats.pages_read == {0x1000 // PAGE_SIZE}
        assert stats.pages_written == {0x1000 // PAGE_SIZE}
        assert machine.page_in_events == 1
        assert machine.page_out_events == 1


class TestSegmentBoundaryFolding:
    def test_per_segment_first_touches_recount_across_boundaries(self):
        # segment_size=2 splits the 5-instruction run into segments
        # [li,sw][lw,li][jalr]: the page is written in segment one (one
        # page-in, one page-out), re-read in segment two (one page-in, clean
        # so no page-out), untouched in the trailing partial segment.
        machine = Machine(_memory_program(), segment_size=2)
        stats = machine.run()
        assert machine.page_in_events == 2
        assert machine.page_out_events == 1
        # Whole-run sets are segment-independent.
        assert stats.pages_read == {0x1000 // PAGE_SIZE}
        assert stats.pages_written == {0x1000 // PAGE_SIZE}

    def test_whole_run_sets_invariant_under_segment_size(self):
        baseline = Machine(_memory_program(), segment_size=1 << 16).run()
        for segment_size in (1, 2, 3, 5, 6):
            stats = Machine(_memory_program(),
                            segment_size=segment_size).run()
            assert stats == baseline, f"segment_size={segment_size}"

    def test_paging_events_monotone_in_segment_count(self):
        # More segment boundaries can only re-touch pages, never un-touch
        # them: page-in events are monotone as segments shrink.
        events = []
        for segment_size in (1 << 16, 3, 1):
            machine = Machine(_memory_program(), segment_size=segment_size)
            machine.run()
            events.append(machine.page_in_events)
        assert events == sorted(events)
