"""Tests for the benchmark suite, the experiment runner, the autotuner and the
table/figure regenerators."""

import pytest

from repro.benchmarks import (
    all_benchmark_names, benchmarks_in_suite, get_benchmark, suites,
)
from repro.experiments import (
    BenchmarkRunner, all_study_profiles, baseline_profile, percent_change,
    profile_by_name, zkvm_aware_profile,
)
from repro.experiments import figures, tables
from repro.frontend import compile_source
from repro.ir import verify_module

FAST_BENCHMARKS = ["fibonacci", "loop-sum", "polybench-trisolv", "npb-is", "rsp"]
FAST_PASSES = ["inline", "licm", "mem2reg", "instcombine", "loop-extract"]


@pytest.fixture(scope="module")
def runner():
    # A generous instruction budget: a few pass/benchmark combinations (e.g.
    # loop-extract on deeply nested kernels) legitimately run long.
    return BenchmarkRunner(max_instructions=80_000_000)


class TestBenchmarkSuite:
    def test_suite_has_58_programs(self):
        assert len(all_benchmark_names()) == 58

    def test_suites_match_the_paper(self):
        assert set(suites()) == {"polybench", "npb", "crypto", "spec", "misc", "rsp"}
        assert len(benchmarks_in_suite("polybench")) == 30
        assert len(benchmarks_in_suite("npb")) == 8
        assert len(benchmarks_in_suite("crypto")) == 9
        assert len(benchmarks_in_suite("spec")) == 3

    @pytest.mark.parametrize("name", all_benchmark_names())
    def test_every_benchmark_compiles_and_verifies(self, name):
        benchmark = get_benchmark(name)
        module = compile_source(benchmark.source, name)
        verify_module(module)
        assert module.get_function("main") is not None

    @pytest.mark.parametrize("name", FAST_BENCHMARKS)
    def test_fast_benchmarks_execute(self, runner, name):
        measurement = runner.measure(name, baseline_profile())
        assert measurement.instructions > 0
        assert measurement.trace.output, f"{name} produced no output checksum"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("not-a-benchmark")

    def test_precompile_benchmarks_marked(self):
        assert get_benchmark("keccak256").uses_precompile
        assert get_benchmark("ecdsa-verify").uses_precompile
        assert not get_benchmark("sha256").uses_precompile


class TestProfiles:
    def test_study_profiles_cover_baseline_passes_and_levels(self):
        profiles = all_study_profiles()
        names = [p.name for p in profiles]
        assert "baseline" in names and "-O3" in names and "licm" in names
        assert len([p for p in profiles if p.kind == "pass"]) >= 30

    def test_zkvm_aware_profile_configuration(self):
        profile = zkvm_aware_profile()
        assert profile.config.zkvm_aware
        assert profile.config.inline_threshold == 4328
        assert not profile.config.expand_div_by_constant
        assert "speculative-execution" not in profile.passes
        assert profile.cost_model.name == "zkvm"

    def test_profile_lookup(self):
        assert profile_by_name("-O3").kind == "level"
        with pytest.raises(KeyError):
            profile_by_name("-O9")


class TestRunner:
    def test_optimized_profiles_preserve_benchmark_output(self, runner):
        base = runner.measure("fibonacci", baseline_profile())
        optimized = runner.measure("fibonacci", profile_by_name("-O2"))
        assert optimized.trace.output == base.trace.output
        assert optimized.instructions < base.instructions

    def test_measurement_contains_all_metrics(self, runner):
        m = runner.measure("loop-sum", baseline_profile())
        assert m.risc0.total_cycles >= m.instructions
        assert m.sp1.proving_time > 0
        assert m.cpu.cycles > 0
        data = m.as_dict()
        assert set(data) >= {"benchmark", "profile", "risc0", "sp1", "cpu"}

    def test_gain_is_positive_for_o2_on_loop_heavy_code(self, runner):
        # The optimizing backend narrows baseline-relative gains (it cleans
        # up much of the unoptimized code's redundancy at the machine level,
        # e.g. store-to-load forwarding through allocas), so the margin is
        # smaller than under the seed backend — but IR optimization must
        # still win on loop-heavy code.
        gain = runner.gain("loop-sum", profile_by_name("-O2"), "risc0", "execution_time")
        assert gain > 0.0
        # Against the preserved seed backend the seed-era margin still holds.
        seed_runner = BenchmarkRunner(seed_backend=True)
        assert seed_runner.gain("loop-sum", profile_by_name("-O2"),
                                "risc0", "execution_time") > 10.0

    def test_percent_change_sign_convention(self):
        assert percent_change(100, 50) == 50.0      # faster -> positive gain
        assert percent_change(100, 150) == -50.0    # slower -> negative
        assert percent_change(0, 10) == 0.0

    def test_measurements_are_cached(self, runner):
        first = runner.measure("fibonacci", baseline_profile())
        second = runner.measure("fibonacci", baseline_profile())
        assert first is second


class TestRegenerators:
    def test_table1_counts(self, runner):
        rows = tables.table1_gain_loss_counts(runner, FAST_BENCHMARKS, FAST_PASSES)
        assert set(rows) == {"risc0", "sp1"}
        for counts in rows.values():
            assert all(v >= 0 for v in counts.values())
        total = sum(sum(c.values()) for c in rows.values())
        assert total > 0

    def test_table2_correlations_are_strong_and_positive(self, runner):
        result = tables.table2_correlations(runner, FAST_BENCHMARKS, FAST_PASSES)
        key = ("risc0", "execution_time", "instructions")
        # Small profile slices keep the correlation positive but noisier than the
        # paper's full matrix; the full sweep (examples/full_study.py) is stronger.
        assert result[key]["kendall"] > 0.15
        assert result[key]["pearson"] > 0.5
        assert result[("sp1", "execution_time", "paging_cycles")]["kendall"] is None

    def test_table3_manual_unrolling_helps_both_targets(self):
        rows = tables.table3_manual_unrolling()
        for row in rows.values():
            assert row["instruction_change"] < 0      # fewer instructions executed
            assert row["risc0_exec_gain"] > 0
            assert row["x86_exec_gain"] > 0

    def test_table6_baseline_statistics(self, runner):
        stats = tables.table6_baseline_statistics(runner, FAST_BENCHMARKS)
        entry = stats[("risc0", "proving_time")]
        assert entry["min"] <= entry["median"] <= entry["max"]
        assert stats[("sp1", "execution_time")]["mean"] > 0

    def test_figure5_levels_improve_over_baseline(self, runner):
        result = figures.figure5_optimization_levels(runner, FAST_BENCHMARKS)
        assert result["-O3"][("risc0", "execution_time")] > 0
        assert result["-O3"][("risc0", "execution_time")] >= \
            result["-O0"][("risc0", "execution_time")]

    def test_figure3_ranks_inline_positive_licm_not(self, runner):
        # Use call-heavy benchmarks, where inlining's benefit is unambiguous.
        result = figures.figure3_pass_impact(runner, ["factorial", "tailcall"],
                                             ["inline", "licm", "mem2reg"], top_n=3)
        inline_gain = result["risc0"]["total_cycles"]["inline"]["mean"]
        licm_gain = result["risc0"]["total_cycles"]["licm"]["mean"]
        assert inline_gain > licm_gain

    def test_figure9_cost_components_structure(self, runner):
        result = figures.figure9_cost_components(
            runner, benchmarks=["tailcall"], profiles=["inline", "-O3"])
        assert "inline" in result and "tailcall" in result["inline"]
        row = result["inline"]["tailcall"]
        assert {"exec_gain", "prove_gain", "instructions_change"} <= set(row)

    def test_figure14_zkvm_aware_vs_vanilla(self, runner):
        result = figures.figure14_zkvm_aware(runner, ["fibonacci", "loop-sum"])
        assert set(result) == {"fibonacci", "loop-sum"}
        # The zkVM-aware build must not increase dynamic instruction count.
        for row in result.values():
            assert row["instruction_reduction"] >= -1.0

    def test_figure15_native_much_faster_than_proving(self, runner):
        result = figures.figure15_native_vs_zkvm(runner, ["npb-is"])
        row = result["npb-is"]
        assert row["risc0_proving_s"] > row["native_execution_s"] * 100

    def test_case_studies(self):
        strength = tables.case_study_strength_reduction()
        assert strength["-O3"]["output"] == strength["-O3-zkvm"]["output"]
        abs_case = tables.case_study_branchless_abs()
        assert abs_case["branchy"]["output"] == abs_case["branchless"]["output"]
        fission = tables.case_study_loop_fission()
        assert fission["fused"]["instructions"] < fission["fissioned"]["instructions"]


class TestAutotuner:
    def test_autotuner_finds_configuration_at_least_as_good_as_seeds(self):
        from repro.autotuner import GeneticAutotuner

        runner = BenchmarkRunner()
        tuner = GeneticAutotuner(runner=runner, seed=3, population_size=6)
        result = tuner.tune("loop-sum", iterations=8)
        assert result.evaluations == 8
        assert result.best_cycles <= result.baseline_cycles
        assert result.best.passes
        assert result.speedup_over_o3 > 0.5
