"""Tests for the MiniC lexer, parser and code generator."""

import pytest

from repro.frontend import LexerError, ParseError, SemanticError, compile_source, tokenize
from repro.ir import verify_module
from repro.ir.interpreter import run_module

from support import interpret


class TestLexer:
    def test_tokenizes_keywords_identifiers_and_numbers(self):
        tokens = tokenize("fn main() -> int { return 42; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword" and tokens[0].value == "fn"
        assert "number" in kinds and kinds[-1] == "eof"

    def test_hex_numbers(self):
        tokens = tokenize("var x = 0xFF;")
        assert any(t.value == "0xFF" and t.kind == "number" for t in tokens)

    def test_comments_are_skipped(self):
        tokens = tokenize("// line comment\n/* block\ncomment */ fn")
        assert [t.value for t in tokens if t.kind != "eof"] == ["fn"]

    def test_multi_character_operators(self):
        values = [t.value for t in tokenize("a >>> b << c <= d && e")]
        assert ">>>" in values and "<<" in values and "<=" in values and "&&" in values

    def test_invalid_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("fn main() { $ }")

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_line_numbers_tracked(self):
        tokens = tokenize("fn a() {\n  return 1;\n}")
        return_token = next(t for t in tokens if t.value == "return")
        assert return_token.line == 2


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            compile_source("fn main() -> int { return 1 }")

    def test_unexpected_top_level_token(self):
        with pytest.raises(ParseError):
            compile_source("return 1;")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_source("fn main() -> int { break; return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            compile_source("fn main() -> int { return missing; }")

    def test_call_to_unknown_function(self):
        with pytest.raises(SemanticError):
            compile_source("fn main() -> int { return nothere(1); }")

    def test_wrong_arity(self):
        with pytest.raises(SemanticError):
            compile_source("fn f(a, b) -> int { return a + b; } "
                           "fn main() -> int { return f(1); }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError):
            compile_source("fn main() -> int { var x = 1; var x = 2; return x; }")


class TestSemantics:
    def test_arithmetic_and_precedence(self):
        assert interpret("fn main() -> int { return 2 + 3 * 4 - 10 / 2; }").return_value == 9

    def test_division_truncates_toward_zero(self):
        assert interpret("fn main() -> int { return (0 - 7) / 2; }").return_value == -3
        assert interpret("fn main() -> int { return (0 - 7) % 2; }").return_value == -1

    def test_shift_operators(self):
        assert interpret("fn main() -> int { return (1 << 5) + (64 >> 2); }").return_value == 48

    def test_logical_shift_right(self):
        result = interpret("fn main() -> int { return (0 - 1) >>> 28; }")
        assert result.return_value == 15

    def test_bitwise_operators(self):
        assert interpret("fn main() -> int { return (12 & 10) | (1 ^ 3); }").return_value == 10

    def test_comparisons_produce_zero_or_one(self):
        assert interpret("fn main() -> int { return (3 < 5) + (5 < 3) + (4 == 4); }").return_value == 2

    def test_short_circuit_and(self):
        source = """
        global hits[1];
        fn bump() -> int { hits[0] = hits[0] + 1; return 1; }
        fn main() -> int { var r = 0 && bump(); return hits[0]; }
        """
        assert interpret(source).return_value == 0

    def test_short_circuit_or(self):
        source = """
        global hits[1];
        fn bump() -> int { hits[0] = hits[0] + 1; return 1; }
        fn main() -> int { var r = 1 || bump(); return hits[0]; }
        """
        assert interpret(source).return_value == 0

    def test_while_and_break_continue(self):
        source = """
        fn main() -> int {
          var i = 0; var acc = 0;
          while (1) {
            i = i + 1;
            if (i % 2 == 0) { continue; }
            if (i > 9) { break; }
            acc = acc + i;
          }
          return acc;
        }
        """
        assert interpret(source).return_value == 1 + 3 + 5 + 7 + 9

    def test_for_loop_with_empty_clauses(self):
        source = """
        fn main() -> int {
          var i = 0; var acc = 0;
          for (; i < 5;) { acc = acc + i; i = i + 1; }
          return acc;
        }
        """
        assert interpret(source).return_value == 10

    def test_global_initializers(self):
        source = """
        global data[4] = {10, 20, 30};
        fn main() -> int { return data[0] + data[1] + data[2] + data[3]; }
        """
        assert interpret(source).return_value == 60

    def test_local_arrays(self):
        source = """
        fn main() -> int {
          var buf[8];
          var i;
          for (i = 0; i < 8; i = i + 1) { buf[i] = i * i; }
          return buf[7];
        }
        """
        assert interpret(source).return_value == 49

    def test_arrays_passed_by_reference(self):
        source = """
        global data[4];
        fn fill(v, n) { var i; for (i = 0; i < n; i = i + 1) { v[i] = i + 1; } }
        fn main() -> int { fill(data, 4); return data[3]; }
        """
        assert interpret(source).return_value == 4

    def test_recursion(self):
        source = "fn f(n) -> int { if (n < 2) { return n; } return f(n-1) + f(n-2); } " \
                 "fn main() -> int { return f(12); }"
        assert interpret(source).return_value == 144

    def test_constants_fold_in_sizes_and_expressions(self):
        source = """
        const N = 4 * 4;
        global data[N];
        fn main() -> int { return N + 1; }
        """
        assert interpret(source).return_value == 17

    def test_print_builtin_produces_output(self):
        result = interpret("fn main() -> int { print(7); print(0 - 3); return 0; }")
        assert result.output == [7, -3]

    def test_generated_ir_verifies(self, reference_module):
        verify_module(reference_module)

    def test_void_function(self):
        source = """
        global flag[1];
        fn set_it() { flag[0] = 5; }
        fn main() -> int { set_it(); return flag[0]; }
        """
        assert interpret(source).return_value == 5

    def test_inline_attribute_recorded(self):
        module = compile_source("inline fn tiny(x) -> int { return x; } "
                                "fn main() -> int { return tiny(3); }")
        assert "alwaysinline" in module.get_function("tiny").attributes
