"""Differential tests: every execution engine vs the seed interpreter.

The production :class:`~repro.emulator.machine.Machine` replays guests through
a decode-once, table-dispatch pipeline; the original per-instruction
interpreter survives as :class:`~repro.emulator.reference.ReferenceMachine`;
the batched machine runs lanes of guests over numpy and the superblock
translator compiles hot regions to Python closures.  These tests parametrize
over the shared engine helpers in ``tests/engines.py`` so every engine —
current and future — is held to *identical* trace statistics, outputs, paging
events, fault behavior and (for scalar engines) observer event streams,
across every seed benchmark and an opcode-coverage microprogram that executes
every implemented ALU, branch, jump, memory and ecall opcode at least once.
"""

from functools import lru_cache

import pytest

from engines import (
    DIFF_ENGINE_NAMES, SCALAR_ENGINES, assert_runs_identical, engine_params,
    run_engine,
)
from repro.backend import compile_module
from repro.backend.isa import (
    AssemblyFunction, AssemblyProgram, Label, MachineInstr,
)
from repro.backend.lowering import HOST_CALL_IDS
from repro.benchmarks import all_benchmark_names, get_benchmark
from repro.emulator import (
    EmulationError, Machine, ReferenceMachine, TranslatedMachine,
    decode_program,
)
from repro.emulator.decoder import ALU_IMM_IMPLS, _ALU_IMM_DECODED
from repro.frontend import compile_source

#: The engines that share the scalar observer/``get()`` interface, i.e. every
#: differential engine except the batched lane machine.
SCALAR_DIFF = tuple(n for n in DIFF_ENGINE_NAMES if n in SCALAR_ENGINES)


class RecordingObserver:
    """Captures the full per-instruction event stream."""

    def __init__(self):
        self.events = []

    def on_instruction(self, opcode, instruction_class, dest, sources,
                       memory_address, is_store, branch_taken, pc):
        self.events.append((opcode, instruction_class, dest, tuple(sources),
                            memory_address, bool(is_store),
                            None if branch_taken is None else bool(branch_taken),
                            pc))


@lru_cache(maxsize=None)
def _compile_benchmark(name: str) -> AssemblyProgram:
    benchmark = get_benchmark(name)
    return compile_module(compile_source(benchmark.source, module_name=name))


@lru_cache(maxsize=None)
def _compile(source: str) -> AssemblyProgram:
    return compile_module(compile_source(source))


_reference_runs: dict = {}


def _reference_benchmark_run(name: str):
    """The memoized reference-interpreter run of one seed benchmark."""
    if name not in _reference_runs:
        benchmark = get_benchmark(name)
        _reference_runs[name] = run_engine(
            "reference", _compile_benchmark(name), "main", benchmark.args,
            input_values=benchmark.inputs)
    return _reference_runs[name]


def _run_events(machine_cls, program, **kwargs):
    """Run a scalar machine with a recording observer attached."""
    observer = RecordingObserver()
    machine = machine_cls(program, observers=[observer], **kwargs)
    machine.run()
    return machine, observer.events


def _assert_machines_identical(fast, ref, context=""):
    assert fast.stats == ref.stats, f"TraceStats diverged {context}"
    assert fast.page_in_events == ref.page_in_events, context
    assert fast.page_out_events == ref.page_out_events, context
    assert fast.output == ref.output, context
    assert fast.memory == ref.memory, context


# -- opcode-coverage microprogram ----------------------------------------------
#: Every opcode the emulator implements (decoded to a non-faulting handler).
IMPLEMENTED_OPCODES = frozenset({
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
    "mul", "div", "divu", "rem", "remu",
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu",
    "li", "lui", "mv", "lw", "sw",
    "beq", "bne", "blt", "bge", "bltu", "bgeu", "beqz", "bnez", "j",
    "call", "jal", "jalr", "ecall", "nop",
})


def _instr(opcode, *operands):
    return MachineInstr(opcode, list(operands))


def microprogram() -> AssemblyProgram:
    """A hand-written guest executing every implemented opcode at least once.

    Branches are exercised both taken and not-taken; signed/unsigned and
    negative-immediate corners are included so every decode-time immediate
    preparation is hit.
    """
    main = [
        # prologue: keep main's sentinel return address across calls
        _instr("addi", "sp", "sp", -8),
        _instr("sw", "ra", 4, "sp"),
        # register-register ALU, with a negative operand in t4
        _instr("li", "t0", 12),
        _instr("li", "t1", 5),
        _instr("li", "t4", -7),
        _instr("add", "t2", "t0", "t1"),
        _instr("sub", "t3", "t0", "t1"),
        _instr("and", "s1", "t0", "t1"),
        _instr("or", "s2", "t0", "t1"),
        _instr("xor", "s3", "t0", "t1"),
        _instr("sll", "s4", "t0", "t1"),
        _instr("srl", "s5", "s4", "t1"),
        _instr("sra", "s6", "t4", "t1"),
        _instr("slt", "s7", "t4", "t0"),
        _instr("sltu", "s8", "t4", "t0"),
        _instr("mul", "s9", "t0", "t1"),
        _instr("div", "s10", "t4", "t1"),
        _instr("divu", "s11", "t0", "t1"),
        _instr("rem", "t5", "t4", "t1"),
        _instr("remu", "t6", "t0", "t1"),
        # division corner: divisor zero
        _instr("li", "a1", 0),
        _instr("div", "a2", "t0", "a1"),
        _instr("divu", "a3", "t0", "a1"),
        _instr("rem", "a4", "t4", "a1"),
        _instr("remu", "a5", "t0", "a1"),
        # immediates, including negative / masked corners
        _instr("addi", "a1", "t0", -3),
        _instr("andi", "a2", "t4", 255),
        _instr("andi", "a3", "t4", -1),
        _instr("ori", "a4", "t4", -16),
        _instr("xori", "a5", "t4", -1),
        _instr("slli", "a6", "t0", 3),
        _instr("srli", "a7", "t4", 2),
        _instr("srai", "s1", "t4", 2),
        _instr("slti", "s2", "t4", -3),
        _instr("slti", "s3", "t4", 100),
        _instr("sltiu", "s4", "t4", -1),
        _instr("sltiu", "s5", "t0", 13),
        _instr("lui", "s6", 5),
        _instr("mv", "s7", "t0"),
        _instr("nop"),
        # memory: stores, loads, and a load from never-written address 0
        _instr("li", "s8", 0x1000),
        _instr("sw", "t0", 0, "s8"),
        _instr("lw", "s9", 0, "s8"),
        _instr("sw", "t1", 4, "s8"),
        _instr("lw", "s10", 4, "s8"),
        _instr("lw", "s11", 0, "zero"),
        # conditional branches: every predicate, taken and not taken
        _instr("beq", "t0", "t1", "Lnever"),
        _instr("beq", "t0", "t0", "L1"),
        Label("L1"),
        _instr("bne", "t0", "t0", "Lnever"),
        _instr("bne", "t0", "t1", "L2"),
        Label("L2"),
        _instr("blt", "t1", "t0", "L3"),
        Label("L3"),
        _instr("blt", "t0", "t1", "Lnext1"),
        Label("Lnext1"),
        _instr("bge", "t0", "t1", "L4"),
        Label("L4"),
        _instr("bge", "t4", "t0", "Lnext2"),   # t4 negative: not taken
        Label("Lnext2"),
        _instr("bltu", "t1", "t0", "L5"),
        Label("L5"),
        _instr("bltu", "t4", "t0", "Lnext3"),  # t4 huge unsigned: not taken
        Label("Lnext3"),
        _instr("bgeu", "t4", "t0", "L6"),      # taken (unsigned)
        Label("L6"),
        _instr("beqz", "zero", "L7"),
        Label("L7"),
        _instr("bnez", "t0", "L8"),
        Label("L8"),
        _instr("beqz", "t0", "Lnever"),
        _instr("bnez", "zero", "Lnever"),
        _instr("j", "L9"),
        Label("Lnever"),
        _instr("ebreak"),
        Label("L9"),
        # jumps and calls
        _instr("call", "helper"),
        _instr("call", "helper2"),
        _instr("jal", "t3", "Lj"),
        Label("Lj"),
        # host calls: print the accumulator, read one input word
        _instr("mv", "a0", "s9"),
        _instr("li", "a7", HOST_CALL_IDS["__print"]),
        _instr("ecall"),
        _instr("li", "a0", 0),
        _instr("li", "a7", HOST_CALL_IDS["__read_input"]),
        _instr("ecall"),
        # epilogue
        _instr("lw", "ra", 4, "sp"),
        _instr("addi", "sp", "sp", 8),
        _instr("jalr", "zero", "ra", 0),
    ]
    helper = [
        _instr("addi", "a0", "a0", 1),
        _instr("jalr", "zero", "ra", 0),
    ]
    helper2 = [
        _instr("jalr", "t4", "ra", 0),         # jalr with a live destination
    ]
    return AssemblyProgram(functions={
        "main": AssemblyFunction("main", main),
        "helper": AssemblyFunction("helper", helper),
        "helper2": AssemblyFunction("helper2", helper2),
    })


class TestMicroprogram:
    def test_covers_every_implemented_opcode(self):
        program = microprogram()
        stats = Machine(program, input_values=[77]).run()
        executed = set(stats.opcode_counts)
        missing = IMPLEMENTED_OPCODES - executed
        assert not missing, f"microprogram never executed: {sorted(missing)}"

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_every_engine_matches_reference(self, engine):
        program = microprogram()
        ref = run_engine("reference", program, input_values=[77])
        run = run_engine(engine, program, input_values=[77])
        assert_runs_identical(run, ref, "on the microprogram")

    @pytest.mark.parametrize("engine", SCALAR_DIFF)
    def test_observed_run_identical_to_reference(self, engine):
        program = microprogram()
        ref, ref_events = _run_events(ReferenceMachine, program,
                                      input_values=[77])
        machine, events = _run_events(SCALAR_ENGINES[engine], program,
                                      input_values=[77])
        _assert_machines_identical(machine, ref,
                                   f"on the observed microprogram ({engine})")
        assert events == ref_events

    def test_branches_seen_taken_and_not_taken(self):
        stats = Machine(microprogram(), input_values=[77]).run()
        assert stats.branches_taken > 0
        assert stats.branches_not_taken > 0


class TestSeedBenchmarksDifferential:
    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    @pytest.mark.parametrize("name", all_benchmark_names())
    def test_trace_stats_identical(self, name, engine):
        benchmark = get_benchmark(name)
        run = run_engine(engine, _compile_benchmark(name), "main",
                         benchmark.args, input_values=benchmark.inputs)
        ref = _reference_benchmark_run(name)
        assert_runs_identical(run, ref, f"on benchmark {name}")
        assert run.stats.summary() == ref.stats.summary()

    @pytest.mark.parametrize("engine", SCALAR_DIFF)
    @pytest.mark.parametrize("name", ["fibonacci", "loop-sum", "factorial",
                                      "tailcall"])
    def test_observer_event_streams_identical(self, name, engine):
        benchmark = get_benchmark(name)
        program = _compile_benchmark(name)
        _, ref_events = _run_events(ReferenceMachine, program,
                                    input_values=benchmark.inputs)
        _, events = _run_events(SCALAR_ENGINES[engine], program,
                                input_values=benchmark.inputs)
        assert events == ref_events, \
            f"event streams diverged on {name} ({engine})"

    @pytest.mark.parametrize("engine", SCALAR_DIFF)
    def test_cpu_timing_model_identical(self, engine):
        from repro.cpu import CpuTimingModel

        program = _compile_benchmark("fibonacci")
        cpu, ref_cpu = CpuTimingModel(), CpuTimingModel()
        SCALAR_ENGINES[engine](program, observers=[cpu]).run()
        ReferenceMachine(program, observers=[ref_cpu]).run()
        assert cpu.finalize() == ref_cpu.finalize()


class TestSegmentPaging:
    SOURCE = """
    global big[2048];
    fn main() -> int {
      var i;
      for (i = 0; i < 2048; i = i + 32) { big[i] = i + big[i % 64]; }
      return big[0];
    }
    """

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    @pytest.mark.parametrize("segment_size", [7, 100, 999, 1 << 16])
    def test_partial_trailing_segment_pages_correctly(self, segment_size,
                                                      engine):
        """Instruction counts that are not a multiple of segment_size must
        still flush the trailing partial segment exactly once."""
        program = _compile(self.SOURCE)
        ref = run_engine("reference", program, segment_size=segment_size)
        run = run_engine(engine, program, segment_size=segment_size)
        assert_runs_identical(run, ref, f"segment_size={segment_size}")
        assert run.page_in_events > 0

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_segment_sizes_straddling_the_run_length(self, engine):
        """Sweep segment sizes pinned to the exact dynamic run length.

        segment_size == run_length means the run's only segment boundary
        lands exactly on the final instruction (no partial trailing segment);
        run_length +/- 1 puts the boundary one instruction to either side.
        All three — plus the degenerate size-1 and a tiny odd size — must
        page identically to the seed interpreter.
        """
        program = _compile(self.SOURCE)
        run_length = Machine(program).run().instructions
        for segment_size in (1, 7, run_length - 1, run_length,
                             run_length + 1):
            ref = run_engine("reference", program, segment_size=segment_size)
            run = run_engine(engine, program, segment_size=segment_size)
            assert_runs_identical(
                run, ref,
                f"segment_size={segment_size} (run_length={run_length})")

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_exact_multiple_has_no_partial_trailing_segment(self, engine):
        """When the run length divides evenly, both machines must count the
        same number of segment flushes — no spurious trailing flush."""
        program = _compile(self.SOURCE)
        run_length = Machine(program).run().instructions
        for divisor in (1, 2, 4):
            if run_length % divisor:
                continue
            size = run_length // divisor
            ref = run_engine("reference", program, segment_size=size)
            run = run_engine(engine, program, segment_size=size)
            assert_runs_identical(run, ref, f"segment_size={size}")

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_instruction_limit_parity(self, engine):
        program = _compile("fn main() -> int { while (1) { } return 0; }")
        ref = run_engine("reference", program, max_instructions=1000)
        run = run_engine(engine, program, max_instructions=1000)
        assert isinstance(run.error, EmulationError)
        assert_runs_identical(run, ref, "at the instruction limit")
        assert run.stats.instructions == 1000


class TestMachineReuse:
    """Re-running a Machine must behave exactly like a fresh Machine.

    Regression tests for the re-run state leak: ``run()`` used to accumulate
    statistics, memory, the segment countdown and page-event sets across
    calls, so a second ``run()`` reported double instruction counts and
    carried dirty pages into the new run's first segment.
    """

    @pytest.mark.parametrize("machine_cls",
                             [Machine, ReferenceMachine, TranslatedMachine],
                             ids=["fast", "reference", "translated"])
    def test_two_runs_equal_two_fresh_machines(self, machine_cls):
        benchmark = get_benchmark("fibonacci")
        program = _compile_benchmark("fibonacci")
        kwargs = dict(input_values=benchmark.inputs, segment_size=100)

        reused = machine_cls(program, **kwargs)
        first = reused.run("main", benchmark.args)
        first_pages = (reused.page_in_events, reused.page_out_events)
        second = reused.run("main", benchmark.args)

        fresh_a = machine_cls(program, **kwargs)
        fresh_b = machine_cls(program, **kwargs)
        fresh_first = fresh_a.run("main", benchmark.args)
        fresh_second = fresh_b.run("main", benchmark.args)

        assert first == fresh_first
        assert second == fresh_second
        assert first == second, "second run() accumulated state"
        assert first_pages == (fresh_a.page_in_events,
                               fresh_a.page_out_events)
        assert (reused.page_in_events, reused.page_out_events) == \
            (fresh_b.page_in_events, fresh_b.page_out_events)
        assert reused.memory == fresh_b.memory
        assert reused.output == fresh_b.output

    @pytest.mark.parametrize("machine_cls", [Machine, TranslatedMachine],
                             ids=["fast", "translated"])
    def test_rerun_resets_segment_countdown(self, machine_cls):
        # An odd segment size whose countdown is mid-segment at halt: the
        # leftover countdown must not leak into the next run's first segment.
        program = _compile(TestSegmentPaging.SOURCE)
        reused = machine_cls(program, segment_size=999)
        first = reused.run()
        first_events = (reused.page_in_events, reused.page_out_events)
        second = reused.run()
        assert first == second
        assert (reused.page_in_events, reused.page_out_events) == first_events

    @pytest.mark.parametrize("machine_cls", [Machine, TranslatedMachine],
                             ids=["fast", "translated"])
    def test_rerun_after_fault_starts_clean(self, machine_cls):
        source = "fn main() -> int { while (1) { } return 0; }"
        program = _compile(source)
        machine = machine_cls(program, max_instructions=500)
        with pytest.raises(EmulationError):
            machine.run()
        with pytest.raises(EmulationError):
            machine.run()
        assert machine.stats.instructions == 500


class TestUnresolvedTargets:
    """Faulting control transfers must leave identical partial traces."""

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    @pytest.mark.parametrize("body", [
        [_instr("li", "t0", 1), _instr("j", "nowhere")],
        [_instr("li", "t0", 1), _instr("call", "missing")],
        [_instr("li", "t0", 1), _instr("jal", "t1", "nowhere")],
        [_instr("li", "t0", 1), _instr("beqz", "zero", "nowhere")],
        [_instr("li", "t0", 1), _instr("bne", "t0", "zero", "nowhere")],
        [_instr("li", "t0", 1), _instr("ebreak")],
    ], ids=["j", "call", "jal", "beqz-taken", "bne-taken", "ebreak"])
    def test_pre_fault_side_effects_match_reference(self, body, engine):
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", list(body))})
        ref = run_engine("reference", program)
        run = run_engine(engine, program)
        assert isinstance(run.error, EmulationError)
        assert_runs_identical(run, ref, "faulting control transfer")
        if engine in SCALAR_ENGINES:
            for name in ("t0", "t1", "ra"):
                assert run.machine.get(name) == ref.machine.get(name), name

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_malformed_dead_code_does_not_fault_at_decode(self, engine):
        # The reference only inspects operands when an instruction executes;
        # a malformed instruction in a never-called helper must not break
        # decoding (or the run).
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", [
                _instr("li", "a0", 3),
                _instr("jalr", "zero", "ra", 0),
            ]),
            "dead": AssemblyFunction("dead", [
                _instr("add", "t0", "t1"),            # missing an operand
                _instr("mv", "a0", 123),              # non-string register
            ]),
        })
        ref = run_engine("reference", program)
        run = run_engine(engine, program)
        assert_runs_identical(run, ref, "with malformed dead code")
        assert run.stats.return_value == 3

    @pytest.mark.parametrize("machine_cls", [Machine, TranslatedMachine],
                             ids=["fast", "translated"])
    def test_malformed_instruction_faults_only_when_executed(self,
                                                             machine_cls):
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", [
                _instr("li", "t0", 1),
                _instr("add", "t0", "t1"),            # executes: must fault
            ])})
        fast = machine_cls(program)                   # decode must succeed
        ref = ReferenceMachine(program)
        with pytest.raises(ValueError):
            fast.run()
        with pytest.raises(ValueError):
            ref.run()
        # Both counted the li and the faulting add before raising.
        assert fast.stats.instructions == ref.stats.instructions == 2

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_not_taken_branch_to_unknown_label_does_not_fault(self, engine):
        # The reference only resolves a branch label when the branch is
        # taken; a never-taken branch to a bogus label must run to completion.
        body = [
            _instr("li", "t0", 1),
            _instr("beqz", "t0", "nowhere"),
            _instr("bne", "t0", "t0", "nowhere"),
            _instr("li", "a0", 5),
            _instr("jalr", "zero", "ra", 0),
        ]
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", body)})
        ref = run_engine("reference", program)
        run = run_engine(engine, program)
        assert_runs_identical(run, ref, "never-taken unresolved branch")
        assert run.stats.return_value == 5


class TestDecodePipeline:
    def test_decoded_program_cached_per_program(self):
        program = _compile_benchmark("fibonacci")
        assert decode_program(program) is decode_program(program)
        assert Machine(program).decoded is Machine(program).decoded

    def test_translation_cache_shared_across_machines(self):
        # Superblock closures are compiled once per decoded program, not per
        # TranslatedMachine: two machines over one program share the cache.
        program = _compile_benchmark("fibonacci")
        first = TranslatedMachine(program)
        second = TranslatedMachine(program)
        assert first._tcache is second._tcache

    def test_runner_reuses_compiled_programs(self):
        from repro.experiments.profiles import Profile, baseline_profile
        from repro.experiments.runner import BenchmarkRunner

        runner = BenchmarkRunner()
        first = runner.compile("fibonacci", baseline_profile())
        again = runner.compile("fibonacci", baseline_profile())
        assert first is again
        # Content-equal profiles share one compiled (and decoded) program
        # regardless of display name.
        renamed = Profile(name="candidate-0", passes=(), kind="custom")
        assert runner.compile("fibonacci", renamed) is first
        assert runner.compile("fibonacci", baseline_profile(),
                              use_cache=False) is not first

    def test_prepared_immediates_match_reference_semantics(self):
        """Decode-time immediate preparation must be observationally equal to
        the reference's raw-immediate application for every opcode."""
        values = [0, 1, 5, 31, 32, 1234, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFE,
                  0xFFFFFFFF]
        immediates = [-2048, -33, -32, -7, -1, 0, 1, 5, 31, 32, 100, 2047]
        for opcode, (prepare, apply) in _ALU_IMM_DECODED.items():
            raw = ALU_IMM_IMPLS[opcode]
            for a in values:
                for imm in immediates:
                    assert apply(a, prepare(imm)) == raw(a, imm), \
                        f"{opcode}(a={a:#x}, imm={imm})"

    @pytest.mark.parametrize("engine", engine_params(DIFF_ENGINE_NAMES))
    def test_unknown_register_names_get_fresh_slots(self, engine):
        # The reference treats any unknown name as a fresh zero register;
        # the decoder must intern such names instead of rejecting them.
        body = [
            _instr("li", "myreg", 9),
            _instr("mv", "a0", "myreg"),
            _instr("jalr", "zero", "ra", 0),
        ]
        program = AssemblyProgram(functions={
            "main": AssemblyFunction("main", body)})
        ref = run_engine("reference", program)
        run = run_engine(engine, program)
        assert_runs_identical(run, ref, "with interned custom register")
        assert run.stats.return_value == 9
