"""Property-based tests (hypothesis): the frontend/interpreter/emulator agree
with Python's own arithmetic, optimization passes never change behaviour on
randomly generated programs, and randomly ordered pass pipelines behave
identically with and without analysis caching."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import compile_module
from repro.benchmarks import get_benchmark
from repro.emulator import run_program
from repro.frontend import compile_source
from repro.ir import Constant, verify_module, I32
from repro.ir.interpreter import Interpreter, run_module
from repro.ir.printer import format_module
from repro.passes import PassManager, available_passes, run_passes
from repro.passes.utils import fold_binary, fold_icmp

WORD = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    value &= WORD
    return value - (1 << 32) if value >= (1 << 31) else value


small_ints = st.integers(min_value=-1000, max_value=1000)
words = st.integers(min_value=0, max_value=WORD)


class TestScalarSemantics:
    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_fold_binary_matches_interpreter(self, a, b):
        for opcode in ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"):
            assert fold_binary(opcode, a, b) == Interpreter._binop(opcode, a, b)

    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_division_semantics_match_riscv(self, a, b):
        sa, sb = _to_signed(a), _to_signed(b)
        expected = WORD if sb == 0 else (abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0) else -1)) & WORD
        assert fold_binary("sdiv", a, b) == expected

    @given(a=words, b=words)
    @settings(max_examples=200, deadline=None)
    def test_comparisons_are_consistent(self, a, b):
        assert fold_icmp("ult", a, b) == int(a < b)
        assert fold_icmp("slt", a, b) == int(_to_signed(a) < _to_signed(b))
        assert fold_icmp("eq", a, b) == int(a == b)

    @given(value=st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    @settings(max_examples=100, deadline=None)
    def test_constants_wrap_consistently(self, value):
        constant = Constant(value, I32)
        assert constant.value == value & WORD
        assert constant.signed_value == _to_signed(value)


# A tiny expression generator for whole-program differential testing.
@st.composite
def arithmetic_expression(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(0, 200)))
        if choice == 1:
            return "x"
        return "y"
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
    left = draw(arithmetic_expression(depth=depth + 1))
    right = draw(arithmetic_expression(depth=depth + 1))
    return f"({left} {op} {right})"


def python_semantics(expression: str, x: int, y: int) -> int:
    """Evaluate with MiniC/RISC-V semantics (truncating division, wrapping)."""
    def div(a, b):
        if b == 0:
            return -1
        q = abs(a) // abs(b)
        return q if (a < 0) == (b < 0) else -q

    def rem(a, b):
        if b == 0:
            return a
        r = abs(a) % abs(b)
        return r if a >= 0 else -r

    def wrap(v):
        return _to_signed(v & WORD)

    def evaluate(node):
        return node

    # Reuse Python's parser: replace operators with function calls is overkill;
    # instead evaluate with eval() on a transformed expression.
    safe = expression.replace("/", "//DIV//").replace("%", "//REM//")
    # Evaluate manually via a tiny recursive descent on the generated shape:
    # the generator only emits fully parenthesized binary expressions.
    def parse(tokens):
        token = tokens.pop(0)
        if token == "(":
            left = parse(tokens)
            op = tokens.pop(0)
            right = parse(tokens)
            assert tokens.pop(0) == ")"
            if op == "+":
                return wrap(left + right)
            if op == "-":
                return wrap(left - right)
            if op == "*":
                return wrap(left * right)
            if op == "/":
                return wrap(div(left, right))
            if op == "%":
                return wrap(rem(left, right))
            if op == "&":
                return wrap((left & WORD) & (right & WORD))
            if op == "|":
                return wrap((left & WORD) | (right & WORD))
            if op == "^":
                return wrap((left & WORD) ^ (right & WORD))
        if token == "x":
            return x
        if token == "y":
            return y
        return int(token)

    tokens = expression.replace("(", " ( ").replace(")", " ) ").split()
    return parse(tokens)


class TestWholeProgramProperties:
    @given(expression=arithmetic_expression(), x=small_ints, y=small_ints)
    @settings(max_examples=40, deadline=None)
    def test_interpreter_matches_reference_semantics(self, expression, x, y):
        source = f"""
        fn compute(x, y) -> int {{ return {expression}; }}
        fn main() -> int {{ return compute({x}, {y}); }}
        """
        result = run_module(compile_source(source))
        assert result.return_value == python_semantics(expression, x, y)

    @given(expression=arithmetic_expression(), x=small_ints, y=small_ints,
           passes=st.lists(st.sampled_from(["mem2reg", "instcombine", "gvn", "sccp",
                                            "simplifycfg", "early-cse", "dce",
                                            "instsimplify", "adce"]),
                           min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_random_pass_sequences_preserve_semantics(self, expression, x, y, passes):
        source = f"""
        fn compute(x, y) -> int {{ return {expression}; }}
        fn main() -> int {{ return compute({x}, {y}); }}
        """
        module = compile_source(source)
        reference = run_module(module).return_value
        optimized = run_passes(module, passes)
        verify_module(optimized)
        assert run_module(optimized).return_value == reference

    @given(x=small_ints, y=small_ints)
    @settings(max_examples=15, deadline=None)
    def test_emulator_agrees_with_interpreter_on_branchy_code(self, x, y):
        source = f"""
        fn decide(a, b) -> int {{
          if (a < b) {{ return a * 2 + b; }}
          if (a == b) {{ return a - 7; }}
          if (a % 2 == 0 || b < 0) {{ return a / (b + 1000001); }}
          return a ^ b;
        }}
        fn main() -> int {{ return decide({x}, {y}); }}
        """
        module = compile_source(source)
        interpreted = run_module(module).return_value
        emulated = run_program(compile_module(module)).return_value
        assert interpreted == emulated


class TestPipelineOrderFuzz:
    """Seeded pass-order fuzzing of the analysis-caching pass manager.

    25 pipelines drawn uniformly from ``available_passes()`` run over three
    small benchmarks, each through the caching pipeline and through the
    ``--no-analysis-cache`` escape hatch.  Whatever the order — loop passes
    before SSA construction, double inlining, reg2mem in the middle — the two
    must emit byte-identical IR and the result must verify.
    """

    BENCHMARKS = ("fibonacci", "loop-sum", "factorial")
    PIPELINES = 25
    SEED = 0xA11A  # fixed: failures must reproduce

    def _modules(self):
        return {name: compile_source(get_benchmark(name).source,
                                     module_name=name)
                for name in self.BENCHMARKS}

    def test_random_pass_orders_cached_equals_fresh(self):
        rng = random.Random(self.SEED)
        passes = available_passes()
        modules = self._modules()
        for index in range(self.PIPELINES):
            length = rng.randint(2, 8)
            pipeline = [rng.choice(passes) for _ in range(length)]
            for name, module in modules.items():
                cached = module.clone()
                PassManager(pipeline, analysis_cache=True).run(cached)
                fresh = module.clone()
                PassManager(pipeline, analysis_cache=False).run(fresh)
                context = f"pipeline #{index} {pipeline} on {name}"
                assert format_module(cached) == format_module(fresh), \
                    f"cached and fresh IR diverged for {context}"
                verify_module(cached)

    def test_random_pass_orders_preserve_behaviour(self):
        """The fuzzed pipelines must also keep the guest's semantics."""
        rng = random.Random(self.SEED + 1)
        passes = available_passes()
        modules = self._modules()
        references = {name: run_module(module).return_value
                      for name, module in modules.items()}
        for index in range(10):
            length = rng.randint(2, 6)
            pipeline = [rng.choice(passes) for _ in range(length)]
            for name, module in modules.items():
                optimized = module.clone()
                PassManager(pipeline, analysis_cache=True).run(optimized)
                verify_module(optimized)
                assert run_module(optimized).return_value == references[name], \
                    f"pipeline #{index} {pipeline} broke {name}"
