"""Unit tests for the analysis manager's invalidation semantics.

Covers the contract in :mod:`repro.passes.analysis`:

* a no-op pass preserves every cached analysis;
* a mutating pass drops exactly its non-preserved analyses;
* a CFG-preserving mutating pass keeps the CFG-derived analyses alive;
* module passes invalidate precisely the functions they touched;
* the CFG-version safety net recomputes behind an unreported invalidation;
* a mutation that bypasses the IR mutation APIs is caught by the debug-mode
  ``verify_analyses`` cross-check;
* no-op pass runs are skipped at unchanged IR epochs (and resume after a
  mutation);
* pipeline failures carry the failing pass's name, index and function.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import Branch, CondBranch, Function, Module
from repro.passes import PassManager, get_pass
from repro.passes.analysis import AnalysisManager, StaleAnalysisError
from repro.passes.pass_manager import FunctionPass, PassPipelineError

CLEAN_SOURCE = """
fn helper(x) -> int {
  var acc = 0;
  var i;
  for (i = 0; i < x; i = i + 1) { acc = acc + i; }
  return acc;
}
fn main() -> int { return helper(10); }
"""

#: instcombine turns ``x * 2`` into a shift — a change with no CFG effect.
CFG_PRESERVING_SOURCE = """
fn main() -> int {
  var a = 7;
  if (a > 3) { a = a * 2; } else { a = a * 4; }
  return a;
}
"""


def _module(source=CLEAN_SOURCE):
    return compile_source(source, module_name="am-test")


def _prepared(pass_name):
    """A registered pass wired to a fresh caching manager."""
    manager = AnalysisManager()
    pass_ = get_pass(pass_name)
    pass_.analysis = manager
    return pass_, manager


def _swap_a_branch(function):
    """Rewire a conditional branch by direct attribute assignment, bypassing
    the IR mutation APIs (so no version counter moves)."""
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, CondBranch):
            terminator.true_target, terminator.false_target = \
                terminator.false_target, terminator.true_target
            return
    pytest.fail("expected a conditional branch")


class TestInvalidationSemantics:
    def test_noop_pass_preserves_everything(self):
        module = _module()
        pass_, manager = _prepared("dce")  # nothing is dead in this module
        function = module.get_function("main")
        domtree = manager.domtree(function)
        loops = manager.loop_info(function)
        assert not pass_.run(module)
        assert manager.domtree(function) is domtree
        assert manager.loop_info(function) is loops
        assert manager.stats.invalidated == 0

    def test_mutating_pass_drops_non_preserved_analyses(self):
        module = _module()
        pass_, manager = _prepared("simplifycfg")
        assert pass_.preserves == frozenset()
        function = module.get_function("helper")
        domtree = manager.domtree(function)
        assert pass_.run(module)  # merges the -O0 block scaffolding
        assert manager.stats.invalidated > 0
        assert manager.domtree(function) is not domtree

    def test_cfg_preserving_pass_keeps_analyses_alive(self):
        module = _module(CFG_PRESERVING_SOURCE)
        pass_, manager = _prepared("instcombine")
        function = module.get_function("main")
        domtree = manager.domtree(function)
        assert pass_.run(module)  # strength-reduces the multiplications
        # The IR changed but the block graph did not: the dominator tree must
        # have survived (version-aware invalidation).
        assert manager.domtree(function) is domtree
        assert manager.stats.invalidated == 0

    def test_module_pass_invalidates_only_touched_functions(self):
        module = _module()
        manager = AnalysisManager()
        caller = module.get_function("main")
        callee = module.get_function("helper")
        caller_domtree = manager.domtree(caller)
        callee_domtree = manager.domtree(callee)

        # Replicates the PassManager protocol for module passes.
        inline = get_pass("inline")
        inline.analysis = manager
        inline.begin_tracking()
        assert inline.run(module)
        modified = inline.take_modified()
        assert modified == {caller}
        manager.invalidate_functions(modified, inline.preserves)

        assert manager.domtree(callee) is callee_domtree
        assert manager.domtree(caller) is not caller_domtree

    def test_version_safety_net_catches_unreported_mutation(self):
        module = _module()
        manager = AnalysisManager()
        function = module.get_function("helper")
        domtree = manager.domtree(function)
        # Mutate the CFG through the IR APIs but never tell the manager.
        block = function.blocks[0]
        split = function.add_block("net.split", after=block)
        terminator = block.terminator
        target = terminator.successors[0]
        block.replace_successor(target, split)
        split.append(Branch(target))
        # No invalidate() call happened; the drift check must recompute.
        assert manager.domtree(function) is not domtree
        assert manager.stats.drifted >= 1

    def test_stale_cache_is_caught_by_verify_analyses(self):
        module = _module()
        manager = AnalysisManager()
        function = module.get_function("helper")
        manager.domtree(function)
        manager.reachable(function)
        _swap_a_branch(function)  # CFG version never moves
        with pytest.raises(StaleAnalysisError):
            manager.verify_analyses(function)

    def test_debug_mode_checks_on_every_hit(self):
        module = _module()
        manager = AnalysisManager(verify=True)
        function = module.get_function("helper")
        manager.domtree(function)
        _swap_a_branch(function)
        with pytest.raises(StaleAnalysisError):
            manager.domtree(function)

    def test_disabled_manager_always_recomputes(self):
        module = _module()
        manager = AnalysisManager(enabled=False)
        function = module.get_function("helper")
        assert manager.domtree(function) is not manager.domtree(function)
        assert manager.stats.hits == 0
        assert manager.stats.computed >= 2


class TestNoopSkipping:
    def test_noop_pass_is_skipped_at_unchanged_epoch(self):
        module = _module()
        pass_, manager = _prepared("simplifycfg")
        pass_.run(module)          # does its work
        pass_.run(module)          # proves itself a no-op everywhere
        before = manager.stats.skipped
        pass_.run(module)          # third run: skipped per function
        assert manager.stats.skipped == \
            before + len(module.defined_functions())

    def test_mutation_reenables_the_pass(self):
        module = _module(CFG_PRESERVING_SOURCE)
        dce, manager = _prepared("dce")
        dce.run(module)
        dce.run(module)
        skipped = manager.stats.skipped
        dce.run(module)
        assert manager.stats.skipped > skipped
        # Any IR mutation moves the epoch and re-enables the pass.
        instcombine = get_pass("instcombine")
        instcombine.analysis = manager
        assert instcombine.run(module)
        before = manager.stats.skipped
        dce.run(module)
        assert manager.stats.skipped == before  # ran for real again

    def test_module_dependent_passes_are_never_skipped(self):
        module = _module()
        gvn, manager = _prepared("gvn")
        assert not gvn.module_independent
        gvn.run(module)
        gvn.run(module)
        gvn.run(module)
        assert manager.stats.skipped == 0


class TestPipelineErrorContext:
    class _ExplodingPass(FunctionPass):
        name = "exploding-pass"
        description = "raises for the error-context regression test"

        def run_on_function(self, function: Function, module: Module) -> bool:
            if function.name == "helper":
                raise ValueError("boom")
            return False

    def test_pipeline_error_carries_pass_and_function_context(self):
        module = _module()
        manager = PassManager(["dce"])
        manager.add(self._ExplodingPass())
        with pytest.raises(PassPipelineError) as excinfo:
            manager.run(module)
        error = excinfo.value
        # The seed wrapped this in a bare RuntimeError that said only
        # "pass 'exploding-pass' failed: boom" — no slot, no function.
        assert isinstance(error, RuntimeError)
        assert error.pass_name == "exploding-pass"
        assert error.pass_index == 1
        assert error.function_name == "helper"
        assert isinstance(error.__cause__, ValueError)
        message = str(error)
        assert "exploding-pass" in message
        assert "index 1" in message
        assert "helper" in message
