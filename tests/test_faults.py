"""Chaos suite: the engine's fault-tolerance machinery under injected faults.

Every degradation path the engine claims to survive is exercised here through
the deterministic :class:`FaultPlan` harness: transient errors retried,
permanent errors quarantined, hung jobs timed out without stalling their
batch, worker-killing poison jobs bisected out while innocent jobs keep their
results, damaged cache entries degrading to recomputation, and interrupted
campaigns resuming from their journals to the same totals as uninterrupted
runs.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro import cli
from repro.autotuner import GeneticAutotuner
from repro.experiments import BenchmarkRunner, baseline_profile
from repro.experiments.cache import CACHE_SCHEMA_VERSION, MeasurementCache
from repro.experiments.engine import ExperimentEngine
from repro.experiments.faults import (
    FAULT_PLAN_ENV, FaultPlan, FaultSpec, InjectedPermanentError,
    InjectedTransientError, JobFailure, PoisonJobError, RetryPolicy,
    classify_error, fault_point,
)
from repro.experiments.journal import (
    CampaignJournal, JournalMismatch, resolve_journal_path,
)
from repro.fuzz.driver import run_campaign


# -- pool worker entry points (module-level: picklable into fork workers) ------
def _chaos_job(job):
    """Record one execution marker, hit the injection point, return a result."""
    key, value, workdir = job
    if workdir:
        tempfile.mkstemp(prefix=f"{key}.", dir=workdir)
    fault_point("chaos-job", key)
    return value * 2


def _executions(workdir, key) -> int:
    return len(list(Path(workdir).glob(f"{key}.*")))


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("parallel_threshold", 1)
    kwargs.setdefault("use_disk_cache", False)
    return ExperimentEngine(**kwargs)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Fault plans must never leak between tests (or into other suites)."""
    yield
    os.environ.pop(FAULT_PLAN_ENV, None)


class TestRetryPolicy:
    def test_classification(self):
        assert classify_error(InjectedTransientError("x")) == "transient"
        assert classify_error(ConnectionError()) == "transient"
        assert classify_error(TimeoutError()) == "transient"
        assert classify_error(ValueError("deterministic")) == "permanent"
        assert classify_error(ValueError(), (ValueError,)) == "transient"

    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("transient", 1)
        assert policy.should_retry("transient", 2)
        assert not policy.should_retry("transient", 3)
        assert not policy.should_retry("permanent", 1)
        assert policy.should_retry("timeout", 1)
        assert not RetryPolicy(retry_timeouts=False).should_retry("timeout", 1)

    def test_deterministic_jittered_backoff(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0,
                             jitter=0.5, seed=7)
        delays = [policy.delay_for("job-a", attempt)
                  for attempt in range(1, 8)]
        # Deterministic: an identical policy computes identical delays.
        assert delays == [RetryPolicy(base_delay=0.1, backoff=2.0,
                                      max_delay=1.0, jitter=0.5,
                                      seed=7).delay_for("job-a", attempt)
                          for attempt in range(1, 8)]
        # Bounded by the cap, never negative, jitter decorrelates keys.
        assert all(0 <= delay <= 1.0 for delay in delays)
        assert policy.delay_for("job-a", 1) != policy.delay_for("job-b", 1)
        # A different seed reshuffles the jitter.
        other = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0,
                            jitter=0.5, seed=8)
        assert delays != [other.delay_for("job-a", a) for a in range(1, 8)]

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=10.0,
                             jitter=0.0)
        assert policy.delay_for("k", 1) == pytest.approx(0.1)
        assert policy.delay_for("k", 3) == pytest.approx(0.4)


class TestFaultPlan:
    def test_fires_exactly_times_then_disarms(self, tmp_path):
        with FaultPlan([FaultSpec("p", action="transient", times=2)],
                       tmp_path):
            for _ in range(2):
                with pytest.raises(InjectedTransientError):
                    fault_point("p", "any")
            fault_point("p", "any")  # third call: spec exhausted, no raise

    def test_match_glob_and_point_isolation(self, tmp_path):
        with FaultPlan([FaultSpec("p", match="shard-1*",
                                  action="permanent")], tmp_path):
            fault_point("p", "shard-2")     # wrong key
            fault_point("other", "shard-1")  # wrong point
            with pytest.raises(InjectedPermanentError):
                fault_point("p", "shard-12")

    def test_noop_without_plan(self):
        os.environ.pop(FAULT_PLAN_ENV, None)
        fault_point("p", "k")  # must not raise


class TestRetries:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_fault_retried_to_success(self, tmp_path, workers):
        jobs = [("a", 1, str(tmp_path / "runs")), ("b", 2, str(tmp_path / "runs"))]
        (tmp_path / "runs").mkdir()
        engine = _engine(tmp_path, workers=workers,
                         retry_policy=RetryPolicy(max_attempts=3,
                                                  base_delay=0.01))
        with FaultPlan([FaultSpec("chaos-job", match="a",
                                  action="transient", times=2)],
                       tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs)
        assert results == [2, 4]
        assert engine.stats.retries == 2
        assert engine.failures == []
        assert _executions(tmp_path / "runs", "a") == 3
        assert _executions(tmp_path / "runs", "b") == 1

    @pytest.mark.parametrize("workers", [1, 2])
    def test_permanent_fault_not_retried(self, tmp_path, workers):
        (tmp_path / "runs").mkdir()
        jobs = [("a", 1, str(tmp_path / "runs")), ("b", 2, str(tmp_path / "runs"))]
        engine = _engine(tmp_path, workers=workers,
                         retry_policy=RetryPolicy(max_attempts=3,
                                                  base_delay=0.01))
        with FaultPlan([FaultSpec("chaos-job", match="a",
                                  action="permanent", times=5)],
                       tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs, on_error="report",
                                      labels=["a", "b"])
        failure, ok = results
        assert isinstance(failure, JobFailure)
        assert failure.classification == "permanent"
        assert failure.attempts == 1
        assert failure.error_type == "InjectedPermanentError"
        assert "injected permanent fault" in failure.message
        assert ok == 4
        assert engine.stats.retries == 0
        assert engine.stats.errors == 1
        assert _executions(tmp_path / "runs", "a") == 1

    def test_transient_exhaustion_reports_failure(self, tmp_path):
        (tmp_path / "runs").mkdir()
        engine = _engine(tmp_path, workers=1,
                         retry_policy=RetryPolicy(max_attempts=2,
                                                  base_delay=0.01))
        with FaultPlan([FaultSpec("chaos-job", action="transient",
                                  times=10)], tmp_path / "plan"):
            results = engine.map_jobs(
                _chaos_job, [("a", 1, str(tmp_path / "runs"))],
                on_error="report", labels=["a"])
        assert results[0].classification == "transient"
        assert results[0].attempts == 2
        assert engine.stats.retries == 1

    def test_on_error_raise_propagates_original(self, tmp_path):
        engine = _engine(tmp_path, workers=1,
                         retry_policy=RetryPolicy(max_attempts=1))
        with FaultPlan([FaultSpec("chaos-job", action="permanent")],
                       tmp_path / "plan"):
            with pytest.raises(InjectedPermanentError):
                engine.map_jobs(_chaos_job, [("a", 1, ""), ("b", 2, "")])


class TestTimeouts:
    def test_hung_job_times_out_without_stalling_batch(self, tmp_path):
        (tmp_path / "runs").mkdir()
        jobs = [(key, i, str(tmp_path / "runs"))
                for i, key in enumerate(["hang", "b", "c", "d"])]
        engine = _engine(tmp_path, job_timeout=1.0,
                         retry_policy=RetryPolicy(max_attempts=1))
        begin = time.monotonic()
        with FaultPlan([FaultSpec("chaos-job", match="hang", action="hang",
                                  arg=60.0)], tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs, on_error="report",
                                      labels=[j[0] for j in jobs])
        elapsed = time.monotonic() - begin
        assert elapsed < 30, f"hung job stalled the batch for {elapsed:.0f}s"
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.stage == "timeout"
        assert failure.classification == "timeout"
        assert results[1:] == [2, 4, 6]
        assert engine.stats.timeouts == 1
        # Innocent in-flight jobs resubmitted after the watchdog kill still
        # produce results; completed ones were salvaged, never re-run.
        for key in ("b", "c", "d"):
            assert _executions(tmp_path / "runs", key) >= 1

    def test_hang_once_then_retry_succeeds(self, tmp_path):
        jobs = [("hang", 5, ""), ("b", 6, "")]
        engine = _engine(tmp_path, job_timeout=1.0,
                         retry_policy=RetryPolicy(max_attempts=2,
                                                  base_delay=0.01))
        with FaultPlan([FaultSpec("chaos-job", match="hang", action="hang",
                                  arg=60.0, times=1)], tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs)
        assert results == [10, 12]
        assert engine.stats.timeouts == 1
        assert engine.stats.retries >= 1
        assert engine.failures == []

    def test_serial_execution_ignores_timeout(self, tmp_path):
        # Serial jobs cannot be preempted; the budget only governs pools.
        engine = _engine(tmp_path, workers=1, job_timeout=0.05)
        assert engine.map_jobs(_chaos_job, [("a", 1, ""), ("b", 2, "")]) \
            == [2, 4]


class TestPoisonJobs:
    def test_delayed_killer_quarantined_innocents_run_once(self, tmp_path):
        """THE salvage regression: jobs completed before a pool death keep
        their results and are never re-executed by recovery or fallback."""
        (tmp_path / "runs").mkdir()
        keys = ["k0", "k1", "k2", "k3", "k4", "poison"]
        jobs = [(key, i, str(tmp_path / "runs")) for i, key in enumerate(keys)]
        engine = _engine(tmp_path)
        with FaultPlan([FaultSpec("chaos-job", match="poison", action="kill",
                                  arg=1.0, times=10)], tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs, on_error="report",
                                      labels=keys)
        assert results[:5] == [0, 2, 4, 6, 8]
        failure = results[5]
        assert isinstance(failure, JobFailure)
        assert failure.stage == "pool-kill"
        assert failure.classification == "crash"
        assert engine.stats.quarantined == 1
        assert engine.stats.salvaged >= 1
        # The killer waits 1s; the innocents complete (and are salvaged)
        # before the pool dies, so each ran exactly once.
        for key in keys[:-1]:
            assert _executions(tmp_path / "runs", key) == 1, key
        assert engine.stats.errors == 1

    def test_immediate_killer_bisected_out(self, tmp_path):
        (tmp_path / "runs").mkdir()
        keys = [f"k{i}" for i in range(7)] + ["poison"]
        jobs = [(key, i, str(tmp_path / "runs")) for i, key in enumerate(keys)]
        engine = _engine(tmp_path)
        with FaultPlan([FaultSpec("chaos-job", match="poison", action="kill",
                                  times=20)], tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs, on_error="report",
                                      labels=keys)
        assert results[:7] == [0, 2, 4, 6, 8, 10, 12], \
            "innocent jobs must return real results"
        assert isinstance(results[7], JobFailure)
        assert results[7].stage == "pool-kill"
        assert results[7].job == "poison"
        assert engine.stats.quarantined == 1

    def test_on_error_raise_names_the_poison_job(self, tmp_path):
        engine = _engine(tmp_path)
        with FaultPlan([FaultSpec("chaos-job", match="poison", action="kill",
                                  times=20)], tmp_path / "plan"):
            with pytest.raises(PoisonJobError, match="poison"):
                engine.map_jobs(_chaos_job,
                                [("a", 1, ""), ("poison", 2, "")],
                                labels=["a", "poison"])

    def test_serial_fallback_resumes_not_restarts(self, tmp_path, monkeypatch):
        """When no new pool can be built after a crash, the in-process
        fallback picks up the *unresolved* jobs only (the old code re-ran
        the whole batch, double-counting completed work)."""
        (tmp_path / "runs").mkdir()
        keys = ["k0", "k1", "crash1", "crash2"]
        jobs = [(key, i, str(tmp_path / "runs")) for i, key in enumerate(keys)]
        engine = _engine(tmp_path)
        real_ensure = engine._ensure_pool
        pools = []

        def one_pool_only():
            if pools:
                raise OSError("simulated: no further pools available")
            pools.append(1)
            return real_ensure()

        monkeypatch.setattr(engine, "_ensure_pool", one_pool_only)
        # Two delayed killers die together with k0/k1 already salvaged, so
        # recovery has *two* unresolved suspects: bisection asks for a fresh
        # pool, finds none, and the serial fallback takes over.  Each kill
        # spec is single-shot (times=1, claimed on first execution), so the
        # fallback re-runs of the crashers succeed.
        with FaultPlan([FaultSpec("chaos-job", match="crash1", action="kill",
                                  arg=0.7, times=1),
                        FaultSpec("chaos-job", match="crash2", action="kill",
                                  arg=0.7, times=1)], tmp_path / "plan"):
            results = engine.map_jobs(_chaos_job, jobs, labels=keys)
        assert results == [0, 2, 4, 6]
        for key in ("k0", "k1"):
            assert _executions(tmp_path / "runs", key) == 1, \
                f"{key} was re-executed by the serial fallback"


class TestMeasurementFaults:
    def test_transient_measure_job_retried(self, tmp_path):
        engine = _engine(tmp_path, workers=1,
                         retry_policy=RetryPolicy(max_attempts=2,
                                                  base_delay=0.01))
        with FaultPlan([FaultSpec("measure-job", match="fibonacci/*",
                                  action="transient", times=1)],
                       tmp_path / "plan"):
            results = engine.measure_pairs([("fibonacci", baseline_profile())])
        assert results[0].benchmark == "fibonacci"
        assert engine.stats.retries == 1
        assert engine.stats.errors == 0

    def test_measure_failure_report_mode(self, tmp_path):
        engine = _engine(tmp_path, workers=1,
                         retry_policy=RetryPolicy(max_attempts=1))
        with FaultPlan([FaultSpec("measure-job", action="permanent")],
                       tmp_path / "plan"):
            results = engine.measure_pairs([("fibonacci", baseline_profile())],
                                           on_error="report")
        assert isinstance(results[0], JobFailure)
        assert results[0].job == "fibonacci/baseline"
        assert engine.stats.errors == 1

    def test_serial_runner_report_mode(self, tmp_path):
        runner = BenchmarkRunner(max_instructions=10)
        results = runner.measure_pairs([("fibonacci", baseline_profile())],
                                       on_error="report")
        assert isinstance(results[0], JobFailure)
        assert results[0].job == "fibonacci/baseline"
        assert results[0].classification == "permanent"

    def test_corrupted_cache_write_recomputes_next_run(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with FaultPlan([FaultSpec("cache-put", action="corrupt")],
                       tmp_path / "plan"):
            first = ExperimentEngine(cache_dir=cache_dir, workers=1)
            first.measure_pairs([("fibonacci", baseline_profile())])
            assert first.stats.computed == 1
        # The entry was damaged on disk right after the write: the next
        # engine must treat it as a miss, evict it, and recompute.
        second = ExperimentEngine(cache_dir=cache_dir, workers=1)
        results = second.measure_pairs([("fibonacci", baseline_profile())])
        assert results[0].benchmark == "fibonacci"
        assert second.stats.computed == 1
        assert second.stats.disk_hits == 0
        assert second.cache.stats.errors == 1


class TestCacheDamageModes:
    def _seeded_cache(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        measurement = BenchmarkRunner().measure("fibonacci", baseline_profile())
        cache.put("a" * 64, measurement)
        return cache, measurement

    def test_truncated_pickle_is_miss_and_evicted(self, tmp_path):
        cache, _ = self._seeded_cache(tmp_path)
        path = cache.path_for("a" * 64)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get("a" * 64) is None
        assert not path.exists()
        assert cache.stats.errors == 1

    def test_wrong_schema_envelope_is_miss_and_evicted(self, tmp_path):
        cache, measurement = self._seeded_cache(tmp_path)
        path = cache.path_for("a" * 64)
        with open(path, "wb") as handle:
            pickle.dump((CACHE_SCHEMA_VERSION + 1, measurement), handle)
        assert cache.get("a" * 64) is None
        assert not path.exists()

    def test_pre_envelope_entry_is_miss_and_evicted(self, tmp_path):
        # A v1-era entry (bare Measurement, no envelope tuple).
        cache, measurement = self._seeded_cache(tmp_path)
        path = cache.path_for("a" * 64)
        with open(path, "wb") as handle:
            pickle.dump(measurement, handle)
        assert cache.get("a" * 64) is None
        assert not path.exists()

    def test_directory_in_place_of_entry_is_miss(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        path = cache.path_for("b" * 64)
        path.mkdir(parents=True)
        assert cache.get("b" * 64) is None
        assert cache.stats.errors == 1

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root ignores file permission bits")
    def test_unreadable_entry_is_miss(self, tmp_path):
        cache, _ = self._seeded_cache(tmp_path)
        path = cache.path_for("a" * 64)
        path.chmod(0)
        try:
            assert cache.get("a" * 64) is None
            assert cache.stats.errors == 1
        finally:
            if path.exists():
                path.chmod(0o644)

    def test_concurrent_put_get_races_never_observe_torn_entries(self, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        measurement = BenchmarkRunner().measure("fibonacci", baseline_profile())
        stop = time.monotonic() + 1.0
        outcomes = []

        def writer():
            while time.monotonic() < stop:
                cache.put("e" * 64, measurement)

        def reader():
            local = MeasurementCache(tmp_path / "cache")
            while time.monotonic() < stop:
                got = local.get("e" * 64)
                outcomes.append(got is None or
                                got.as_dict() == measurement.as_dict())

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes and all(outcomes), \
            "a reader observed a torn or wrong cache entry"

    def test_verify_scans_and_evicts(self, tmp_path):
        cache, _ = self._seeded_cache(tmp_path)
        bad = cache.path_for("c" * 64)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"garbage")
        report = cache.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt_removed"] == 1
        assert not bad.exists()


class TestJournal:
    FP = {"kind": "test", "param": 1}

    def test_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert journal.open(self.FP) == []
        journal.record({"type": "shard", "shard": 0, "ok": 3})
        journal.record({"type": "shard", "shard": 1, "ok": 2})
        journal.close()
        assert [r["shard"] for r
                in CampaignJournal(tmp_path / "j.jsonl")
                .open(self.FP, resume=True)] == [0, 1]

    def test_mismatch_refuses_resume(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.open(self.FP)
        with pytest.raises(JournalMismatch):
            CampaignJournal(tmp_path / "j.jsonl").open(
                {"kind": "test", "param": 2}, resume=True)

    def test_fresh_run_discards_old_journal(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.open(self.FP)
            journal.record({"type": "shard", "shard": 0})
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            assert journal.open(self.FP, resume=False) == []
        assert CampaignJournal(tmp_path / "j.jsonl") \
            .open(self.FP, resume=True) == []

    def test_torn_tail_is_skipped(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            journal.open(self.FP)
            journal.record({"type": "shard", "shard": 0})
        with open(tmp_path / "j.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"type": "shard", "shard": 1, "resu')  # torn write
        entries = CampaignJournal(tmp_path / "j.jsonl") \
            .open(self.FP, resume=True)
        assert [r["shard"] for r in entries] == [0]

    def test_resolve_journal_path(self, tmp_path):
        explicit = resolve_journal_path(tmp_path / "x.jsonl")
        assert explicit == tmp_path / "x.jsonl"
        named = resolve_journal_path("my-campaign", cache_dir=tmp_path)
        assert named == tmp_path / "journals" / "my-campaign.jsonl"


class TestCampaignResume:
    def test_fuzz_stop_and_resume_matches_fresh_run(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        engine = _engine(tmp_path, workers=1)
        part = run_campaign(12, engine=engine, shard_size=3,
                            journal=journal, stop_after_shards=2)
        assert part.stopped_early and not part.complete
        assert part.executed_shards == 2

        engine = _engine(tmp_path, workers=1)
        resumed = run_campaign(12, engine=engine, shard_size=3,
                               journal=journal, resume=True)
        assert resumed.complete
        assert resumed.resumed_shards == 2

        fresh = run_campaign(12, engine=_engine(tmp_path, workers=1),
                             shard_size=3)
        assert (resumed.ok, resumed.failed) == (fresh.ok, fresh.failed)
        assert resumed.triage.as_dict() == fresh.triage.as_dict()

    def test_fuzz_resume_refuses_different_campaign(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        run_campaign(6, engine=_engine(tmp_path, workers=1), shard_size=3,
                     journal=journal, stop_after_shards=1)
        with pytest.raises(JournalMismatch):
            run_campaign(8, engine=_engine(tmp_path, workers=1), shard_size=3,
                         journal=journal, resume=True)

    def test_quarantined_shard_reported_not_silent(self, tmp_path):
        # A shard whose worker dies must surface as a structured job_failure
        # on the summary (with every other shard still fuzzed), not vanish.
        engine = _engine(tmp_path)
        with FaultPlan([FaultSpec("fuzz-shard", match="3", action="kill",
                                  arg=0.5, times=20)], tmp_path / "plan"):
            summary = run_campaign(12, engine=engine, shard_size=3)
        assert len(summary.job_failures) == 1
        assert summary.job_failures[0]["stage"] == "pool-kill"
        assert not summary.clean
        assert summary.ok + summary.failed == summary.unique_programs - 3

    def test_autotune_resume_reproduces_uninterrupted_search(self, tmp_path):
        engine = _engine(tmp_path, workers=1)
        journal = tmp_path / "tune.jsonl"
        GeneticAutotuner(runner=engine, seed=3, population_size=4) \
            .tune("fibonacci", iterations=4, journal=journal)
        resumed = GeneticAutotuner(runner=engine, seed=3, population_size=4) \
            .tune("fibonacci", iterations=8, journal=journal, resume=True)
        fresh = GeneticAutotuner(runner=engine, seed=3, population_size=4) \
            .tune("fibonacci", iterations=8)
        assert resumed.history == fresh.history
        assert resumed.best_cycles == fresh.best_cycles
        assert resumed.best.passes == fresh.best.passes

    def test_autotune_resume_refuses_different_space(self, tmp_path):
        engine = _engine(tmp_path, workers=1)
        journal = tmp_path / "tune.jsonl"
        GeneticAutotuner(runner=engine, seed=3, population_size=4) \
            .tune("fibonacci", iterations=4, journal=journal)
        with pytest.raises(JournalMismatch):
            GeneticAutotuner(runner=engine, seed=4, population_size=4) \
                .tune("fibonacci", iterations=8, journal=journal, resume=True)


class TestStats:
    def test_engine_stats_as_dict_has_fault_counters(self):
        stats = ExperimentEngine(use_disk_cache=False, workers=1).stats
        payload = stats.as_dict()
        for key in ("retries", "timeouts", "quarantined", "salvaged",
                    "computed", "errors"):
            assert key in payload


class TestCliFaultSurface:
    def _run(self, tmp_path, *argv):
        return cli.main(["--cache-dir", str(tmp_path / "cache"),
                         "--workers", "1", *argv])

    def test_stats_flag_prints_fault_counters(self, tmp_path, capsys):
        assert self._run(tmp_path, "--stats", "measure", "fibonacci") == 0
        err = capsys.readouterr().err
        assert "retries=" in err and "quarantined=" in err
        assert '"salvaged"' in err  # the full JSON block

    def test_cache_subcommand_stats_verify_clear(self, tmp_path, capsys):
        assert self._run(tmp_path, "measure", "fibonacci") == 0
        capsys.readouterr()
        assert self._run(tmp_path, "cache", "stats", "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 1 and report["bytes"] > 0

        # Damage one entry: verify reports (and evicts) it, exit 1.
        cache_root = tmp_path / "cache"
        entry = next(cache_root.glob("*/*.pkl"))
        entry.write_bytes(b"garbage")
        assert self._run(tmp_path, "cache", "verify", "--json") == 1
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt_removed"] == 1

        assert self._run(tmp_path, "cache", "clear", "--json") == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 0

    def test_cache_subcommand_rejects_no_disk_cache(self, tmp_path):
        assert cli.main(["--no-disk-cache", "cache", "stats"]) == 2

    def test_fuzz_journal_resume_cli(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        args = ["--no-disk-cache", "--workers", "1", "fuzz", "--seeds", "6",
                "--shard-size", "2", "--journal", str(journal), "--json"]
        assert cli.main(args + ["--stop-after-shards", "1"]) in (0, 1)
        first = json.loads(capsys.readouterr().out)
        assert first["stopped_early"] and first["executed_shards"] == 1
        assert cli.main(args + ["--resume"]) in (0, 1)
        second = json.loads(capsys.readouterr().out)
        assert second["complete"]
        assert second["resumed_shards"] == 1
        assert second["ok"] + second["failed"] == second["unique_programs"]


class TestSigintEndToEnd:
    def test_interrupted_fuzz_campaign_resumes(self, tmp_path):
        """SIGINT a real `repro fuzz` mid-campaign: exit 130, journal intact,
        --resume completes the remaining shards."""
        journal = tmp_path / "campaign.jsonl"
        env = dict(os.environ, PYTHONPATH="src")
        env.pop(FAULT_PLAN_ENV, None)
        argv = [sys.executable, "-m", "repro", "--no-disk-cache",
                "--workers", "1", "fuzz", "--seeds", "30",
                "--shard-size", "1", "--journal", str(journal), "--json"]
        proc = subprocess.Popen(argv, cwd=Path(__file__).resolve().parent.parent,
                                env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        try:
            # Wait until at least two shards are journaled, then interrupt.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 3:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("campaign never journaled a shard")
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, \
            f"expected exit 130, got {proc.returncode}\nstderr: {stderr[-2000:]}"
        assert "--resume" in stderr
        interrupted = json.loads(stdout)
        assert interrupted["interrupted"] and not interrupted["complete"]

        # Resume in-process and finish the campaign.
        rc = cli.main(["--no-disk-cache", "--workers", "1", "fuzz",
                       "--seeds", "30", "--shard-size", "1",
                       "--journal", str(journal), "--resume", "--json"])
        assert rc in (0, 1)

    def test_resumed_totals_match_uninterrupted(self, tmp_path, capsys):
        # The cheap equivalence check: a stop/resume pair must report the
        # same verdicts as one uninterrupted run (same seeds, same shards).
        journal = tmp_path / "j.jsonl"
        base = ["--no-disk-cache", "--workers", "1", "fuzz", "--seeds", "14",
                "--shard-size", "2", "--json"]
        assert cli.main(base + ["--journal", str(journal),
                                "--stop-after-shards", "3"]) in (0, 1)
        capsys.readouterr()
        assert cli.main(base + ["--journal", str(journal), "--resume"]) in (0, 1)
        resumed = json.loads(capsys.readouterr().out)
        assert cli.main(base) in (0, 1)
        uninterrupted = json.loads(capsys.readouterr().out)
        for key in ("ok", "failed", "unique_programs", "triage"):
            assert resumed[key] == uninterrupted[key], key
