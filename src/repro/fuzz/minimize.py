"""Delta-debugging reducer for differential-harness failures.

Given a MiniC source whose :func:`~repro.fuzz.harness.run_differential` report
is not ok, the reducer greedily applies AST-level shrinking edits — drop a
statement, drop a whole function/global/constant, hoist a loop or branch body,
replace a subexpression with one of its operands or with ``0``, shrink an
integer literal — keeping an edit only when the reduced program *still fails
at the same stage*.  The result is a minimal reproducer suitable for the
regression corpus.

The reducer re-parses the failing source into the frontend AST (rather than
reusing the generator's AST), so it works on any failing program — generated,
corpus, or hand-written.  Reduction runs the harness with
``verify_each_pass=True`` so pipeline failures name the guilty pass, and with
a tightened interpreter budget so edits that introduce an infinite loop are
rejected quickly instead of burning the full campaign budget.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional

from ..frontend import ast_nodes as ast
from ..frontend import parse
from ..frontend.errors import FrontendError
from .genprog import render_program
from .harness import DifferentialReport, HarnessConfig, run_differential

#: Hard ceiling on harness evaluations per reduction (each evaluation compiles
#: and runs the program under every oracle, so this bounds wall-clock).
DEFAULT_MAX_EVALS = 400


@dataclass
class MinimizeResult:
    """Outcome of one reduction."""

    source: str
    report: DifferentialReport
    evals: int
    #: Number of edits that were kept (0 means the input was already minimal).
    applied_edits: int

    def as_dict(self) -> dict:
        return {"source": self.source, "report": self.report.as_dict(),
                "evals": self.evals, "applied_edits": self.applied_edits}


# -- edit enumeration ---------------------------------------------------------
#
# Each candidate edit is a thunk bound to nodes of one deep copy of the AST;
# applying it mutates that copy in place.  Edits are re-enumerated from scratch
# after every accepted edit, so positions never go stale.

Edit = Callable[[], None]


def _shrunk_values(value: int) -> list[int]:
    """Candidate replacement literals, most aggressive first."""
    candidates = []
    for v in (0, 1, value // 2, -value if value < 0 else None):
        if v is not None and v != value and v not in candidates:
            candidates.append(v)
    return candidates


def _expr_edits(holder, attr: str, expr) -> Iterator[Edit]:
    """Edits that replace ``holder.<attr>`` (== expr) with something smaller."""

    def set_to(node):
        def apply():
            setattr(holder, attr, node)
        return apply

    if isinstance(expr, ast.NumberExpr):
        for v in _shrunk_values(expr.value):
            yield set_to(ast.NumberExpr(value=v))
        return
    # Replacing any compound expression with 0 is the biggest single cut.
    yield set_to(ast.NumberExpr(value=0))
    if isinstance(expr, ast.BinaryExpr):
        yield set_to(expr.lhs)
        yield set_to(expr.rhs)
    elif isinstance(expr, ast.UnaryExpr):
        yield set_to(expr.operand)
    elif isinstance(expr, ast.CallExpr):
        for arg in expr.args:
            yield set_to(arg)
    elif isinstance(expr, ast.IndexExpr):
        yield from _expr_edits(expr, "index", expr.index)
        return
    # Recurse into the children that stay in place.
    for child_attr in ("lhs", "rhs", "operand", "index"):
        child = getattr(expr, child_attr, None)
        if child is not None:
            yield from _expr_edits(expr, child_attr, child)
    for i, arg in enumerate(getattr(expr, "args", ())):
        def set_arg(idx, node):
            def apply():
                expr.args[idx] = node
            return apply
        for v in ([ast.NumberExpr(value=0)] if not isinstance(arg, ast.NumberExpr)
                  else [ast.NumberExpr(value=v) for v in _shrunk_values(arg.value)]):
            yield set_arg(i, v)


def _drop_from(body: list, index: int) -> Edit:
    def apply():
        del body[index]
    return apply


def _hoist(body: list, index: int, inner: list) -> Edit:
    def apply():
        body[index:index + 1] = copy.deepcopy(inner)
    return apply


def _stmt_edits(body: list, index: int) -> Iterator[Edit]:
    stmt = body[index]
    yield _drop_from(body, index)
    if isinstance(stmt, ast.IfStmt):
        if stmt.then_body:
            yield _hoist(body, index, stmt.then_body)
        if stmt.else_body:
            yield _hoist(body, index, stmt.else_body)
    elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
        if stmt.body:
            yield _hoist(body, index, stmt.body)


def _body_edits(body: list, structural: bool) -> Iterator[Edit]:
    for index, stmt in enumerate(body):
        if structural:
            yield from _stmt_edits(body, index)
        else:
            # Expression shrinking inside the statement.
            for attr in ("init", "value", "condition", "step", "expr"):
                child = getattr(stmt, attr, None)
                if isinstance(child, ast.Node):
                    yield from _expr_edits(stmt, attr, child)
        if isinstance(stmt, ast.IfStmt):
            yield from _body_edits(stmt.then_body, structural)
            yield from _body_edits(stmt.else_body, structural)
        elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
            yield from _body_edits(stmt.body, structural)


def enumerate_edits(program: ast.Program) -> Iterator[Edit]:
    """Every candidate shrinking edit on ``program``, coarsest first.

    Ordering matters: the greedy loop retries from the first ordinal after
    every accepted edit, so whole-function and whole-statement drops come
    before any literal shrinking — one accepted structural edit removes more
    source than a hundred constant tweaks.
    """
    # Whole-function drops first: one accepted drop removes the most source.
    for index, function in enumerate(program.functions):
        if function.name != "main":
            yield _drop_from(program.functions, index)
    for index in range(len(program.globals)):
        yield _drop_from(program.globals, index)
    for index in range(len(program.constants)):
        yield _drop_from(program.constants, index)
    # NOTE: deliberately no "shrink a global's element count" edit.  Generated
    # programs keep array accesses in bounds with literal masks (`& (size-1)`)
    # baked into the indexing expressions; halving the count without rewriting
    # every mask turns the reduced program into an out-of-bounds witness whose
    # divergence has a different root cause than the failure being reduced.
    for function in program.functions:
        yield from _body_edits(function.body, structural=True)
    for function in program.functions:
        yield from _body_edits(function.body, structural=False)


# -- reduction loop -----------------------------------------------------------
def reduction_config(config: Optional[HarnessConfig],
                     baseline_steps: int) -> HarnessConfig:
    """The tightened harness configuration used while reducing.

    ``verify_each_pass`` localizes pipeline breakage to a pass; the interpreter
    budget drops to a small multiple of the original program's cost so a
    reduction edit that un-terminates the program fails fast.
    """
    config = config or HarnessConfig()
    budget = min(config.interp_max_steps,
                 max(20 * max(baseline_steps, 1), 200_000))
    return replace(config, verify_each_pass=True, interp_max_steps=budget)


def minimize_source(source: str, report: DifferentialReport,
                    config: Optional[HarnessConfig] = None,
                    max_evals: int = DEFAULT_MAX_EVALS) -> MinimizeResult:
    """Shrink ``source`` while it keeps failing at ``report.stage``.

    Returns the smallest failing variant found within the evaluation budget
    (possibly the input itself), along with its fresh harness report.
    """
    if report.ok:
        raise ValueError("cannot minimize a passing program")
    target_stage = report.stage
    reduce_cfg = reduction_config(config, report.interp_steps)

    try:
        program = parse(source)
    except FrontendError:
        # Unparseable input (a "frontend" failure at the lexer level): there
        # is no AST to reduce — hand the input back untouched.
        return MinimizeResult(source=source, report=report, evals=0,
                              applied_edits=0)

    best_source = source
    best_report = report
    evals = 0
    applied = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        # Count edits on a scratch copy, then try each ordinal on fresh copies
        # so a rejected edit never leaks mutations into the next attempt.
        n_edits = sum(1 for _ in enumerate_edits(copy.deepcopy(program)))
        for ordinal in range(n_edits):
            if evals >= max_evals:
                break
            candidate = copy.deepcopy(program)
            for i, edit in enumerate(enumerate_edits(candidate)):
                if i == ordinal:
                    edit()
                    break
            else:
                continue
            try:
                candidate_source = render_program(candidate)
            except Exception:  # noqa: BLE001 - malformed intermediate AST
                continue
            if candidate_source == best_source:
                continue
            evals += 1
            verdict = run_differential(candidate_source, reduce_cfg)
            if not verdict.ok and verdict.stage == target_stage:
                program = candidate
                best_source = candidate_source
                best_report = verdict
                applied += 1
                progress = True
                break  # re-enumerate: earlier ordinals may now apply
    return MinimizeResult(source=best_source, report=best_report,
                          evals=evals, applied_edits=applied)
