"""Campaign driver: fan differential-fuzz shards out through the engine.

A campaign is ``--seeds N`` programs: the parent process *generates* them all
(generation is cheap and must stay deterministic), dedupes content-identical
sources (different seeds occasionally collapse to the same tiny program),
shards the survivors into batches of :data:`DEFAULT_SHARD_SIZE`, and submits
the shards through :meth:`ExperimentEngine.map_jobs` — the same process pool,
threshold, retry/timeout/quarantine and serial-fallback machinery the
measurement batches use.

Campaigns are **resumable**: given a journal, every completed shard is
checkpointed to an append-only :class:`~repro.experiments.journal.
CampaignJournal` as it finishes, so a ``SIGINT`` (or a crash, or a deliberate
``stop_after_shards`` budget) loses nothing — ``resume=True`` replays the
journal and submits only the missing shards, and the merged summary matches
an uninterrupted run.  A shard whose worker the engine had to quarantine
comes back as a structured :class:`~repro.experiments.faults.JobFailure`
record on the summary instead of poisoning the campaign.

Failures flow back to the parent, are optionally minimized (serially — real
failures are rare and the reducer wants the whole machine), bucketed by
first-divergent stage via :mod:`repro.fuzz.triage`, and persisted as
replayable ``.repro`` reproducers when a corpus directory is given.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..experiments.engine import ExperimentEngine
from ..experiments.faults import JobFailure, fault_point
from ..experiments.journal import CampaignJournal
from ..experiments.profiles import Profile
from .genprog import MODES, generate_program
from .harness import DifferentialReport, HarnessConfig, run_differential
from .minimize import minimize_source
from .triage import TriageSummary, triage_failure, write_corpus

#: Programs per engine job; big enough to amortize pool dispatch, small
#: enough that a campaign keeps every worker busy — and that an interrupted
#: campaign loses at most one shard of progress per worker.
DEFAULT_SHARD_SIZE = 16

#: Ceiling on minimizations per campaign (each costs hundreds of harness runs).
DEFAULT_MAX_MINIMIZE = 25


def _run_shard(job) -> list:
    """Pool worker entry point: run one shard of programs through the harness.

    ``job`` is ``(entries, config_kwargs)`` with ``entries`` a tuple of
    ``(seed, mode, source)`` triples; returns ``(seed, mode, report)`` per
    entry.  Everything crossing the process boundary is picklable.
    """
    entries, config_kwargs = job
    fault_point("fuzz-shard", str(entries[0][0]))
    config = HarnessConfig(**config_kwargs)
    return [(seed, mode, run_differential(source, config))
            for seed, mode, source in entries]


@dataclass
class CampaignSummary:
    """Machine-readable result of one fuzzing campaign."""

    seeds: int
    start_seed: int
    mode: str
    generated: int = 0
    #: Distinct sources actually fuzzed (after content dedupe).
    unique_programs: int = 0
    duplicate_programs: int = 0
    ok: int = 0
    failed: int = 0
    minimized: int = 0
    #: Failures skipped by the per-campaign minimization ceiling.
    minimize_skipped: int = 0
    triage: TriageSummary = field(default_factory=TriageSummary)
    corpus_files: list = field(default_factory=list)
    engine_stats: Optional[dict] = None
    #: Shards the engine gave up on (quarantined/exhausted), as dicts.
    job_failures: list = field(default_factory=list)
    #: Shards replayed from the journal instead of re-executed.
    resumed_shards: int = 0
    #: Shards actually executed (and journaled) by this invocation.
    executed_shards: int = 0
    #: True when a KeyboardInterrupt cut the campaign short (resumable).
    interrupted: bool = False
    #: True when a ``stop_after_shards`` budget left shards unsubmitted.
    stopped_early: bool = False
    journal_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        """No divergences *and* no shard the engine had to give up on."""
        return self.failed == 0 and not self.job_failures

    @property
    def complete(self) -> bool:
        """Every shard ran to a verdict (nothing left to resume)."""
        return not self.interrupted and not self.stopped_early

    def as_dict(self) -> dict:
        return {"seeds": self.seeds, "start_seed": self.start_seed,
                "mode": self.mode, "generated": self.generated,
                "unique_programs": self.unique_programs,
                "duplicate_programs": self.duplicate_programs,
                "ok": self.ok, "failed": self.failed, "clean": self.clean,
                "complete": self.complete,
                "minimized": self.minimized,
                "minimize_skipped": self.minimize_skipped,
                "triage": self.triage.as_dict(),
                "corpus_files": list(self.corpus_files),
                "engine_stats": self.engine_stats,
                "job_failures": list(self.job_failures),
                "resumed_shards": self.resumed_shards,
                "executed_shards": self.executed_shards,
                "interrupted": self.interrupted,
                "stopped_early": self.stopped_early,
                "journal_path": self.journal_path}


def _mode_for(mode: str, index: int) -> str:
    if mode == "all":
        return MODES[index % len(MODES)]
    return mode


def _shard(entries: Sequence, size: int) -> list:
    return [tuple(entries[i:i + size]) for i in range(0, len(entries), size)]


def _campaign_fingerprint(seeds: int, start_seed: int, mode: str,
                          shard_size: int, config: HarnessConfig,
                          entries: list) -> dict:
    """Everything that shapes a campaign's work, for journal identity.

    Includes a digest of the generated programs themselves, so a generator
    change (new repro version, new modes) invalidates old journals even when
    the seed range looks identical.
    """
    blob = "\x1e".join(f"{seed}\x1f{prog_mode}\x1f{source}"
                       for seed, prog_mode, source in entries)
    return {
        "kind": "fuzz", "seeds": seeds, "start_seed": start_seed,
        "mode": mode, "shard_size": shard_size,
        "profiles": [p.name if isinstance(p, Profile) else str(p)
                     for p in config.profiles],
        "interp_max_steps": config.interp_max_steps,
        "emulator_max_instructions": config.emulator_max_instructions,
        "verify_each_pass": config.verify_each_pass,
        "programs": hashlib.sha256(blob.encode("utf-8")).hexdigest(),
    }


def run_campaign(seeds: int, mode: str = "all", start_seed: int = 0,
                 engine: Optional[ExperimentEngine] = None,
                 config: Optional[HarnessConfig] = None,
                 minimize: bool = False,
                 corpus_dir=None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 max_minimize: int = DEFAULT_MAX_MINIMIZE,
                 journal=None, resume: bool = False,
                 stop_after_shards: Optional[int] = None) -> CampaignSummary:
    """Run one differential-fuzzing campaign; see the module docstring.

    ``mode`` is a generator mode name or ``"all"`` (round-robin over every
    mode).  ``engine=None`` builds a private engine with the default worker
    count and no disk cache (fuzz results are not measurements; nothing here
    is worth persisting in the measurement cache).

    ``journal`` (a path or :class:`CampaignJournal`) checkpoints every
    completed shard; with ``resume=True`` previously journaled shards are
    replayed instead of re-run (the journal must belong to this exact
    campaign, else :class:`~repro.experiments.journal.JournalMismatch`).
    ``stop_after_shards`` bounds how many shards this invocation submits —
    the journaled remainder is picked up by the next ``resume`` run.  A
    ``KeyboardInterrupt`` mid-campaign is absorbed: the summary comes back
    with ``interrupted=True`` and every already-finished shard intact.
    """
    if mode != "all" and mode not in MODES:
        raise ValueError(f"unknown fuzz mode {mode!r}; "
                         f"choose from {', '.join(MODES)} or 'all'")
    config = config or HarnessConfig()
    summary = CampaignSummary(seeds=seeds, start_seed=start_seed, mode=mode)

    # Generate + dedupe parent-side so every shard works on distinct programs.
    seen_sources: set[str] = set()
    entries: list[tuple[int, str, str]] = []
    sources: dict[int, str] = {}
    for i in range(seeds):
        seed = start_seed + i
        program = generate_program(seed, mode=_mode_for(mode, i))
        summary.generated += 1
        if program.source in seen_sources:
            summary.duplicate_programs += 1
            continue
        seen_sources.add(program.source)
        entries.append((seed, program.mode, program.source))
        sources[seed] = program.source
    summary.unique_programs = len(entries)

    shards = _shard(entries, max(1, shard_size))
    failures: list[tuple[int, str, DifferentialReport]] = []

    def absorb(results) -> None:
        """Fold one shard's (seed, mode, report) triples into the summary."""
        for seed, prog_mode, report in results:
            if report.ok:
                summary.ok += 1
            else:
                summary.failed += 1
                failures.append((seed, prog_mode, report))

    if journal is not None and not isinstance(journal, CampaignJournal):
        journal = CampaignJournal(journal)
    completed: set[int] = set()
    if journal is not None:
        summary.journal_path = str(journal.path)
        fingerprint = _campaign_fingerprint(seeds, start_seed, mode,
                                            shard_size, config, entries)
        for record in journal.open(fingerprint, resume=resume):
            if record.get("type") != "shard" or record.get("shard") in completed:
                continue
            completed.add(record["shard"])
            summary.resumed_shards += 1
            if "failure" in record:
                summary.job_failures.append(record["failure"])
            else:
                absorb((seed, prog_mode, DifferentialReport(**report_dict))
                       for seed, prog_mode, report_dict in record["results"])

    missing = [index for index in range(len(shards)) if index not in completed]
    to_submit = missing if stop_after_shards is None \
        else missing[:max(0, stop_after_shards)]
    summary.stopped_early = len(to_submit) < len(missing)

    own_engine = engine is None
    if own_engine:
        engine = ExperimentEngine(use_disk_cache=False)
    try:
        jobs = [(shards[index], config.as_kwargs()) for index in to_submit]

        def on_result(position: int, outcome) -> None:
            # Journal + absorb each shard the moment it finishes, so an
            # interrupt (or a later crash) never loses completed work.
            index = to_submit[position]
            summary.executed_shards += 1
            if isinstance(outcome, JobFailure):
                record = {"type": "shard", "shard": index,
                          "failure": outcome.as_dict()}
                summary.job_failures.append(outcome.as_dict())
            else:
                record = {"type": "shard", "shard": index,
                          "results": [[seed, prog_mode, report.as_dict()]
                                      for seed, prog_mode, report in outcome]}
                absorb(outcome)
            if journal is not None:
                journal.record(record)

        if jobs:
            try:
                engine.map_jobs(_run_shard, jobs, on_error="report",
                                labels=[f"shard-{index}" for index in to_submit],
                                on_result=on_result)
            except KeyboardInterrupt:
                summary.interrupted = True
    finally:
        if own_engine:
            engine.close()
        if journal is not None:
            journal.close()
    summary.engine_stats = engine.stats.as_dict()

    # Minimize + triage in the parent (failures are rare; the reducer is the
    # expensive part and wants deterministic, serial execution).  Runs on
    # whatever completed, so even an interrupted campaign reports its catch.
    for seed, prog_mode, report in failures:
        source = sources[seed]
        if minimize:
            if summary.minimized < max_minimize:
                reduced = minimize_source(source, report, config)
                source, report = reduced.source, reduced.report
                summary.minimized += 1
            else:
                summary.minimize_skipped += 1
        summary.triage.add(triage_failure(source, report,
                                          seed=seed, mode=prog_mode))

    if corpus_dir is not None and summary.triage.unique_failures:
        all_failures = [f for bucket in summary.triage.buckets.values()
                        for f in bucket]
        summary.corpus_files = write_corpus(all_failures, corpus_dir)
    return summary
