"""Campaign driver: fan differential-fuzz shards out through the engine.

A campaign is ``--seeds N`` programs: the parent process *generates* them all
(generation is cheap and must stay deterministic), dedupes content-identical
sources (different seeds occasionally collapse to the same tiny program),
shards the survivors into batches of :data:`DEFAULT_SHARD_SIZE`, and submits
the shards through :meth:`ExperimentEngine.map_jobs` — the same process pool,
threshold, and serial-fallback machinery the measurement batches use.

Failures flow back to the parent, are optionally minimized (serially — real
failures are rare and the reducer wants the whole machine), bucketed by
first-divergent stage via :mod:`repro.fuzz.triage`, and persisted as
replayable ``.repro`` reproducers when a corpus directory is given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..experiments.engine import ExperimentEngine
from .genprog import MODES, generate_program
from .harness import HarnessConfig, run_differential
from .minimize import minimize_source
from .triage import TriageSummary, triage_failure, write_corpus

#: Programs per engine job; big enough to amortize pool dispatch, small
#: enough that a campaign keeps every worker busy.
DEFAULT_SHARD_SIZE = 16

#: Ceiling on minimizations per campaign (each costs hundreds of harness runs).
DEFAULT_MAX_MINIMIZE = 25


def _run_shard(job) -> list:
    """Pool worker entry point: run one shard of programs through the harness.

    ``job`` is ``(entries, config_kwargs)`` with ``entries`` a tuple of
    ``(seed, mode, source)`` triples; returns ``(seed, mode, report)`` per
    entry.  Everything crossing the process boundary is picklable.
    """
    entries, config_kwargs = job
    config = HarnessConfig(**config_kwargs)
    return [(seed, mode, run_differential(source, config))
            for seed, mode, source in entries]


@dataclass
class CampaignSummary:
    """Machine-readable result of one fuzzing campaign."""

    seeds: int
    start_seed: int
    mode: str
    generated: int = 0
    #: Distinct sources actually fuzzed (after content dedupe).
    unique_programs: int = 0
    duplicate_programs: int = 0
    ok: int = 0
    failed: int = 0
    minimized: int = 0
    #: Failures skipped by the per-campaign minimization ceiling.
    minimize_skipped: int = 0
    triage: TriageSummary = field(default_factory=TriageSummary)
    corpus_files: list = field(default_factory=list)
    engine_stats: Optional[dict] = None

    @property
    def clean(self) -> bool:
        return self.failed == 0

    def as_dict(self) -> dict:
        return {"seeds": self.seeds, "start_seed": self.start_seed,
                "mode": self.mode, "generated": self.generated,
                "unique_programs": self.unique_programs,
                "duplicate_programs": self.duplicate_programs,
                "ok": self.ok, "failed": self.failed, "clean": self.clean,
                "minimized": self.minimized,
                "minimize_skipped": self.minimize_skipped,
                "triage": self.triage.as_dict(),
                "corpus_files": list(self.corpus_files),
                "engine_stats": self.engine_stats}


def _mode_for(mode: str, index: int) -> str:
    if mode == "all":
        return MODES[index % len(MODES)]
    return mode


def _shard(entries: Sequence, size: int) -> list:
    return [tuple(entries[i:i + size]) for i in range(0, len(entries), size)]


def run_campaign(seeds: int, mode: str = "all", start_seed: int = 0,
                 engine: Optional[ExperimentEngine] = None,
                 config: Optional[HarnessConfig] = None,
                 minimize: bool = False,
                 corpus_dir=None,
                 shard_size: int = DEFAULT_SHARD_SIZE,
                 max_minimize: int = DEFAULT_MAX_MINIMIZE) -> CampaignSummary:
    """Run one differential-fuzzing campaign; see the module docstring.

    ``mode`` is a generator mode name or ``"all"`` (round-robin over every
    mode).  ``engine=None`` builds a private engine with the default worker
    count and no disk cache (fuzz results are not measurements; nothing here
    is worth persisting in the measurement cache).
    """
    if mode != "all" and mode not in MODES:
        raise ValueError(f"unknown fuzz mode {mode!r}; "
                         f"choose from {', '.join(MODES)} or 'all'")
    config = config or HarnessConfig()
    summary = CampaignSummary(seeds=seeds, start_seed=start_seed, mode=mode)

    # Generate + dedupe parent-side so every shard works on distinct programs.
    seen_sources: set[str] = set()
    entries: list[tuple[int, str, str]] = []
    sources: dict[int, str] = {}
    for i in range(seeds):
        seed = start_seed + i
        program = generate_program(seed, mode=_mode_for(mode, i))
        summary.generated += 1
        if program.source in seen_sources:
            summary.duplicate_programs += 1
            continue
        seen_sources.add(program.source)
        entries.append((seed, program.mode, program.source))
        sources[seed] = program.source
    summary.unique_programs = len(entries)

    own_engine = engine is None
    if own_engine:
        engine = ExperimentEngine(use_disk_cache=False)
    try:
        jobs = [(shard, config.as_kwargs())
                for shard in _shard(entries, max(1, shard_size))]
        failures: list[tuple[int, str, object]] = []
        for shard_result in engine.map_jobs(_run_shard, jobs):
            for seed, prog_mode, report in shard_result:
                if report.ok:
                    summary.ok += 1
                else:
                    summary.failed += 1
                    failures.append((seed, prog_mode, report))
    finally:
        if own_engine:
            engine.close()
    summary.engine_stats = engine.stats.as_dict()

    # Minimize + triage in the parent (failures are rare; the reducer is the
    # expensive part and wants deterministic, serial execution).
    for seed, prog_mode, report in failures:
        source = sources[seed]
        if minimize:
            if summary.minimized < max_minimize:
                reduced = minimize_source(source, report, config)
                source, report = reduced.source, reduced.report
                summary.minimized += 1
            else:
                summary.minimize_skipped += 1
        summary.triage.add(triage_failure(source, report,
                                          seed=seed, mode=prog_mode))

    if corpus_dir is not None and summary.triage.unique_failures:
        all_failures = [f for bucket in summary.triage.buckets.values()
                        for f in bucket]
        summary.corpus_files = write_corpus(all_failures, corpus_dir)
    return summary
