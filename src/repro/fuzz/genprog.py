"""Structured MiniC program generation for differential fuzzing.

:func:`generate_program` is a seeded, typed AST sampler over
:mod:`repro.frontend.ast_nodes`: it builds a whole-program AST (globals,
constants, helper functions, ``main``) and renders it to MiniC source text.
Every generated program is **valid by construction**:

* **terminating** — every ``for``/``while`` loop has a protected counter with
  a constant trip count, recursion decrements a depth parameter that is
  masked to a small range at every call site, and the call graph between
  helpers is acyclic;
* **free of undefined behaviour** — array indices are masked to the
  (power-of-two) array size, every scalar is initialized at declaration,
  local arrays are zero-filled before first use, and variable reads are
  only generated inside the lexical scope of the declaration (so no path
  reads an uninitialized stack slot).  Division by zero, shifts and signed
  overflow are all well-defined 32-bit RISC-V semantics in MiniC;
* **observable** — ``main`` threads a checksum accumulator through the
  computation, folds every global and top-level local array into it, prints
  it and returns it, so memory-state miscompiles surface in the output.

Weighted *modes* steer the sampler toward the constructs most likely to
stress a given compiler layer; each mode also force-plants its signature
constructs so coverage does not depend on the dice:

=============  =============================================================
loop-heavy     nested ``for``/``while`` loops (unrolling, LICM, loop passes)
call-heavy     many helpers, inline hints, bounded recursion (inliner, tail
               calls, call lowering)
pointer-heavy  global + local arrays, masked index stores/loads (GEP
               folding, SROA, store-to-load forwarding, regalloc of bases)
branchy-int    deep if/else chains, short-circuit ``&&``/``||``, compares
               (SCCP, jump threading, branch lowering)
mixed          an even blend of all of the above
=============  =============================================================

The same ``(seed, mode)`` pair always yields the identical AST and source —
the fuzz driver, the delta-debugging reducer and the regression corpus all
rely on that determinism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast

#: The generator's sampling modes ("mixed" blends the four specialized ones).
MODES = ("loop-heavy", "call-heavy", "pointer-heavy", "branchy-int", "mixed")

#: Power-of-two array sizes so indices can be masked in-bounds with ``&``.
_ARRAY_SIZES = (8, 16, 32)

#: Constants the sampler draws from (boundary values well represented).
_INTERESTING = (
    0, 1, 2, 3, 4, 5, 7, 8, 13, 15, 16, 31, 32, 63, 100, 127, 255, 256,
    1000, 1023, 4096, 65535, 2**31 - 1, -1, -2, -3, -7, -16, -100, -255,
    -(2**31),
)

_ARITH_OPS = ("+", "-", "*", "/", "%", "&", "|", "^")
_SHIFT_OPS = ("<<", ">>", ">>>")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_UNARY_OPS = ("-", "~", "!")

#: Per-mode statement-kind weights.
_STMT_WEIGHTS = {
    "loop-heavy":    {"decl": 2, "assign": 3, "store": 1, "if": 1, "for": 5,
                      "while": 3, "call": 1, "print": 1},
    "call-heavy":    {"decl": 2, "assign": 3, "store": 1, "if": 2, "for": 2,
                      "while": 1, "call": 6, "print": 1},
    "pointer-heavy": {"decl": 2, "assign": 2, "store": 6, "if": 1, "for": 3,
                      "while": 1, "call": 1, "print": 1},
    "branchy-int":   {"decl": 3, "assign": 4, "store": 1, "if": 6, "for": 2,
                      "while": 1, "call": 1, "print": 1},
    "mixed":         {"decl": 2, "assign": 3, "store": 2, "if": 3, "for": 3,
                      "while": 2, "call": 3, "print": 1},
}

#: Per-mode expression-kind weights.
_EXPR_WEIGHTS = {
    "loop-heavy":    {"arith": 5, "shift": 1, "cmp": 1, "logic": 1,
                      "unary": 1, "index": 2, "call": 1},
    "call-heavy":    {"arith": 4, "shift": 1, "cmp": 1, "logic": 1,
                      "unary": 1, "index": 1, "call": 4},
    "pointer-heavy": {"arith": 4, "shift": 1, "cmp": 1, "logic": 1,
                      "unary": 1, "index": 5, "call": 1},
    "branchy-int":   {"arith": 3, "shift": 2, "cmp": 4, "logic": 4,
                      "unary": 2, "index": 1, "call": 1},
    "mixed":         {"arith": 4, "shift": 1, "cmp": 2, "logic": 2,
                      "unary": 1, "index": 2, "call": 2},
}

#: Soft dynamic-cost ceilings (in rough interpreter steps) that keep every
#: generated program far inside the harness's interpretation budget.
_MAIN_COST_LIMIT = 60_000
_HELPER_COST_LIMIT = 4_000
#: Maximum product of enclosing loop trip counts.
_TRIP_LIMIT = 2_048
#: Depth bound every recursive call site is masked to (``n & 15``).
_RECURSION_MASK = 15


@dataclass(frozen=True)
class GeneratedProgram:
    """One sampled program: the AST and its rendered MiniC source."""

    seed: int
    mode: str
    ast: ast.Program
    source: str


@dataclass
class _Helper:
    """What call sites need to know about an already-generated function."""

    name: str
    n_params: int
    cost: int
    recursive: bool = False
    inline: bool = False


@dataclass
class _Array:
    name: str
    size: int


def _pick_weighted(rng: random.Random, weights: dict[str, int]) -> str:
    total = sum(weights.values())
    roll = rng.random() * total
    for kind, weight in weights.items():
        roll -= weight
        if roll < 0:
            return kind
    return next(iter(weights))


class _FunctionGen:
    """Generates one function body under scope/termination/cost discipline."""

    def __init__(self, rng: random.Random, mode: str, name: str,
                 params: list[str], helpers: list[_Helper],
                 globals_: list[_Array], constants: list[str],
                 cost_limit: int, allow_calls: bool = True):
        self.rng = rng
        self.mode = mode
        self.name = name
        self.helpers = helpers
        self.globals = globals_
        self.constants = constants
        self.cost_limit = cost_limit
        self.allow_calls = allow_calls
        #: Lexical scopes: only names in an open scope may be read/assigned,
        #: which guarantees every read is dominated by the initialization.
        self.scopes: list[list[str]] = [list(params)]
        #: Loop counters of enclosing loops: readable, never assignable.
        self.protected: set[str] = set()
        self.local_arrays: list[_Array] = []
        self.fresh_counter = 0
        #: Product of enclosing loop trip counts.
        self.trip = 1
        #: Rough dynamic cost (interpreter steps) of one call of this body.
        self.cost = 0
        self.prints_left = 2

    # -- scope helpers -------------------------------------------------------
    def fresh(self, prefix: str) -> str:
        self.fresh_counter += 1
        return f"{prefix}{self.fresh_counter}"

    def visible_scalars(self) -> list[str]:
        return [name for scope in self.scopes for name in scope]

    def assignable_scalars(self) -> list[str]:
        return [name for name in self.visible_scalars()
                if name not in self.protected]

    def charge(self, steps: int) -> None:
        self.cost += steps * self.trip

    def exhausted(self) -> bool:
        return self.cost >= self.cost_limit

    # -- expressions ---------------------------------------------------------
    def number(self) -> ast.NumberExpr:
        if self.rng.random() < 0.7:
            value = self.rng.choice(_INTERESTING)
        else:
            value = self.rng.randint(-(2**31), 2**31 - 1)
        return ast.NumberExpr(value=value)

    def leaf(self) -> ast.Node:
        choices: list[ast.Node] = [self.number()]
        scalars = self.visible_scalars()
        if scalars:
            choices.append(ast.VarExpr(name=self.rng.choice(scalars)))
            choices.append(ast.VarExpr(name=self.rng.choice(scalars)))
        if self.constants and self.rng.random() < 0.3:
            choices.append(ast.VarExpr(name=self.rng.choice(self.constants)))
        return self.rng.choice(choices)

    def masked_index(self, array: _Array, depth: int) -> ast.Node:
        """An in-bounds index: ``(expr) & (size - 1)`` (size is a power of 2)."""
        return ast.BinaryExpr(op="&", lhs=self.expr(depth),
                              rhs=ast.NumberExpr(value=array.size - 1))

    def array_read(self, depth: int) -> ast.Node:
        arrays = self.globals + self.local_arrays
        if not arrays:
            return self.leaf()
        array = self.rng.choice(arrays)
        self.charge(3)
        return ast.IndexExpr(name=array.name,
                             index=self.masked_index(array, depth - 1))

    def call_expr(self, depth: int) -> ast.Node:
        """A call to an already-generated helper, if the budget allows one."""
        if not self.allow_calls:
            return self.leaf()
        affordable = [h for h in self.helpers
                      if self.cost + h.cost * self.trip < self.cost_limit]
        if not affordable:
            return self.leaf()
        helper = self.rng.choice(affordable)
        self.charge(helper.cost + 4)
        args = [self.expr(depth - 1) for _ in range(helper.n_params)]
        if helper.recursive:
            # The first parameter is the recursion depth: mask it small so
            # neither the guest nor the (recursive) IR interpreter blows up.
            args[0] = ast.BinaryExpr(op="&", lhs=args[0],
                                     rhs=ast.NumberExpr(value=_RECURSION_MASK))
        return ast.CallExpr(callee=helper.name, args=args)

    def expr(self, depth: int) -> ast.Node:
        if depth <= 0 or self.rng.random() < 0.2 or self.exhausted():
            return self.leaf()
        kind = _pick_weighted(self.rng, _EXPR_WEIGHTS[self.mode])
        self.charge(1)
        if kind == "arith":
            return ast.BinaryExpr(op=self.rng.choice(_ARITH_OPS),
                                  lhs=self.expr(depth - 1),
                                  rhs=self.expr(depth - 1))
        if kind == "shift":
            # Shift amounts are masked to [0, 31]: MiniC inherits RISC-V's
            # 5-bit shift semantics, but keeping the amount in range avoids
            # pinning the fuzzer's verdicts on that corner in every program.
            if self.rng.random() < 0.5:
                amount: ast.Node = ast.NumberExpr(value=self.rng.randint(0, 31))
            else:
                amount = ast.BinaryExpr(op="&", lhs=self.expr(depth - 1),
                                        rhs=ast.NumberExpr(value=31))
            return ast.BinaryExpr(op=self.rng.choice(_SHIFT_OPS),
                                  lhs=self.expr(depth - 1), rhs=amount)
        if kind == "cmp":
            return ast.BinaryExpr(op=self.rng.choice(_CMP_OPS),
                                  lhs=self.expr(depth - 1),
                                  rhs=self.expr(depth - 1))
        if kind == "logic":
            return ast.BinaryExpr(op=self.rng.choice(("&&", "||")),
                                  lhs=self.expr(depth - 1),
                                  rhs=self.expr(depth - 1))
        if kind == "unary":
            return ast.UnaryExpr(op=self.rng.choice(_UNARY_OPS),
                                 operand=self.expr(depth - 1))
        if kind == "index":
            return self.array_read(depth)
        return self.call_expr(depth)

    # -- statements ----------------------------------------------------------
    def stmt_decl(self) -> ast.Node:
        name = self.fresh("v")
        self.charge(3)
        # The initializer is generated *before* the name enters scope, so a
        # declaration can never read its own (uninitialized) storage.
        init = self.expr(2)
        self.scopes[-1].append(name)
        return ast.VarDecl(name=name, init=init)

    def stmt_assign(self) -> ast.Node:
        targets = self.assignable_scalars()
        if not targets:
            return self.stmt_decl()
        self.charge(3)
        return ast.Assign(target=ast.VarExpr(name=self.rng.choice(targets)),
                          value=self.expr(2))

    def stmt_store(self) -> ast.Node:
        arrays = self.globals + self.local_arrays
        if not arrays:
            return self.stmt_assign()
        array = self.rng.choice(arrays)
        self.charge(4)
        target = ast.IndexExpr(name=array.name,
                               index=self.masked_index(array, 1))
        return ast.Assign(target=target, value=self.expr(2))

    def stmt_print(self) -> ast.Node:
        self.prints_left -= 1
        self.charge(3)
        return ast.ExprStmt(expr=ast.CallExpr(callee="print",
                                              args=[self.expr(2)]))

    def stmt_call(self) -> ast.Node:
        call = self.call_expr(2)
        if not isinstance(call, ast.CallExpr):
            return self.stmt_assign()
        return ast.ExprStmt(expr=call)

    def stmt_if(self, depth: int) -> ast.Node:
        condition = self.expr(2)
        then_body = self.block(depth + 1, max_stmts=3)
        else_body = (self.block(depth + 1, max_stmts=2)
                     if self.rng.random() < 0.5 else [])
        return ast.IfStmt(condition=condition, then_body=then_body,
                          else_body=else_body)

    def trip_count(self, depth: int) -> int:
        ceiling = max(2, min(16 >> depth, _TRIP_LIMIT // self.trip))
        return self.rng.randint(1, ceiling)

    def stmt_for(self, depth: int) -> ast.Node:
        bound = self.trip_count(depth)
        counter = self.fresh("i")
        init = ast.VarDecl(name=counter, init=ast.NumberExpr(value=0))
        condition = ast.BinaryExpr(op="<", lhs=ast.VarExpr(name=counter),
                                   rhs=ast.NumberExpr(value=bound))
        step = ast.Assign(target=ast.VarExpr(name=counter),
                          value=ast.BinaryExpr(op="+",
                                               lhs=ast.VarExpr(name=counter),
                                               rhs=ast.NumberExpr(value=1)))
        self.scopes.append([counter])
        self.protected.add(counter)
        self.trip *= bound
        self.charge(4)
        body = self.block(depth + 1, max_stmts=4, in_loop=True,
                          allow_continue=True)
        self.trip //= bound
        self.protected.discard(counter)
        self.scopes.pop()
        return ast.ForStmt(init=init, condition=condition, step=step, body=body)

    def stmt_while(self, depth: int) -> list[ast.Node]:
        """``var w = N; while (w > 0) { w = w - 1; ... }`` — returns 2 stmts.

        The decrement is the *first* body statement so a generated
        ``continue`` can never skip it (MiniC ``continue`` jumps straight to
        the condition in a ``while`` loop).
        """
        bound = self.trip_count(depth)
        counter = self.fresh("w")
        self.scopes[-1].append(counter)
        decl = ast.VarDecl(name=counter, init=ast.NumberExpr(value=bound))
        condition = ast.BinaryExpr(op=">", lhs=ast.VarExpr(name=counter),
                                   rhs=ast.NumberExpr(value=0))
        decrement = ast.Assign(
            target=ast.VarExpr(name=counter),
            value=ast.BinaryExpr(op="-", lhs=ast.VarExpr(name=counter),
                                 rhs=ast.NumberExpr(value=1)))
        self.protected.add(counter)
        self.trip *= bound
        self.charge(4)
        body = [decrement] + self.block(depth + 1, max_stmts=3, in_loop=True,
                                        allow_continue=True)
        self.trip //= bound
        self.protected.discard(counter)
        return [decl, ast.WhileStmt(condition=condition, body=body)]

    def block(self, depth: int, max_stmts: int, in_loop: bool = False,
              allow_continue: bool = False) -> list[ast.Node]:
        self.scopes.append([])
        statements: list[ast.Node] = []
        weights = dict(_STMT_WEIGHTS[self.mode])
        if depth >= 3:  # no further nesting
            for kind in ("if", "for", "while"):
                weights.pop(kind, None)
        for _ in range(self.rng.randint(1, max_stmts)):
            if self.exhausted():
                break
            kind = _pick_weighted(self.rng, weights)
            if kind == "print" and self.prints_left <= 0:
                kind = "assign"
            if kind == "decl":
                statements.append(self.stmt_decl())
            elif kind == "assign":
                statements.append(self.stmt_assign())
            elif kind == "store":
                statements.append(self.stmt_store())
            elif kind == "print":
                statements.append(self.stmt_print())
            elif kind == "call":
                statements.append(self.stmt_call())
            elif kind == "if":
                statements.append(self.stmt_if(depth))
            elif kind == "for":
                statements.append(self.stmt_for(depth))
            elif kind == "while":
                statements.extend(self.stmt_while(depth))
        # Occasionally end a loop body with break/continue (never earlier, so
        # no generated statement is trivially unreachable).
        if in_loop and statements and self.rng.random() < 0.15:
            if allow_continue and self.rng.random() < 0.5:
                statements.append(ast.ContinueStmt())
            else:
                statements.append(ast.BreakStmt())
        self.scopes.pop()
        return statements

    # -- whole-function assembly ---------------------------------------------
    def declare_local_array(self) -> list[ast.Node]:
        """Declare a local array and zero-fill it before any read.

        The fill loop is mandatory: the IR interpreter hands out fresh
        zeroed memory per ``alloca`` while the emulator reuses stack slots,
        so an *uninitialized* read is exactly the kind of false divergence
        the generator must never produce.
        """
        size = self.rng.choice(_ARRAY_SIZES[:2])
        name = self.fresh("arr")
        array = _Array(name=name, size=size)
        counter = self.fresh("fi")
        fill = ast.ForStmt(
            init=ast.VarDecl(name=counter, init=ast.NumberExpr(value=0)),
            condition=ast.BinaryExpr(op="<", lhs=ast.VarExpr(name=counter),
                                     rhs=ast.NumberExpr(value=size)),
            step=ast.Assign(target=ast.VarExpr(name=counter),
                            value=ast.BinaryExpr(
                                op="+", lhs=ast.VarExpr(name=counter),
                                rhs=ast.NumberExpr(value=1))),
            body=[ast.Assign(
                target=ast.IndexExpr(name=name,
                                     index=ast.VarExpr(name=counter)),
                value=ast.NumberExpr(value=0))])
        self.charge(size * 4)
        self.local_arrays.append(array)
        return [ast.VarDecl(name=name, array_size=size), fill]


class _ProgramGen:
    """Samples a whole program: globals, constants, helpers, then ``main``."""

    def __init__(self, seed: int, mode: str):
        if mode not in MODES:
            raise ValueError(f"unknown generator mode {mode!r}; "
                             f"expected one of {', '.join(MODES)}")
        self.seed = seed
        self.mode = mode
        self.rng = random.Random(seed)
        self.globals: list[_Array] = []
        self.constants: list[str] = []
        self.helpers: list[_Helper] = []

    def generate(self) -> ast.Program:
        program = ast.Program()
        self._gen_globals(program)
        self._gen_constants(program)
        self._gen_helpers(program)
        program.functions.append(self._gen_main())
        return program

    # -- top-level pieces ----------------------------------------------------
    def _gen_globals(self, program: ast.Program) -> None:
        count = self.rng.randint(1, 3)
        if self.mode == "pointer-heavy":
            count = max(count, 2)
        for index in range(count):
            size = self.rng.choice(_ARRAY_SIZES)
            initializer = [self.rng.choice(_INTERESTING) for _ in range(size)]
            self.globals.append(_Array(name=f"g{index}", size=size))
            program.globals.append(ast.GlobalDecl(name=f"g{index}", count=size,
                                                  initializer=initializer))

    def _gen_constants(self, program: ast.Program) -> None:
        for index in range(self.rng.randint(0, 2)):
            value = self.rng.choice(_INTERESTING)
            name = f"C{index}"
            self.constants.append(name)
            program.constants.append(ast.ConstDecl(name=name, value=value))

    def _gen_recursive_helper(self, name: str) -> ast.FunctionDecl:
        """``fn name(n, acc) -> int`` that recurses on ``n - 1`` to a base case."""
        gen = _FunctionGen(self.rng, self.mode, name, ["n", "acc"],
                           self.helpers, self.globals, self.constants,
                           cost_limit=250, allow_calls=False)
        # ``n`` is the termination measure: the random body must not reassign
        # it, or ``rec(n - 1, ...)`` stops making progress toward the guard.
        gen.protected.add("n")
        guard = ast.IfStmt(
            condition=ast.BinaryExpr(op="<=", lhs=ast.VarExpr(name="n"),
                                     rhs=ast.NumberExpr(value=0)),
            then_body=[ast.ReturnStmt(value=ast.VarExpr(name="acc"))])
        body: list[ast.Node] = [guard]
        body.extend(gen.block(1, max_stmts=2))
        recursive_call = ast.CallExpr(
            callee=name,
            args=[ast.BinaryExpr(op="-", lhs=ast.VarExpr(name="n"),
                                 rhs=ast.NumberExpr(value=1)),
                  gen.expr(2)])
        body.append(ast.ReturnStmt(
            value=ast.BinaryExpr(op=self.rng.choice(("+", "^", "-")),
                                 lhs=recursive_call, rhs=gen.expr(1))))
        cost = (gen.cost + 20) * (_RECURSION_MASK + 1)
        self.helpers.append(_Helper(name=name, n_params=2, cost=cost,
                                    recursive=True))
        return ast.FunctionDecl(name=name, params=[ast.Param(name="n"),
                                                   ast.Param(name="acc")],
                                returns_value=True, body=body)

    def _gen_plain_helper(self, name: str) -> ast.FunctionDecl:
        n_params = self.rng.randint(1, 3)
        params = [f"p{i}" for i in range(n_params)]
        inline = self.rng.random() < 0.25
        gen = _FunctionGen(self.rng, self.mode, name, params, self.helpers,
                           self.globals, self.constants,
                           cost_limit=_HELPER_COST_LIMIT)
        body = gen.block(1, max_stmts=4)
        body.append(ast.ReturnStmt(value=gen.expr(2)))
        self.helpers.append(_Helper(name=name, n_params=n_params,
                                    cost=gen.cost + 20, inline=inline))
        return ast.FunctionDecl(name=name,
                                params=[ast.Param(name=p) for p in params],
                                returns_value=True, body=body,
                                inline_always=inline)

    def _gen_helpers(self, program: ast.Program) -> None:
        count = self.rng.randint(1, 3)
        recursive = 0
        if self.mode == "call-heavy":
            count = max(count, 3)
            recursive = self.rng.randint(1, 2)
        elif self.rng.random() < 0.3:
            recursive = 1
        for index in range(count):
            program.functions.append(self._gen_plain_helper(f"f{index}"))
        for index in range(recursive):
            program.functions.append(self._gen_recursive_helper(f"rec{index}"))

    # -- main ----------------------------------------------------------------
    def _forced_statements(self, gen: _FunctionGen) -> list[ast.Node]:
        """Plant each mode's signature constructs unconditionally."""
        forced: list[ast.Node] = []
        if self.mode == "loop-heavy":
            forced.append(gen.stmt_for(0))
            forced.extend(gen.stmt_while(0))
        elif self.mode == "call-heavy":
            for helper in list(gen.helpers):
                call = gen.call_expr(1)
                if isinstance(call, ast.CallExpr):
                    forced.append(ast.Assign(
                        target=ast.VarExpr(name="acc"),
                        value=ast.BinaryExpr(op="^",
                                             lhs=ast.VarExpr(name="acc"),
                                             rhs=call)))
        elif self.mode == "pointer-heavy":
            forced.extend(gen.declare_local_array())
            forced.append(gen.stmt_store())
            forced.append(gen.stmt_store())
        elif self.mode == "branchy-int":
            chain = ast.IfStmt(
                condition=ast.BinaryExpr(op="&&", lhs=gen.expr(2),
                                         rhs=gen.expr(2)),
                then_body=[gen.stmt_assign()],
                else_body=[ast.IfStmt(
                    condition=ast.BinaryExpr(op="||", lhs=gen.expr(2),
                                             rhs=gen.expr(2)),
                    then_body=[gen.stmt_assign()],
                    else_body=[gen.stmt_assign()])])
            forced.append(chain)
        return forced

    def _gen_main(self) -> ast.FunctionDecl:
        gen = _FunctionGen(self.rng, self.mode, "main", [], self.helpers,
                           self.globals, self.constants,
                           cost_limit=_MAIN_COST_LIMIT)
        body: list[ast.Node] = [
            ast.VarDecl(name="acc",
                        init=ast.NumberExpr(value=self.rng.choice(_INTERESTING)))
        ]
        gen.scopes[0].append("acc")
        if self.mode in ("pointer-heavy", "mixed") and self.rng.random() < 0.8:
            body.extend(gen.declare_local_array())
        body.extend(self._forced_statements(gen))
        body.extend(gen.block(0, max_stmts=6))
        body.extend(self._checksum_epilogue(gen))
        body.append(ast.ExprStmt(expr=ast.CallExpr(callee="print",
                                                   args=[ast.VarExpr(name="acc")])))
        body.append(ast.ReturnStmt(value=ast.VarExpr(name="acc")))
        return ast.FunctionDecl(name="main", params=[], returns_value=True,
                                body=body)

    def _checksum_epilogue(self, gen: _FunctionGen) -> list[ast.Node]:
        """Fold every array into ``acc`` so memory effects are observable."""
        statements: list[ast.Node] = []
        for array in self.globals + gen.local_arrays:
            counter = gen.fresh("cs")
            update = ast.Assign(
                target=ast.VarExpr(name="acc"),
                value=ast.BinaryExpr(
                    op="^",
                    lhs=ast.BinaryExpr(op="*", lhs=ast.VarExpr(name="acc"),
                                       rhs=ast.NumberExpr(value=31)),
                    rhs=ast.IndexExpr(name=array.name,
                                      index=ast.VarExpr(name=counter))))
            statements.append(ast.ForStmt(
                init=ast.VarDecl(name=counter, init=ast.NumberExpr(value=0)),
                condition=ast.BinaryExpr(op="<", lhs=ast.VarExpr(name=counter),
                                         rhs=ast.NumberExpr(value=array.size)),
                step=ast.Assign(target=ast.VarExpr(name=counter),
                                value=ast.BinaryExpr(
                                    op="+", lhs=ast.VarExpr(name=counter),
                                    rhs=ast.NumberExpr(value=1))),
                body=[update]))
        return statements


# -- rendering ----------------------------------------------------------------
def _render_int(value: int) -> str:
    """A constant usable in any context (negatives via ``0 - n``: MiniC has
    no negative literals, and ``0 - 2147483648`` round-trips INT_MIN)."""
    if value < 0:
        return f"(0 - {-value})"
    return str(value)


def render_expr(expr: ast.Node) -> str:
    """Render an expression fully parenthesized (precedence-proof)."""
    if isinstance(expr, ast.NumberExpr):
        return _render_int(expr.value)
    if isinstance(expr, ast.VarExpr):
        return expr.name
    if isinstance(expr, ast.IndexExpr):
        return f"{expr.name}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.UnaryExpr):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryExpr):
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    if isinstance(expr, ast.CallExpr):
        return f"{expr.callee}({', '.join(render_expr(a) for a in expr.args)})"
    raise TypeError(f"cannot render expression {type(expr).__name__}")


def _render_simple(stmt: ast.Node) -> str:
    """A statement without its trailing ';' (for ``for``-clauses)."""
    if isinstance(stmt, ast.VarDecl):
        if stmt.array_size is not None:
            return f"var {stmt.name}[{stmt.array_size}]"
        if stmt.init is None:
            return f"var {stmt.name}"
        return f"var {stmt.name} = {render_expr(stmt.init)}"
    if isinstance(stmt, ast.Assign):
        return f"{render_expr(stmt.target)} = {render_expr(stmt.value)}"
    if isinstance(stmt, ast.ExprStmt):
        return render_expr(stmt.expr)
    raise TypeError(f"cannot render {type(stmt).__name__} in a for-clause")


def _render_stmt(stmt: ast.Node, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ExprStmt)):
        out.append(f"{pad}{_render_simple(stmt)};")
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {render_expr(stmt.value)};")
    elif isinstance(stmt, ast.BreakStmt):
        out.append(f"{pad}break;")
    elif isinstance(stmt, ast.ContinueStmt):
        out.append(f"{pad}continue;")
    elif isinstance(stmt, ast.IfStmt):
        out.append(f"{pad}if ({render_expr(stmt.condition)}) {{")
        for s in stmt.then_body:
            _render_stmt(s, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}}} else {{")
            for s in stmt.else_body:
                _render_stmt(s, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.WhileStmt):
        out.append(f"{pad}while ({render_expr(stmt.condition)}) {{")
        for s in stmt.body:
            _render_stmt(s, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.ForStmt):
        init = _render_simple(stmt.init) if stmt.init is not None else ""
        condition = render_expr(stmt.condition) if stmt.condition is not None else ""
        step = _render_simple(stmt.step) if stmt.step is not None else ""
        out.append(f"{pad}for ({init}; {condition}; {step}) {{")
        for s in stmt.body:
            _render_stmt(s, indent + 1, out)
        out.append(f"{pad}}}")
    else:
        raise TypeError(f"cannot render statement {type(stmt).__name__}")


def render_program(program: ast.Program) -> str:
    """Render a program AST back to parseable MiniC source text."""
    out: list[str] = []
    for const in program.constants:
        out.append(f"const {const.name} = {_render_int(const.value)};")
    for decl in program.globals:
        if decl.initializer is not None:
            values = ", ".join(_render_int(v) for v in decl.initializer)
            out.append(f"global {decl.name}[{decl.count}] = {{{values}}};")
        elif decl.count != 1:
            out.append(f"global {decl.name}[{decl.count}];")
        else:
            out.append(f"global {decl.name};")
    for function in program.functions:
        out.append("")
        params = ", ".join(p.name for p in function.params)
        prefix = "inline " if function.inline_always else ""
        suffix = " -> int" if function.returns_value else ""
        out.append(f"{prefix}fn {function.name}({params}){suffix} {{")
        for stmt in function.body:
            _render_stmt(stmt, 1, out)
        out.append("}")
    return "\n".join(out) + "\n"


def generate_program(seed: int, mode: str = "mixed") -> GeneratedProgram:
    """Sample one valid, terminating, UB-free MiniC program.

    The same ``(seed, mode)`` always produces the identical program.
    """
    program = _ProgramGen(seed, mode).generate()
    return GeneratedProgram(seed=seed, mode=mode, ast=program,
                            source=render_program(program))
