"""Failure bucketing and the on-disk reproducer corpus.

A failure's **bucket** is its first-divergent stage (see
:data:`repro.fuzz.harness.STAGES`); its **fingerprint** hashes the stage
together with the (minimized) source, so two seeds that reduce to the same
reproducer dedupe into one corpus entry.

Reproducers persist as ``.repro`` files: a MiniC source prefixed with
``// key: value`` header comments (the MiniC lexer treats ``//`` as a line
comment, so every ``.repro`` file is itself directly compilable and replayable
through the harness — which is exactly what ``tests/test_fuzz_regressions.py``
does to the checked-in corpus under ``tests/corpus/``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .harness import DifferentialReport


def failure_fingerprint(stage: str, source: str) -> str:
    """Content hash identifying one (stage, reproducer) equivalence class."""
    digest = hashlib.sha256()
    digest.update(stage.encode())
    digest.update(b"\0")
    digest.update(source.encode())
    return digest.hexdigest()[:12]


@dataclass
class TriagedFailure:
    """One bucketed failure, ready to persist."""

    stage: str
    fingerprint: str
    source: str
    report: DifferentialReport
    seed: Optional[int] = None
    mode: Optional[str] = None

    @property
    def filename(self) -> str:
        return f"{self.stage}-{self.fingerprint}.repro"

    def as_dict(self) -> dict:
        return {"stage": self.stage, "fingerprint": self.fingerprint,
                "seed": self.seed, "mode": self.mode,
                "detail": self.report.detail, "profile": self.report.profile,
                "file": self.filename}


@dataclass
class TriageSummary:
    """Aggregate view of one campaign's failures."""

    #: stage -> list of triaged failures (deduped by fingerprint).
    buckets: dict = field(default_factory=dict)
    duplicates: int = 0

    def add(self, failure: TriagedFailure) -> bool:
        """Record a failure; returns False when its fingerprint is a dupe."""
        bucket = self.buckets.setdefault(failure.stage, [])
        if any(f.fingerprint == failure.fingerprint for f in bucket):
            self.duplicates += 1
            return False
        bucket.append(failure)
        return True

    @property
    def unique_failures(self) -> int:
        return sum(len(b) for b in self.buckets.values())

    def as_dict(self) -> dict:
        return {"unique_failures": self.unique_failures,
                "duplicates": self.duplicates,
                "buckets": {stage: [f.as_dict() for f in failures]
                            for stage, failures in sorted(self.buckets.items())}}


def triage_failure(source: str, report: DifferentialReport,
                   seed: Optional[int] = None,
                   mode: Optional[str] = None) -> TriagedFailure:
    """Bucket one harness failure by stage + source fingerprint."""
    if report.ok:
        raise ValueError("cannot triage a passing program")
    return TriagedFailure(stage=report.stage,
                          fingerprint=failure_fingerprint(report.stage, source),
                          source=source, report=report, seed=seed, mode=mode)


# -- .repro serialization -----------------------------------------------------
_HEADER_PREFIX = "// "


def format_repro(failure: TriagedFailure) -> str:
    """The replayable ``.repro`` file body for one triaged failure."""
    header = {
        "repro": "1",
        "stage": failure.stage,
        "fingerprint": failure.fingerprint,
        "profile": failure.report.profile or "",
        "detail": failure.report.detail.replace("\n", " "),
    }
    if failure.seed is not None:
        header["seed"] = str(failure.seed)
    if failure.mode is not None:
        header["mode"] = str(failure.mode)
    lines = [f"{_HEADER_PREFIX}{key}: {value}" for key, value in header.items()]
    return "\n".join(lines) + "\n\n" + failure.source.rstrip("\n") + "\n"


def parse_repro(text: str) -> tuple[dict, str]:
    """Split a ``.repro`` file into (header dict, MiniC source).

    The source part includes everything after the leading header comment
    block; because headers are comments, passing the *whole* file to the
    compiler works too — this split exists so replay tooling can read the
    expected stage.
    """
    header: dict = {}
    lines = text.splitlines()
    body_start = 0
    for i, line in enumerate(lines):
        if line.startswith(_HEADER_PREFIX) and ": " in line:
            key, _, value = line[len(_HEADER_PREFIX):].partition(": ")
            header[key.strip()] = value
            body_start = i + 1
        elif line.strip() == "" and not header:
            body_start = i + 1
        else:
            break
    source = "\n".join(lines[body_start:]).lstrip("\n")
    return header, source


def write_corpus(failures: Iterable[TriagedFailure], corpus_dir) -> list[str]:
    """Persist every failure as a ``.repro`` file; returns written paths."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    written = []
    for failure in failures:
        path = corpus / failure.filename
        path.write_text(format_repro(failure))
        written.append(str(path))
    return written


def load_corpus(corpus_dir) -> list[tuple[str, dict, str]]:
    """Read every ``.repro`` under ``corpus_dir`` as (path, header, source)."""
    corpus = Path(corpus_dir)
    entries = []
    if not corpus.is_dir():
        return entries
    for path in sorted(corpus.glob("*.repro")):
        header, source = parse_repro(path.read_text())
        entries.append((str(path), header, source))
    return entries
