"""The cross-stage differential oracle harness.

One generated (or corpus) MiniC program is pushed through every independent
executable semantics the repository has, and the first stage whose behaviour
diverges is reported:

``frontend``
    the program fails to parse / codegen / verify (a generator bug — still
    bucketed, never silently dropped);
``step-limit``
    the IR interpreter exhausted its step budget on the *unoptimized*
    module (:class:`~repro.ir.interpreter.StepLimitExceeded` tells us which
    function was running and how many steps executed);
``pipeline``
    the pass pipeline crashed, produced IR the verifier rejects, or the
    analysis-cached pipeline and the ``--no-analysis-cache`` fresh pipeline
    produced different IR bytes;
``passes``
    the optimized module's IR-interpreter behaviour differs from the
    unoptimized module's (a semantic miscompile inside the pass pipeline);
``backend-seed`` / ``backend-opt``
    the named backend's compiled guest, replayed on the fast emulator,
    disagrees with the IR interpreter;
``emulator``
    the fast table-dispatch emulator and the seed reference interpreter
    disagree on outputs, memory or :class:`TraceStats` for the same guest.

Every check runs under **both** paper profiles (``-O3`` and the zkVM-aware
``-O3-zkvm``), so the cost-model-specific backend paths are both exercised.
With ``verify_each_pass=True`` (the reducer's configuration) the pipeline is
additionally re-run one pass at a time with the IR verifier between every
pass, so a verification failure names the exact pass that introduced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..backend import compile_module
from ..emulator import Machine, ReferenceMachine, TranslatedMachine
from ..experiments.profiles import Profile, profile_by_name, zkvm_aware_profile
from ..frontend import compile_source
from ..frontend.errors import FrontendError
from ..ir import VerificationError, verify_module
from ..ir.interpreter import (
    ExecutionResult, InterpreterError, StepLimitExceeded, run_module,
)
from ..ir.printer import format_module
from ..passes import PassManager, PassPipelineError

#: Every bucket the harness can report, in pipeline order.
STAGES = ("frontend", "step-limit", "interp", "pipeline", "passes",
          "backend-seed", "backend-opt", "emulator")

#: Default profile names the harness compiles under.
DEFAULT_PROFILES = ("-O3", "-O3-zkvm")


@dataclass
class HarnessConfig:
    """Knobs for one differential run (all defaults are campaign-friendly)."""

    #: Profiles to compile under: names (resolved via the study registry) or
    #: ready-made :class:`Profile` objects (tests inject synthetic ones).
    profiles: Sequence[Union[str, Profile]] = DEFAULT_PROFILES
    #: IR-interpreter step budget (unoptimized module; optimized runs reuse it).
    interp_max_steps: int = 2_000_000
    #: Emulator budget per guest replay.
    emulator_max_instructions: int = 40_000_000
    #: Re-run the pipeline one pass at a time with the verifier in between
    #: (slow; the reducer turns this on so failures name the guilty pass).
    verify_each_pass: bool = False

    def as_kwargs(self) -> dict:
        """Picklable form for pool workers.

        Profiles stay as-is: names resolve in the worker via the study
        registry, and :class:`Profile` objects pickle whole (the measurement
        jobs already ship them across the pool boundary the same way).
        """
        return {"profiles": tuple(self.profiles),
                "interp_max_steps": self.interp_max_steps,
                "emulator_max_instructions": self.emulator_max_instructions,
                "verify_each_pass": self.verify_each_pass}


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    ok: bool
    #: First divergent stage (one of :data:`STAGES`), or None when ok.
    stage: Optional[str] = None
    #: Profile under which the divergence appeared (None for profile-independent
    #: stages such as ``frontend``/``step-limit``).
    profile: Optional[str] = None
    detail: str = ""
    #: Steps the IR interpreter executed on the unoptimized module.
    interp_steps: int = 0

    @property
    def bucket(self) -> str:
        return self.stage if self.stage is not None else "ok"

    def as_dict(self) -> dict:
        return {"ok": self.ok, "stage": self.stage, "profile": self.profile,
                "detail": self.detail, "interp_steps": self.interp_steps}


def resolve_profile(profile: Union[str, Profile]) -> Profile:
    """A study profile by name (``-O3-zkvm`` style included) or pass-through."""
    if isinstance(profile, Profile):
        return profile
    if profile.endswith("-zkvm"):
        return zkvm_aware_profile(profile[: -len("-zkvm")])
    return profile_by_name(profile)


def _behaviour(result: ExecutionResult) -> tuple:
    return (tuple(result.output), result.return_value)


def _divergence(expected: tuple, actual: tuple) -> str:
    """A compact first-difference description of two (output, return) pairs."""
    exp_out, exp_ret = expected
    act_out, act_ret = actual
    if exp_out != act_out:
        for i, (a, b) in enumerate(zip(exp_out, act_out)):
            if a != b:
                return f"output[{i}]: expected {a}, got {b}"
        return (f"output length: expected {len(exp_out)} values, "
                f"got {len(act_out)}")
    return f"return value: expected {exp_ret}, got {act_ret}"


def _optimize(module, profile: Profile, analysis_cache: bool):
    clone = module.clone()
    if profile.passes:
        PassManager(profile.passes, profile.config,
                    analysis_cache=analysis_cache).run(clone)
    return clone


def _localize_bad_pass(module, profile: Profile) -> Optional[str]:
    """Run the pipeline one pass at a time, verifying after every pass.

    Returns a human-readable description of the first pass whose output the
    verifier rejects (or that crashes), or None when the whole pipeline is
    verifier-clean.  Used when a mismatch is being reduced.
    """
    clone = module.clone()
    for index, name in enumerate(profile.passes):
        try:
            PassManager((name,), profile.config).run(clone)
        except Exception as exc:  # noqa: BLE001 - report, do not mask
            return f"pass '{name}' (index {index}) crashed: {exc}"
        try:
            verify_module(clone)
        except VerificationError as exc:
            return f"verifier rejects IR after pass '{name}' (index {index}): {exc}"
    return None


def _replay(program, entry: str, machine_cls, max_instructions: int):
    machine = machine_cls(program, max_instructions=max_instructions)
    stats = machine.run(entry)
    return machine, stats


def run_differential(source: str,
                     config: Optional[HarnessConfig] = None) -> DifferentialReport:
    """Push one MiniC program through every oracle; report the first divergence."""
    config = config or HarnessConfig()

    # Stage 1: frontend (parse + codegen + IR verifier).
    try:
        module = compile_source(source, module_name="fuzz")
    except FrontendError as exc:
        return DifferentialReport(ok=False, stage="frontend", detail=str(exc))
    except VerificationError as exc:
        return DifferentialReport(ok=False, stage="frontend",
                                  detail=f"frontend IR rejected: {exc}")

    # Stage 2: the IR interpreter on the unoptimized module is ground truth.
    try:
        base = run_module(module, max_steps=config.interp_max_steps)
    except StepLimitExceeded as exc:
        return DifferentialReport(
            ok=False, stage="step-limit",
            detail=f"unoptimized module: {exc}", interp_steps=exc.steps)
    except InterpreterError as exc:
        return DifferentialReport(ok=False, stage="interp",
                                  detail=f"unoptimized module: {exc}")
    expected = _behaviour(base)
    steps = base.instructions_executed
    # Optimized/compiled replays get generous multiples of the baseline cost.
    interp_budget = max(4 * steps + 100_000, 1_000_000)
    emu_budget = config.emulator_max_instructions

    for profile_like in config.profiles:
        profile = resolve_profile(profile_like)
        name = profile.name

        # Stage 3: pass pipeline — crash, verifier, cached-vs-fresh bytes.
        if config.verify_each_pass:
            located = _localize_bad_pass(module, profile)
            if located is not None:
                return DifferentialReport(ok=False, stage="pipeline",
                                          profile=name, detail=located,
                                          interp_steps=steps)
        try:
            cached = _optimize(module, profile, analysis_cache=True)
            fresh = _optimize(module, profile, analysis_cache=False)
        except (PassPipelineError, VerificationError) as exc:
            return DifferentialReport(ok=False, stage="pipeline", profile=name,
                                      detail=str(exc), interp_steps=steps)
        if format_module(cached) != format_module(fresh):
            return DifferentialReport(
                ok=False, stage="pipeline", profile=name,
                detail="cached and fresh pipelines produced different IR bytes",
                interp_steps=steps)
        try:
            verify_module(cached)
        except VerificationError as exc:
            return DifferentialReport(ok=False, stage="pipeline", profile=name,
                                      detail=f"optimized IR rejected: {exc}",
                                      interp_steps=steps)

        # Stage 4: optimized IR behaviour must match the unoptimized module.
        try:
            optimized = run_module(cached, max_steps=interp_budget)
        except InterpreterError as exc:
            return DifferentialReport(ok=False, stage="passes", profile=name,
                                      detail=f"optimized module: {exc}",
                                      interp_steps=steps)
        if _behaviour(optimized) != expected:
            return DifferentialReport(
                ok=False, stage="passes", profile=name,
                detail=_divergence(expected, _behaviour(optimized)),
                interp_steps=steps)

        # Stage 5: both backends' guests must reproduce the IR behaviour.
        for backend_stage, seed_backend in (("backend-seed", True),
                                            ("backend-opt", False)):
            try:
                program = compile_module(cached, profile.cost_model,
                                         seed_backend=seed_backend)
                machine, stats = _replay(program, "main", Machine, emu_budget)
            except Exception as exc:  # noqa: BLE001 - compile/replay crash
                return DifferentialReport(ok=False, stage=backend_stage,
                                          profile=name, detail=str(exc),
                                          interp_steps=steps)
            behaviour = (tuple(machine.output), stats.return_value)
            if behaviour != expected:
                return DifferentialReport(
                    ok=False, stage=backend_stage, profile=name,
                    detail=_divergence(expected, behaviour),
                    interp_steps=steps)
            if not seed_backend:
                opt_program = program  # reused by the emulator stage below

        # Stage 6: fast and translated emulators vs the reference
        # interpreter on the optimizing backend's guest — a three-way
        # oracle, so the superblock engine earns differential coverage from
        # every fuzz campaign.
        try:
            fast, fast_stats = _replay(opt_program, "main", Machine, emu_budget)
            ref, ref_stats = _replay(opt_program, "main", ReferenceMachine,
                                     emu_budget)
            trans, trans_stats = _replay(opt_program, "main",
                                         TranslatedMachine, emu_budget)
        except Exception as exc:  # noqa: BLE001
            return DifferentialReport(ok=False, stage="emulator", profile=name,
                                      detail=str(exc), interp_steps=steps)
        for engine_name, machine, stats in (("fast", fast, fast_stats),
                                            ("translated", trans,
                                             trans_stats)):
            if machine.output != ref.output or stats != ref_stats \
                    or machine.memory != ref.memory:
                what = ("outputs" if machine.output != ref.output else
                        "TraceStats" if stats != ref_stats else "memory")
                return DifferentialReport(
                    ok=False, stage="emulator", profile=name,
                    detail=f"{engine_name} and reference emulators "
                           f"diverged on {what}",
                    interp_steps=steps)

    return DifferentialReport(ok=True, interp_steps=steps)
