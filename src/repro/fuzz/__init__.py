"""Differential fuzzing: generated MiniC programs vs every oracle the repo has.

The subsystem has four parts, used together by ``python -m repro fuzz``:

* :mod:`~repro.fuzz.genprog` — seeded, typed AST sampler that always yields
  terminating, UB-free MiniC programs with a deterministic printed checksum;
* :mod:`~repro.fuzz.harness` — per-program differential stack across the IR
  interpreter, both backends, both emulators and the pass pipeline, under
  both paper profiles;
* :mod:`~repro.fuzz.minimize` — delta-debugging AST reducer that shrinks a
  mismatch to a minimal reproducer failing at the same stage;
* :mod:`~repro.fuzz.triage` — stage/fingerprint bucketing plus the ``.repro``
  corpus format replayed by the regression tests;
* :mod:`~repro.fuzz.driver` — campaign orchestration as batched
  :class:`~repro.experiments.engine.ExperimentEngine` jobs.
"""

from .genprog import MODES, GeneratedProgram, generate_program, render_program
from .harness import (
    DEFAULT_PROFILES, STAGES, DifferentialReport, HarnessConfig,
    run_differential,
)
from .minimize import MinimizeResult, minimize_source
from .triage import (
    TriagedFailure, TriageSummary, failure_fingerprint, format_repro,
    load_corpus, parse_repro, triage_failure, write_corpus,
)
from .driver import CampaignSummary, run_campaign

__all__ = [
    "MODES", "GeneratedProgram", "generate_program", "render_program",
    "DEFAULT_PROFILES", "STAGES", "DifferentialReport", "HarnessConfig",
    "run_differential",
    "MinimizeResult", "minimize_source",
    "TriagedFailure", "TriageSummary", "failure_fingerprint", "format_repro",
    "load_corpus", "parse_repro", "triage_failure", "write_corpus",
    "CampaignSummary", "run_campaign",
]
