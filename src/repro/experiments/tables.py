"""Regenerators for the paper's tables (Table 1, 2, 3, 6) and the Section 5.2
case studies.

Like the figure regenerators, every table that sweeps the benchmark × profile
matrix first submits the whole matrix as one batch through the runner's
``measure_pairs`` API (:func:`~repro.experiments.runner.warm_matrix`), so an
:class:`~repro.experiments.engine.ExperimentEngine` computes it in parallel
and serves repeat runs from the on-disk measurement cache.  Table 3 and the
case studies compile ad-hoc sources and bypass the runner entirely.
"""

from __future__ import annotations

import statistics
from typing import Optional, Sequence

from ..analysis.stats import kendall_tau, mean, pearson_r
from ..frontend import compile_source
from ..backend import compile_module
from ..emulator import run_program
from .figures import DEFAULT_BENCHMARKS, DEFAULT_PASSES
from .profiles import baseline_profile, pass_profiles, profile_by_name
from .runner import BenchmarkRunner, percent_change, warm_matrix


def table1_gain_loss_counts(runner: Optional[BenchmarkRunner] = None,
                            benchmarks: Optional[Sequence[str]] = None,
                            passes: Optional[Sequence[str]] = None,
                            threshold: float = 2.0) -> dict:
    """Table 1: number of (benchmark, pass) instances with gains > 2% or
    losses < -2% in execution and proving time, per zkVM."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = pass_profiles(passes or DEFAULT_PASSES)
    warm_matrix(runner, benchmarks, profiles)
    rows = {}
    for zkvm in ("risc0", "sp1"):
        counts = {"execution_gain": 0, "execution_loss": 0,
                  "proving_gain": 0, "proving_loss": 0}
        for profile in profiles:
            for benchmark in benchmarks:
                exec_gain = runner.gain(benchmark, profile, zkvm, "execution_time")
                prove_gain = runner.gain(benchmark, profile, zkvm, "proving_time")
                if exec_gain > threshold:
                    counts["execution_gain"] += 1
                elif exec_gain < -threshold:
                    counts["execution_loss"] += 1
                if prove_gain > threshold:
                    counts["proving_gain"] += 1
                elif prove_gain < -threshold:
                    counts["proving_loss"] += 1
        rows[zkvm] = counts
    return rows


def table2_correlations(runner: Optional[BenchmarkRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None,
                        passes: Optional[Sequence[str]] = None) -> dict:
    """Table 2: per-benchmark Kendall's tau and Pearson's r between cost
    metrics (instructions, paging cycles, total cycles) and performance
    (execution time, proving time), averaged over benchmarks."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = [baseline_profile(), *pass_profiles(passes or DEFAULT_PASSES)]
    warm_matrix(runner, benchmarks, profiles, include_baseline=False)

    pairs = [
        ("execution_time", "instructions"),
        ("execution_time", "paging_cycles"),
        ("execution_time", "total_cycles"),
        ("proving_time", "instructions"),
        ("proving_time", "paging_cycles"),
        ("proving_time", "total_cycles"),
    ]
    results: dict = {}
    for zkvm in ("risc0", "sp1"):
        for performance_metric, cost_metric in pairs:
            if cost_metric == "paging_cycles" and zkvm == "sp1":
                results[(zkvm, performance_metric, cost_metric)] = \
                    {"kendall": None, "pearson": None}
                continue
            taus, rs = [], []
            for benchmark in benchmarks:
                xs, ys = [], []
                for profile in profiles:
                    m = runner.measure(benchmark, profile)
                    cost = (m.instructions if cost_metric == "instructions"
                            else m.metric(zkvm, cost_metric))
                    xs.append(cost)
                    ys.append(m.metric(zkvm, performance_metric))
                taus.append(kendall_tau(xs, ys))
                rs.append(pearson_r(xs, ys))
            results[(zkvm, performance_metric, cost_metric)] = \
                {"kendall": mean(taus), "pearson": mean(rs)}
    return results


# -- Table 3: manual loop unrolling --------------------------------------------
_MATVEC_TEMPLATE = """
const N = 5; const REPEAT = 40;
global mat[25]; global vec[5]; global res[5];

fn main() -> int {{
  var i; var col; var row; var r;
  for (i = 0; i < 25; i = i + 1) {{ mat[i] = (i * 7) % 11 - 5; }}
  for (i = 0; i < 5; i = i + 1) {{ vec[i] = i + 1; }}
  for (r = 0; r < REPEAT; r = r + 1) {{
    for (i = 0; i < 5; i = i + 1) {{ res[i] = 0; }}
    for (col = 0; col < 5; col = col + 1) {{
{body}
    }}
  }}
  var acc = 0;
  for (i = 0; i < 5; i = i + 1) {{ acc = acc + res[i] * (i + 1); }}
  print(acc);
  return acc;
}}
"""

_ROLLED_BODY = """      for (row = 0; row < 5; row = row + 1) {
        res[row] = res[row] + mat[col * 5 + row] * vec[col];
      }"""

_UNROLLED_BODY = """      res[0] = res[0] + mat[col * 5 + 0] * vec[col];
      res[1] = res[1] + mat[col * 5 + 1] * vec[col];
      res[2] = res[2] + mat[col * 5 + 2] * vec[col];
      res[3] = res[3] + mat[col * 5 + 3] * vec[col];
      res[4] = res[4] + mat[col * 5 + 4] * vec[col];"""


def table3_manual_unrolling(factors: Sequence[int] = (4, 16)) -> dict:
    """Table 3: manually unrolling the Figure 12 matrix-vector kernel.

    The paper unrolls the inner loop by 4x and 16x directly in assembly; we
    unroll at the source level (the rolled inner loop has 5 iterations, so the
    "unrolled" variant removes all inner-loop bookkeeping — the limit of any
    unroll factor >= 5) and compare instruction counts, zkVM metrics and the
    CPU model on both variants.
    """
    from ..cpu import CpuTimingModel
    from ..emulator import Machine
    from ..zkvm.models import ZKVMS

    def run(body: str) -> dict:
        module = compile_source(_MATVEC_TEMPLATE.format(body=body), "table3")
        program = compile_module(module)
        cpu = CpuTimingModel()
        machine = Machine(program, observers=[cpu])
        trace = machine.run()
        return {
            "instructions": trace.instructions,
            "risc0": ZKVMS["risc0"].evaluate(trace, machine.page_in_events,
                                             machine.page_out_events),
            "sp1": ZKVMS["sp1"].evaluate(trace, machine.page_in_events,
                                         machine.page_out_events),
            "cpu": cpu.finalize(),
            "output": trace.output,
        }

    rolled = run(_ROLLED_BODY)
    unrolled = run(_UNROLLED_BODY)
    assert rolled["output"] == unrolled["output"], "unrolling changed the result"

    rows = {}
    for factor in factors:
        rows[factor] = {
            "instruction_change": -percent_change(rolled["instructions"],
                                                  unrolled["instructions"]),
            "x86_exec_gain": percent_change(rolled["cpu"].execution_time,
                                            unrolled["cpu"].execution_time),
            "risc0_exec_gain": percent_change(rolled["risc0"].execution_time,
                                              unrolled["risc0"].execution_time),
            "risc0_prove_gain": percent_change(rolled["risc0"].proving_time,
                                               unrolled["risc0"].proving_time),
            "sp1_exec_gain": percent_change(rolled["sp1"].execution_time,
                                            unrolled["sp1"].execution_time),
            "sp1_prove_gain": percent_change(rolled["sp1"].proving_time,
                                             unrolled["sp1"].proving_time),
        }
    return rows


def table6_baseline_statistics(runner: Optional[BenchmarkRunner] = None,
                               benchmarks: Optional[Sequence[str]] = None) -> dict:
    """Table 6: min/max/mean/median execution and proving time per zkVM on the
    unoptimized baseline."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    base = baseline_profile()
    warm_matrix(runner, benchmarks, [], include_baseline=True)
    results = {}
    for zkvm in ("risc0", "sp1"):
        for metric in ("execution_time", "proving_time"):
            values = [runner.measure(b, base).metric(zkvm, metric) for b in benchmarks]
            results[(zkvm, metric)] = {
                "min": min(values), "max": max(values),
                "mean": mean(values), "median": statistics.median(values),
            }
    return results


# -- Section 2 / Section 5.2 case studies -------------------------------------
def case_study_strength_reduction() -> dict:
    """Figure 2a: dividing by a constant — single div vs the shift/add expansion."""
    source = """
const N = 400;
fn main() -> int {
  var acc = 0;
  var i;
  for (i = 1; i <= N; i = i + 1) {
    acc = acc + (i * 37 - 500) / 8;
  }
  print(acc);
  return acc;
}
"""
    return _compare_profiles(source, "-O3", "-O3-zkvm")


def case_study_branchless_abs() -> dict:
    """Figure 13: branchy vs branchless absolute value inside a loop."""
    branchy = """
const N = 300;
fn absval(x) -> int { if (x < 0) { return 0 - x; } return x; }
fn main() -> int {
  var acc = 0;
  var i;
  for (i = 0; i < N; i = i + 1) { acc = acc + absval((i * 2654435761) % 2001 - 1000); }
  print(acc);
  return acc;
}
"""
    branchless = """
const N = 300;
fn absval(x) -> int { var m = x >> 31; return (x ^ m) - m; }
fn main() -> int {
  var acc = 0;
  var i;
  for (i = 0; i < N; i = i + 1) { acc = acc + absval((i * 2654435761) % 2001 - 1000); }
  print(acc);
  return acc;
}
"""
    return {"branchy": _measure_source(branchy), "branchless": _measure_source(branchless)}


def case_study_loop_fission() -> dict:
    """Figure 2b: fused vs fissioned initialisation loops."""
    fused = """
const N = 512;
global a[512]; global b[512];
fn main() -> int {
  var i;
  for (i = 0; i < N; i = i + 1) { a[i] = 1; b[i] = 2; }
  print(a[N - 1] + b[N - 1]);
  return a[N - 1] + b[N - 1];
}
"""
    fissioned = """
const N = 512;
global a[512]; global b[512];
fn main() -> int {
  var i;
  for (i = 0; i < N; i = i + 1) { a[i] = 1; }
  for (i = 0; i < N; i = i + 1) { b[i] = 2; }
  print(a[N - 1] + b[N - 1]);
  return a[N - 1] + b[N - 1];
}
"""
    return {"fused": _measure_source(fused), "fissioned": _measure_source(fissioned)}


def _measure_source(source: str, passes: Sequence[str] = ()) -> dict:
    from ..cpu import CpuTimingModel
    from ..emulator import Machine
    from ..passes import run_passes
    from ..zkvm.models import ZKVMS

    module = compile_source(source, "case-study")
    if passes:
        module = run_passes(module, list(passes))
    program = compile_module(module)
    cpu = CpuTimingModel()
    machine = Machine(program, observers=[cpu])
    trace = machine.run()
    return {
        "instructions": trace.instructions,
        "risc0": ZKVMS["risc0"].evaluate(trace, machine.page_in_events,
                                         machine.page_out_events).as_dict(),
        "sp1": ZKVMS["sp1"].evaluate(trace, machine.page_in_events,
                                     machine.page_out_events).as_dict(),
        "x86_execution": cpu.finalize().execution_time,
        "output": list(trace.output),
    }


def _compare_profiles(source: str, profile_a: str, profile_b: str) -> dict:
    from ..passes import PassManager
    from ..cpu import CpuTimingModel
    from ..emulator import Machine
    from ..zkvm.models import ZKVMS
    from .profiles import profile_by_name, zkvm_aware_profile

    results = {}
    for name in (profile_a, profile_b):
        profile = zkvm_aware_profile() if name.endswith("-zkvm") else profile_by_name(name)
        module = compile_source(source, "case-study").clone()
        if profile.passes:
            PassManager(profile.passes, profile.config).run(module)
        program = compile_module(module, profile.cost_model)
        cpu = CpuTimingModel()
        machine = Machine(program, observers=[cpu])
        trace = machine.run()
        results[name] = {
            "instructions": trace.instructions,
            "risc0_exec": ZKVMS["risc0"].evaluate(trace, machine.page_in_events,
                                                  machine.page_out_events).execution_time,
            "x86_exec": cpu.finalize().execution_time,
            "output": list(trace.output),
        }
    return results
