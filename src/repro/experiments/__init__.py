"""The experiment harness: profiles, the measurement runner, the parallel
disk-cached experiment engine, and one regenerator per paper table and figure
(see DESIGN.md for the index).

Use :class:`BenchmarkRunner` for small serial studies and
:class:`ExperimentEngine` (or ``python -m repro``) when you want the
benchmark × profile matrix sharded across worker processes and persisted to
the content-addressed measurement cache.
"""

from .profiles import (
    Profile, all_study_profiles, baseline_profile, custom_profile,
    individual_pass_profiles, level_profiles, pass_profiles, profile_by_name,
    zkvm_aware_profile,
)
from .runner import BenchmarkRunner, Measurement, percent_change, warm_matrix
from .cache import CacheStats, MeasurementCache, measurement_fingerprint
from .engine import EngineStats, ExperimentEngine, default_engine
from .faults import (
    FaultPlan, FaultSpec, JobFailure, PoisonJobError, RetryPolicy,
    TransientError, classify_error, fault_point,
)
from .journal import (
    CampaignJournal, JournalMismatch, default_journal_dir,
    resolve_journal_path,
)
from . import figures, tables

__all__ = [
    "Profile", "all_study_profiles", "baseline_profile", "custom_profile",
    "individual_pass_profiles", "level_profiles", "profile_by_name",
    "pass_profiles", "zkvm_aware_profile",
    "BenchmarkRunner", "Measurement", "percent_change", "warm_matrix",
    "CacheStats", "MeasurementCache", "measurement_fingerprint",
    "EngineStats", "ExperimentEngine", "default_engine",
    "FaultPlan", "FaultSpec", "JobFailure", "PoisonJobError", "RetryPolicy",
    "TransientError", "classify_error", "fault_point",
    "CampaignJournal", "JournalMismatch", "default_journal_dir",
    "resolve_journal_path",
    "figures", "tables",
]
