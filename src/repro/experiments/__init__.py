"""The experiment harness: profiles, the measurement runner, and one
regenerator per paper table and figure (see DESIGN.md for the index)."""

from .profiles import (
    Profile, all_study_profiles, baseline_profile, custom_profile,
    individual_pass_profiles, level_profiles, profile_by_name, zkvm_aware_profile,
)
from .runner import BenchmarkRunner, Measurement, percent_change
from . import figures, tables

__all__ = [
    "Profile", "all_study_profiles", "baseline_profile", "custom_profile",
    "individual_pass_profiles", "level_profiles", "profile_by_name",
    "zkvm_aware_profile", "BenchmarkRunner", "Measurement", "percent_change",
    "figures", "tables",
]
