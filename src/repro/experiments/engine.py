"""The experiment engine: parallel, disk-cached measurement batches.

:class:`ExperimentEngine` is a drop-in :class:`BenchmarkRunner` that adds two
things the serial runner lacks:

* **Sharding** — :meth:`measure_pairs` fans a batch of (benchmark, profile)
  jobs out across worker processes (``concurrent.futures``) and returns the
  results in the order the jobs were submitted, so regenerated figures and
  tables are bit-identical to a serial run regardless of worker count.
* **Persistence** — every measurement is stored in a content-addressed
  on-disk :class:`~repro.experiments.cache.MeasurementCache`, keyed by the
  benchmark source hash, the profile/pass-config fingerprint and the
  cost-model version.  Re-running a figure, table or autotuner generation
  with unchanged inputs completes from the cache with zero re-emulations.

The figure/table regenerators and the genetic autotuner all submit their work
through ``measure_pairs`` (see :func:`repro.experiments.runner.warm_matrix`
and :meth:`repro.autotuner.search.GeneticAutotuner.tune`), so pointing them at
an engine instead of a plain runner parallelizes the whole study.  The
``python -m repro`` CLI does exactly that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from .cache import MeasurementCache, measurement_fingerprint
from .profiles import Profile
from .runner import BenchmarkRunner, DEFAULT_PROGRAM_CACHE_SIZE, Measurement

#: Batches smaller than this run in-process: forking a pool costs more than it
#: saves for one or two jobs.
DEFAULT_PARALLEL_THRESHOLD = 2

#: Per-process runner reuse inside pool workers, so one worker measuring many
#: profiles of the same benchmark parses/compiles the frontend module once —
#: and, through the runner's compiled-program cache, decodes each compiled
#: program into the emulator's dispatch stream once per worker process.
_WORKER_RUNNERS: dict = {}


def _compute_measurement_job(job) -> Measurement:
    """Pool worker entry point: compute one measurement from scratch.

    ``job`` is ``(benchmark_name, profile, max_instructions, verify,
    program_cache_size, analysis_cache, seed_backend)``.  Runs in a separate
    process; the only state shared with the parent is the picklable job tuple
    and the returned :class:`Measurement`.
    """
    (benchmark_name, profile, max_instructions, verify,
     program_cache_size, analysis_cache, seed_backend) = job
    key = (max_instructions, verify, program_cache_size, analysis_cache,
           seed_backend)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = BenchmarkRunner(
            max_instructions=max_instructions, verify=verify,
            program_cache_size=program_cache_size,
            analysis_cache=analysis_cache, seed_backend=seed_backend)
    return runner.measure(benchmark_name, profile, use_cache=False)


@dataclass
class EngineStats:
    """Where each measurement requested from an engine came from."""

    #: Jobs answered from the in-process fingerprint cache.
    memory_hits: int = 0
    #: Jobs answered from the on-disk cache.
    disk_hits: int = 0
    #: Jobs that actually compiled + emulated a benchmark.
    computed: int = 0
    #: Jobs that raised and were reported as ``None`` (``on_error="none"``).
    errors: int = 0
    #: Number of batches that ran on a process pool.
    parallel_batches: int = 0
    #: Jobs executed on a process pool.
    parallel_jobs: int = 0

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "computed": self.computed, "errors": self.errors,
                "parallel_batches": self.parallel_batches,
                "parallel_jobs": self.parallel_jobs}


class ExperimentEngine(BenchmarkRunner):
    """A parallel, disk-cached :class:`BenchmarkRunner`.

    Parameters
    ----------
    workers:
        Worker-process count for batched jobs; defaults to ``os.cpu_count()``.
        ``1`` disables the pool entirely (serial, still disk-cached).
    cache_dir / use_disk_cache:
        Where measurements persist; ``use_disk_cache=False`` keeps the engine
        purely in-memory (e.g. for hermetic tests).
    parallel_threshold:
        Minimum number of *uncached* jobs in a batch before a pool is spun up.

    Single ``measure()`` calls are answered from the caches or computed
    in-process; only :meth:`measure_pairs` / :meth:`measure_many` shard work
    across processes.  Results are relabeled to the requesting profile's name,
    so content-equal profiles (say, an autotuner candidate that equals
    ``-O2``) share cache entries without leaking each other's names.
    """

    def __init__(self, max_instructions: int = 20_000_000, verify: bool = False,
                 workers: Optional[int] = None,
                 cache: Optional[MeasurementCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk_cache: bool = True,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 program_cache_size: int = DEFAULT_PROGRAM_CACHE_SIZE,
                 analysis_cache: bool = True, seed_backend: bool = False):
        super().__init__(max_instructions=max_instructions, verify=verify,
                         program_cache_size=program_cache_size,
                         analysis_cache=analysis_cache,
                         seed_backend=seed_backend)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if cache is None and use_disk_cache:
            cache = MeasurementCache(cache_dir)
        self.cache = cache
        self.parallel_threshold = max(1, parallel_threshold)
        self.stats = EngineStats()
        self._memory: dict[str, Measurement] = {}
        self._pool = None
        self._parallel_disabled = False

    # -- cache plumbing ------------------------------------------------------
    def fingerprint(self, benchmark_name: str, profile: Profile) -> str:
        """The content hash this engine uses for one (benchmark, profile) job."""
        from ..benchmarks import get_benchmark

        return measurement_fingerprint(get_benchmark(benchmark_name), profile,
                                       self.max_instructions, self.verify,
                                       self.seed_backend)

    def _lookup(self, key: str) -> Optional[Measurement]:
        """Memory-then-disk cache probe; promotes disk hits into memory."""
        measurement = self._memory.get(key)
        if measurement is not None:
            self.stats.memory_hits += 1
            return measurement
        if self.cache is not None:
            measurement = self.cache.get(key)
            if measurement is not None:
                self.stats.disk_hits += 1
                self._memory[key] = measurement
                return measurement
        return None

    def _store(self, key: str, measurement: Measurement) -> None:
        self._memory[key] = measurement
        if self.cache is not None:
            self.cache.put(key, measurement)

    @staticmethod
    def _relabel(measurement: Measurement, benchmark_name: str,
                 profile: Profile) -> Measurement:
        """Return ``measurement`` under the requested display names."""
        if (measurement.benchmark == benchmark_name
                and measurement.profile == profile.name):
            return measurement
        return replace(measurement, benchmark=benchmark_name, profile=profile.name)

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    def clear_disk_cache(self) -> int:
        """Drop every persisted measurement; returns the entry count removed."""
        return self.cache.clear() if self.cache is not None else 0

    # -- measurement ---------------------------------------------------------
    def measure(self, benchmark_name: str, profile: Profile,
                use_cache: bool = True) -> Measurement:
        """Measure one pair, consulting the memory and disk caches first.

        ``use_cache=False`` forces a fresh computation and does not store the
        result (matching :meth:`BenchmarkRunner.measure` semantics).
        """
        key = self.fingerprint(benchmark_name, profile)
        if use_cache:
            cached = self._lookup(key)
            if cached is not None:
                return self._relabel(cached, benchmark_name, profile)
        measurement = super().measure(benchmark_name, profile, use_cache=False)
        self.stats.computed += 1
        if use_cache:
            self._store(key, measurement)
        return measurement

    def measure_pairs(self, pairs: Sequence[tuple[str, Profile]],
                      use_cache: bool = True,
                      on_error: str = "raise") -> list[Optional[Measurement]]:
        """Measure a batch of (benchmark, profile) jobs, sharded across workers.

        Cached jobs are answered immediately; the remaining *unique*
        fingerprints are computed — in parallel when the batch is large enough
        and ``workers > 1`` — then persisted.  The returned list is aligned
        with ``pairs`` (deterministic ordering, independent of scheduling).

        ``on_error="none"`` maps a failing job (e.g. an autotuner candidate
        that exceeds the instruction budget) to ``None`` instead of raising.
        """
        results: list[Optional[Measurement]] = [None] * len(pairs)
        pending: dict[str, list[int]] = {}
        for index, (benchmark_name, profile) in enumerate(pairs):
            key = self.fingerprint(benchmark_name, profile)
            if use_cache:
                cached = self._lookup(key)
                if cached is not None:
                    results[index] = self._relabel(cached, benchmark_name, profile)
                    continue
            pending.setdefault(key, []).append(index)

        if pending:
            keys = list(pending)
            jobs = [(pairs[pending[key][0]][0], pairs[pending[key][0]][1],
                     self.max_instructions, self.verify,
                     self.program_cache_size, self.analysis_cache,
                     self.seed_backend)
                    for key in keys]
            for key, outcome in zip(keys, self._compute_batch(jobs)):
                if isinstance(outcome, Exception):
                    self.stats.errors += 1
                    if on_error != "none":
                        raise outcome
                    continue
                self.stats.computed += 1
                if use_cache:
                    self._store(key, outcome)
                for index in pending[key]:
                    benchmark_name, profile = pairs[index]
                    results[index] = self._relabel(outcome, benchmark_name, profile)
        return results

    def measure_many(self, benchmark_names: list[str],
                     profiles: list[Profile]) -> list[Measurement]:
        """Measure the benchmark × profile cross product as one batched shard."""
        pairs = [(benchmark_name, profile)
                 for benchmark_name in benchmark_names for profile in profiles]
        return self.measure_pairs(pairs)

    # -- generic batched jobs ------------------------------------------------
    def map_jobs(self, fn, jobs: Sequence, on_error: str = "raise") -> list:
        """Run ``fn(job)`` for every job, sharded across the worker pool.

        The generic sibling of :meth:`measure_pairs` for non-measurement
        batches (the differential fuzzer's seed shards use it): ``fn`` must be
        a module-level callable and each job picklable.  Results come back
        aligned with ``jobs``.  Uses the same long-lived pool, threshold and
        serial-fallback behaviour as measurement batches; no caching is done —
        callers own dedupe/persistence.

        ``on_error="none"`` maps a failing job to ``None`` instead of raising.
        """
        outcomes = self._map_batch(fn, list(jobs))
        results = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                self.stats.errors += 1
                if on_error != "none":
                    raise outcome
                results.append(None)
            else:
                results.append(outcome)
        return results

    def _map_batch(self, fn, jobs: list) -> list:
        """Run jobs through ``fn``, returning a result or Exception per job."""
        if (self.workers > 1 and not self._parallel_disabled
                and len(jobs) >= self.parallel_threshold):
            try:
                return self._map_parallel(fn, jobs)
            except RuntimeError:
                pass  # pool died mid-batch: recompute this batch serially
            except (ImportError, OSError):
                self._parallel_disabled = True
        outcomes = []
        for job in jobs:
            try:
                outcomes.append(fn(job))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    # -- execution backends --------------------------------------------------
    def _compute_batch(self, jobs: list) -> list:
        """Run jobs, returning a Measurement or Exception per job, in order."""
        if (self.workers > 1 and not self._parallel_disabled
                and len(jobs) >= self.parallel_threshold):
            try:
                return self._compute_parallel(jobs)
            except RuntimeError:
                # The pool died mid-batch (worker killed, ...): recompute this
                # batch serially; a later batch may recreate a fresh pool.
                pass
            except (ImportError, OSError):
                # No usable multiprocessing primitives here (restricted
                # sandbox, broken fork, ...): degrade to in-process execution
                # and stop re-trying pool creation on later batches.
                self._parallel_disabled = True
        return self._compute_serial(jobs)

    def _compute_serial(self, jobs: list) -> list:
        outcomes = []
        for job in jobs:
            benchmark_name, profile = job[0], job[1]
            try:
                outcomes.append(
                    super().measure(benchmark_name, profile, use_cache=False))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def _ensure_pool(self):
        """The engine's long-lived worker pool (created on first parallel batch).

        Keeping one pool alive across batches lets ``_WORKER_RUNNERS`` persist
        in the workers, so e.g. consecutive autotuner generations reuse each
        worker's parsed frontend modules instead of paying pool startup and
        re-compilation per generation.
        """
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool; the engine stays usable, serially.

        Later batches will not respawn workers — reset ``_parallel_disabled``
        (or build a new engine) to re-enable parallelism.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._parallel_disabled = True

    def __del__(self):  # best effort; interpreter exit reaps workers anyway
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    def _compute_parallel(self, jobs: list) -> list:
        return self._map_parallel(_compute_measurement_job, jobs)

    def _map_parallel(self, fn, jobs: list) -> list:
        from concurrent.futures.process import BrokenProcessPool

        pool = self._ensure_pool()
        futures = [pool.submit(fn, job) for job in jobs]
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except BrokenProcessPool:
                self._pool = None  # unusable; a later batch may recreate it
                raise RuntimeError("process pool died; falling back to serial")
            except Exception as exc:
                outcomes.append(exc)
        self.stats.parallel_batches += 1
        self.stats.parallel_jobs += len(jobs)
        return outcomes


_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """A process-wide shared engine with the default on-disk cache."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


__all__ = ["DEFAULT_PARALLEL_THRESHOLD", "EngineStats", "ExperimentEngine",
           "default_engine"]
