"""The experiment engine: parallel, disk-cached, fault-tolerant batches.

:class:`ExperimentEngine` is a drop-in :class:`BenchmarkRunner` that adds
three things the serial runner lacks:

* **Sharding** — :meth:`measure_pairs` fans a batch of (benchmark, profile)
  jobs out across worker processes (``concurrent.futures``) and returns the
  results in the order the jobs were submitted, so regenerated figures and
  tables are bit-identical to a serial run regardless of worker count.
* **Persistence** — every measurement is stored in a content-addressed
  on-disk :class:`~repro.experiments.cache.MeasurementCache`, keyed by the
  benchmark source hash, the profile/pass-config fingerprint and the
  cost-model version.  Re-running a figure, table or autotuner generation
  with unchanged inputs completes from the cache with zero re-emulations.
* **Fault tolerance** — worker failure is treated as the normal case, not a
  batch-aborting event.  Transient errors are retried under a deterministic
  :class:`~repro.experiments.faults.RetryPolicy`; a job that exceeds the
  per-job wall-clock ``job_timeout`` has its (hung) workers killed by a
  watchdog instead of stalling the batch; a dead pool salvages every
  already-completed result and resubmits only the remainder on a fresh pool;
  a job that repeatedly kills its worker is bisected down to the specific
  poison job and quarantined as a structured
  :class:`~repro.experiments.faults.JobFailure` record while every other job
  in the batch returns a real result.

The figure/table regenerators, the genetic autotuner and the differential
fuzzer all submit their work through ``measure_pairs``/``map_jobs`` (see
:func:`repro.experiments.runner.warm_matrix`,
:meth:`repro.autotuner.search.GeneticAutotuner.tune` and
:mod:`repro.fuzz.driver`), so pointing them at an engine instead of a plain
runner parallelizes — and fault-hardens — the whole study.  The
``python -m repro`` CLI does exactly that.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from .cache import MeasurementCache, measurement_fingerprint
from .faults import (
    FAULT_PLAN_ENV, JobFailure, RetryPolicy, failure_from_exception,
    fault_point, worker_fault_init,
)
from .profiles import Profile
from .runner import BenchmarkRunner, DEFAULT_PROGRAM_CACHE_SIZE, Measurement

#: Batches smaller than this run in-process: forking a pool costs more than it
#: saves for one or two jobs.
DEFAULT_PARALLEL_THRESHOLD = 2

#: Per-process runner reuse inside pool workers, so one worker measuring many
#: profiles of the same benchmark parses/compiles the frontend module once —
#: and, through the runner's compiled-program cache, decodes each compiled
#: program into the emulator's dispatch stream once per worker process.
_WORKER_RUNNERS: dict = {}

#: Sentinel marking a batch slot whose outcome is not decided yet.
_UNRESOLVED = object()


def _compute_measurement_job(job) -> Measurement:
    """Pool worker entry point: compute one measurement from scratch.

    ``job`` is ``(benchmark_name, profile, max_instructions, verify,
    program_cache_size, analysis_cache, seed_backend, translate)``.  Runs in
    a separate process; the only state shared with the parent is the
    picklable job tuple and the returned :class:`Measurement`.
    """
    (benchmark_name, profile, max_instructions, verify,
     program_cache_size, analysis_cache, seed_backend, translate) = job
    fault_point("measure-job", f"{benchmark_name}/{profile.name}")
    key = (max_instructions, verify, program_cache_size, analysis_cache,
           seed_backend, translate)
    runner = _WORKER_RUNNERS.get(key)
    if runner is None:
        runner = _WORKER_RUNNERS[key] = BenchmarkRunner(
            max_instructions=max_instructions, verify=verify,
            program_cache_size=program_cache_size,
            analysis_cache=analysis_cache, seed_backend=seed_backend,
            translate=translate)
    return runner.measure(benchmark_name, profile, use_cache=False)


class _PoolUnavailable(Exception):
    """No usable multiprocessing primitives here (sandbox, broken fork)."""


@dataclass
class EngineStats:
    """Where each measurement requested from an engine came from — and what
    the fault-tolerance machinery had to do to get it."""

    #: Jobs answered from the in-process fingerprint cache.
    memory_hits: int = 0
    #: Jobs answered from the on-disk cache.
    disk_hits: int = 0
    #: Jobs that actually compiled + emulated a benchmark.
    computed: int = 0
    #: Jobs that exhausted their attempts and were reported as failures.
    errors: int = 0
    #: Number of batches that ran on a process pool.
    parallel_batches: int = 0
    #: Jobs executed on a process pool.
    parallel_jobs: int = 0
    #: Job re-submissions after a transient error or a retryable timeout.
    retries: int = 0
    #: Jobs that exceeded the per-job wall-clock budget (per occurrence).
    timeouts: int = 0
    #: Poison jobs bisected out and quarantined as JobFailure records.
    quarantined: int = 0
    #: Completed results preserved across a pool death (instead of re-run).
    salvaged: int = 0

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "computed": self.computed, "errors": self.errors,
                "parallel_batches": self.parallel_batches,
                "parallel_jobs": self.parallel_jobs,
                "retries": self.retries, "timeouts": self.timeouts,
                "quarantined": self.quarantined, "salvaged": self.salvaged}


class ExperimentEngine(BenchmarkRunner):
    """A parallel, disk-cached, fault-tolerant :class:`BenchmarkRunner`.

    Parameters
    ----------
    workers:
        Worker-process count for batched jobs; defaults to ``os.cpu_count()``.
        ``1`` disables the pool entirely (serial, still disk-cached).
    cache_dir / use_disk_cache:
        Where measurements persist; ``use_disk_cache=False`` keeps the engine
        purely in-memory (e.g. for hermetic tests).
    parallel_threshold:
        Minimum number of *uncached* jobs in a batch before a pool is spun up.
    job_timeout:
        Per-job wall-clock budget in seconds (None disables).  Enforced by a
        watchdog on pooled batches only: a job observed running longer than
        this gets its workers killed, the batch's completed results are
        salvaged and the remainder resubmitted on a fresh pool.  Serial
        execution cannot preempt a job and ignores the budget.
    retry_policy:
        How transient failures and timeouts are retried (see
        :class:`~repro.experiments.faults.RetryPolicy`); defaults to 3
        attempts with deterministic jittered backoff.

    Single ``measure()`` calls are answered from the caches or computed
    in-process; only the batch APIs (:meth:`measure_pairs` /
    :meth:`measure_many` / :meth:`map_jobs`) shard work across processes and
    engage the retry/timeout/quarantine machinery.  Results are relabeled to
    the requesting profile's name, so content-equal profiles (say, an
    autotuner candidate that equals ``-O2``) share cache entries without
    leaking each other's names.  Jobs the engine gave up on are accumulated
    on :attr:`failures` as structured
    :class:`~repro.experiments.faults.JobFailure` records.
    """

    def __init__(self, max_instructions: int = 20_000_000, verify: bool = False,
                 workers: Optional[int] = None,
                 cache: Optional[MeasurementCache] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk_cache: bool = True,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 program_cache_size: int = DEFAULT_PROGRAM_CACHE_SIZE,
                 analysis_cache: bool = True, seed_backend: bool = False,
                 translate: bool = False,
                 job_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(max_instructions=max_instructions, verify=verify,
                         program_cache_size=program_cache_size,
                         analysis_cache=analysis_cache,
                         seed_backend=seed_backend, translate=translate)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if cache is None and use_disk_cache:
            cache = MeasurementCache(cache_dir)
        self.cache = cache
        self.parallel_threshold = max(1, parallel_threshold)
        self.job_timeout = job_timeout
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.stats = EngineStats()
        #: JobFailure records for every job this engine gave up on.
        self.failures: list[JobFailure] = []
        self._memory: dict[str, Measurement] = {}
        self._pool = None
        self._parallel_disabled = False

    # -- cache plumbing ------------------------------------------------------
    def fingerprint(self, benchmark_name: str, profile: Profile) -> str:
        """The content hash this engine uses for one (benchmark, profile) job."""
        from ..benchmarks import get_benchmark

        return measurement_fingerprint(get_benchmark(benchmark_name), profile,
                                       self.max_instructions, self.verify,
                                       self.seed_backend, self.translate)

    def _lookup(self, key: str) -> Optional[Measurement]:
        """Memory-then-disk cache probe; promotes disk hits into memory."""
        measurement = self._memory.get(key)
        if measurement is not None:
            self.stats.memory_hits += 1
            return measurement
        if self.cache is not None:
            measurement = self.cache.get(key)
            if measurement is not None:
                self.stats.disk_hits += 1
                self._memory[key] = measurement
                return measurement
        return None

    def _store(self, key: str, measurement: Measurement) -> None:
        self._memory[key] = measurement
        if self.cache is not None:
            self.cache.put(key, measurement)

    @staticmethod
    def _relabel(measurement: Measurement, benchmark_name: str,
                 profile: Profile) -> Measurement:
        """Return ``measurement`` under the requested display names."""
        if (measurement.benchmark == benchmark_name
                and measurement.profile == profile.name):
            return measurement
        return replace(measurement, benchmark=benchmark_name, profile=profile.name)

    def reset_stats(self) -> None:
        self.stats = EngineStats()
        self.failures = []

    def clear_disk_cache(self) -> int:
        """Drop every persisted measurement; returns the entry count removed.

        Safe on cache-less engines (``use_disk_cache=False``): reports 0.
        """
        return self.cache.clear() if self.cache is not None else 0

    # -- measurement ---------------------------------------------------------
    def measure(self, benchmark_name: str, profile: Profile,
                use_cache: bool = True) -> Measurement:
        """Measure one pair, consulting the memory and disk caches first.

        ``use_cache=False`` forces a fresh computation and does not store the
        result (matching :meth:`BenchmarkRunner.measure` semantics).
        """
        key = self.fingerprint(benchmark_name, profile)
        if use_cache:
            cached = self._lookup(key)
            if cached is not None:
                return self._relabel(cached, benchmark_name, profile)
        measurement = super().measure(benchmark_name, profile, use_cache=False)
        self.stats.computed += 1
        if use_cache:
            self._store(key, measurement)
        return measurement

    def measure_pairs(self, pairs: Sequence[tuple[str, Profile]],
                      use_cache: bool = True,
                      on_error: str = "raise") -> list:
        """Measure a batch of (benchmark, profile) jobs, sharded across workers.

        Cached jobs are answered immediately; the remaining *unique*
        fingerprints are computed — in parallel when the batch is large enough
        and ``workers > 1`` — then persisted.  The returned list is aligned
        with ``pairs`` (deterministic ordering, independent of scheduling).

        Failure handling (``on_error``):

        * ``"raise"`` (default) — the first failed job re-raises its
          exception (or a :class:`PoisonJobError` for quarantined jobs);
        * ``"none"`` — a failed job (e.g. an autotuner candidate that
          exceeds the instruction budget) maps to ``None``;
        * ``"report"`` — a failed job maps to its structured
          :class:`~repro.experiments.faults.JobFailure` record.

        Every failure is also appended to :attr:`failures` and counted on
        ``stats.errors``, regardless of mode.
        """
        results: list = [None] * len(pairs)
        pending: dict[str, list[int]] = {}
        for index, (benchmark_name, profile) in enumerate(pairs):
            key = self.fingerprint(benchmark_name, profile)
            if use_cache:
                cached = self._lookup(key)
                if cached is not None:
                    results[index] = self._relabel(cached, benchmark_name, profile)
                    continue
            pending.setdefault(key, []).append(index)

        if pending:
            keys = list(pending)
            jobs = []
            labels = []
            for key in keys:
                benchmark_name, profile = pairs[pending[key][0]]
                jobs.append((benchmark_name, profile,
                             self.max_instructions, self.verify,
                             self.program_cache_size, self.analysis_cache,
                             self.seed_backend, self.translate))
                labels.append(f"{benchmark_name}/{profile.name}")
            for key, outcome in zip(keys, self._compute_batch(jobs, labels)):
                if isinstance(outcome, JobFailure):
                    self.stats.errors += 1
                    if on_error == "raise":
                        raise outcome.to_exception()
                    if on_error == "report":
                        for index in pending[key]:
                            results[index] = outcome
                    continue
                self.stats.computed += 1
                if use_cache:
                    self._store(key, outcome)
                for index in pending[key]:
                    benchmark_name, profile = pairs[index]
                    results[index] = self._relabel(outcome, benchmark_name, profile)
        return results

    def measure_many(self, benchmark_names: list[str],
                     profiles: list[Profile]) -> list[Measurement]:
        """Measure the benchmark × profile cross product as one batched shard."""
        pairs = [(benchmark_name, profile)
                 for benchmark_name in benchmark_names for profile in profiles]
        return self.measure_pairs(pairs)

    # -- generic batched jobs ------------------------------------------------
    def map_jobs(self, fn, jobs: Sequence, on_error: str = "raise",
                 labels: Optional[Sequence[str]] = None,
                 on_result: Optional[Callable] = None) -> list:
        """Run ``fn(job)`` for every job, sharded across the worker pool.

        The generic sibling of :meth:`measure_pairs` for non-measurement
        batches (the differential fuzzer's seed shards use it): ``fn`` must be
        a module-level callable and each job picklable.  Results come back
        aligned with ``jobs``.  Uses the same long-lived pool, threshold,
        retry/timeout/quarantine and salvage behaviour as measurement
        batches; no caching is done — callers own dedupe/persistence.

        ``on_error`` follows :meth:`measure_pairs` (``"raise"`` / ``"none"``
        / ``"report"``).  ``labels`` names jobs in failure records and
        ``on_result(index, outcome)`` — with ``outcome`` a result or a
        :class:`JobFailure` — fires once per job *as it finishes* (completion
        order), which is what lets campaign drivers journal incremental
        progress for ``--resume``.
        """
        jobs = list(jobs)
        outcomes = self._map_batch(fn, jobs, labels=labels, on_result=on_result)
        results = []
        for outcome in outcomes:
            if isinstance(outcome, JobFailure):
                self.stats.errors += 1
                if on_error == "raise":
                    raise outcome.to_exception()
                results.append(outcome if on_error == "report" else None)
            else:
                results.append(outcome)
        return results

    # -- execution core ------------------------------------------------------
    def _compute_batch(self, jobs: list, labels: Optional[list] = None) -> list:
        """Run measurement jobs; a Measurement or JobFailure per job, in order."""

        def compute_serial(job):
            # In-process execution reuses this engine's parsed modules and
            # compiled-program cache; the fault hook mirrors the pool worker's.
            fault_point("measure-job", f"{job[0]}/{job[1].name}")
            return BenchmarkRunner.measure(self, job[0], job[1],
                                           use_cache=False)

        return self._map_batch(_compute_measurement_job, jobs, labels=labels,
                               serial_fn=compute_serial)

    def _map_batch(self, fn, jobs: list, labels: Optional[Sequence[str]] = None,
                   serial_fn: Optional[Callable] = None,
                   on_result: Optional[Callable] = None) -> list:
        """Run jobs through ``fn``; a result or JobFailure per job, in order.

        Jobs run on the process pool when the batch is big enough, with the
        full fault-tolerance machinery (:meth:`_run_group`).  When no pool
        can exist at all (restricted sandbox, broken fork) execution degrades
        to in-process — resuming from whatever the pool already finished, so
        a completed job is never re-run by the fallback.
        """
        jobs = list(jobs)
        labels = list(labels) if labels is not None else \
            [f"job[{i}]" for i in range(len(jobs))]
        outcomes: list = [_UNRESOLVED] * len(jobs)
        attempts = [0] * len(jobs)

        def finalize(index: int, outcome) -> None:
            outcomes[index] = outcome
            if isinstance(outcome, JobFailure):
                self.failures.append(outcome)
            if on_result is not None:
                on_result(index, outcome)

        if (self.workers > 1 and not self._parallel_disabled
                and len(jobs) >= self.parallel_threshold):
            self.stats.parallel_batches += 1
            try:
                self._run_group(fn, jobs, labels, list(range(len(jobs))),
                                attempts, finalize)
            except _PoolUnavailable:
                # Degrade to in-process execution and stop re-trying pool
                # creation on later batches.
                self._parallel_disabled = True
                self._kill_pool()

        run = serial_fn if serial_fn is not None else fn
        for index, outcome in enumerate(outcomes):
            if outcome is _UNRESOLVED:
                finalize(index, self._run_serial_job(run, jobs[index],
                                                     labels[index], attempts,
                                                     index))
        return outcomes

    def _run_serial_job(self, fn, job, label: str, attempts: list, index: int):
        """In-process execution of one job under the retry policy."""
        policy = self.retry_policy
        while True:
            attempts[index] += 1
            try:
                return fn(job)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                classification = policy.classify(exc)
                if policy.should_retry(classification, attempts[index]):
                    self.stats.retries += 1
                    time.sleep(policy.delay_for(label, attempts[index]))
                    continue
                return failure_from_exception(label, exc, attempts[index],
                                              classification=classification)

    def _run_group(self, fn, jobs: list, labels: list, indices: list,
                   attempts: list, finalize) -> None:
        """Run a group of job indices on the pool until each is finalized.

        This is the fault-tolerant core.  One iteration of the outer loop
        submits every pending index and watches the futures:

        * a future that completes finalizes its job (or schedules a retry
          under the policy);
        * a job observed *running* longer than ``job_timeout`` trips the
          watchdog: the pool's workers are killed, the timed-out job is
          retried or quarantined, and every other in-flight job is
          resubmitted with no attempt penalty;
        * a pool death (``BrokenProcessPool``) keeps every result that
          completed before the crash (**salvage**), then isolates the killer:
          a single unresolved job is the proven poison job and is
          quarantined; several unresolved jobs are split in half and re-run
          as sub-groups on fresh pools (**bisection**), converging on the
          poison job in O(log n) pool restarts while innocent bystanders
          complete normally.
        """
        from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait

        policy = self.retry_policy
        pending = list(indices)
        retry_sleep = 0.0
        while pending:
            try:
                pool = self._ensure_pool()
            except (ImportError, OSError) as exc:
                raise _PoolUnavailable from exc
            if retry_sleep > 0:
                time.sleep(retry_sleep)
            futures = {}
            try:
                for index in pending:
                    attempts[index] += 1
                    futures[pool.submit(fn, jobs[index])] = index
            except RuntimeError as exc:  # pool already broken/shut down
                for future in futures:
                    future.cancel()
                self._kill_pool()
                if not futures:
                    raise _PoolUnavailable from exc
                continue  # resubmit the whole round on a fresh pool
            self.stats.parallel_jobs += len(pending)
            pending = []
            retry_sleep = 0.0

            started: dict[int, float] = {}
            timed_out: list[int] = []
            broken_victims: list[int] = []
            pool_broken = False
            completed_round = 0
            not_done = set(futures)
            try:
                while not_done and not pool_broken and not timed_out:
                    tick = None
                    if self.job_timeout is not None:
                        tick = max(0.01, min(0.1, self.job_timeout / 4))
                    done, not_done = wait(not_done, timeout=tick,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        exc = future.exception()
                        if exc is None:
                            finalize(index, future.result())
                            completed_round += 1
                        elif isinstance(exc, BrokenExecutor):
                            pool_broken = True
                            broken_victims.append(index)
                        else:
                            classification = policy.classify(exc)
                            if policy.should_retry(classification,
                                                   attempts[index]):
                                self.stats.retries += 1
                                pending.append(index)
                                retry_sleep = max(retry_sleep, policy.delay_for(
                                    labels[index], attempts[index]))
                            else:
                                finalize(index, failure_from_exception(
                                    labels[index], exc, attempts[index],
                                    classification=classification))
                    if (self.job_timeout is not None and not_done
                            and not pool_broken):
                        now = time.monotonic()
                        for future in not_done:
                            index = futures[future]
                            if future.running() and index not in started:
                                started[index] = now
                        timed_out = [futures[f] for f in not_done
                                     if futures[f] in started
                                     and now - started[futures[f]]
                                     >= self.job_timeout]
            except KeyboardInterrupt:
                self._kill_pool()
                raise

            if not pool_broken and not timed_out:
                continue  # round fully resolved; loop drains retries

            # The pool is dead (or about to be killed by the watchdog):
            # everything finalized above survives — that is the salvage.
            self._kill_pool()
            self.stats.salvaged += completed_round
            unresolved = sorted(
                {futures[f] for f in not_done} | set(broken_victims))

            if timed_out:
                for index in sorted(timed_out):
                    self.stats.timeouts += 1
                    unresolved.remove(index)
                    if policy.should_retry("timeout", attempts[index]):
                        self.stats.retries += 1
                        pending.append(index)
                        retry_sleep = max(retry_sleep, policy.delay_for(
                            labels[index], attempts[index]))
                    else:
                        finalize(index, JobFailure(
                            job=labels[index], stage="timeout",
                            attempts=attempts[index],
                            classification="timeout",
                            error_type="JobTimeout",
                            message=f"exceeded the {self.job_timeout:.3g}s "
                                    f"per-job wall-clock budget"))
                # In-flight bystanders were killed with the pool through no
                # fault of their own: resubmit without an attempt penalty.
                for index in unresolved:
                    attempts[index] -= 1
                    pending.append(index)
                continue

            if len(unresolved) == 1:
                # Proven poison job: it was alone in flight when the pool
                # died.  Killing a worker is deterministic behaviour, not a
                # transient fault — quarantine immediately.
                index = unresolved[0]
                self.stats.quarantined += 1
                finalize(index, JobFailure(
                    job=labels[index], stage="pool-kill",
                    attempts=attempts[index], classification="crash",
                    error_type="WorkerCrash",
                    message="killed its worker process (isolated by "
                            "bisection; the process pool died with this "
                            "job alone in flight)"))
            elif unresolved:
                # Ambiguous killer: bisect.  Each half runs as its own
                # sub-group on a fresh pool; the half containing the poison
                # job dies again and splits further, the other completes.
                mid = len(unresolved) // 2
                for half in (unresolved[:mid], unresolved[mid:]):
                    if half:
                        self._run_group(fn, jobs, labels, half, attempts,
                                        finalize)

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self):
        """The engine's long-lived worker pool (created on first parallel batch).

        Keeping one pool alive across batches lets ``_WORKER_RUNNERS`` persist
        in the workers, so e.g. consecutive autotuner generations reuse each
        worker's parsed frontend modules instead of paying pool startup and
        re-compilation per generation.  The ``fork`` context is pinned where
        available so worker state (and the fault-injection environment) is
        inherited deterministically.
        """
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork
                context = None
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context,
                initializer=worker_fault_init,
                initargs=(os.environ.get(FAULT_PLAN_ENV),))
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down *now*, SIGTERMing workers (hung ones included).

        Used by the watchdog and the pool-death recovery paths; a later batch
        (or bisection sub-group) recreates a fresh pool on demand.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut down the worker pool; the engine stays usable, serially.

        Later batches will not respawn workers — reset ``_parallel_disabled``
        (or build a new engine) to re-enable parallelism.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._parallel_disabled = True

    def __del__(self):  # best effort; interpreter exit reaps workers anyway
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass


_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """A process-wide shared engine with the default on-disk cache."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


__all__ = ["DEFAULT_PARALLEL_THRESHOLD", "EngineStats", "ExperimentEngine",
           "default_engine"]
