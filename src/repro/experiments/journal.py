"""Append-only campaign journals: checkpoint/resume for long runs.

A journal is a JSONL file under ``<cache root>/journals/``: the first line is
a header naming the campaign it belongs to (a *fingerprint* dict of every
parameter that shapes the campaign's work), and every subsequent line is one
completed unit of work — a fuzzing shard, an autotuner generation.  Records
are flushed and fsynced as they are written, so a ``SIGINT``, an OOM kill or
a pulled plug loses at most the record being written; ``--resume`` replays
the journal and re-submits only the missing work.

Two guarantees make resumption safe:

* **Identity** — :meth:`CampaignJournal.open` refuses to resume a journal
  whose header fingerprint differs from the requested campaign (changed
  seeds, modes, profiles, generator output...), so stale journals can never
  silently splice foreign results into a run.
* **Torn tails** — a record interrupted mid-write (truncated last line) is
  skipped on load instead of poisoning the parse; its shard simply re-runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from .cache import default_cache_dir

#: Bump when the journal line format changes (old journals then refuse to
#: resume via the header mismatch path instead of misparsing).
JOURNAL_VERSION = 1


class JournalMismatch(RuntimeError):
    """``--resume`` pointed at a journal from a different campaign."""


def default_journal_dir(cache_dir=None) -> Path:
    """Where named journals live: ``<cache root>/journals``."""
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / "journals"


def resolve_journal_path(name_or_path, cache_dir=None) -> Path:
    """A journal CLI argument: an explicit path, or a name under the root.

    Anything containing a path separator (or ending in ``.jsonl``) is taken
    literally; a bare name lands in :func:`default_journal_dir`.
    """
    text = str(name_or_path)
    if os.sep in text or "/" in text or text.endswith(".jsonl"):
        return Path(text)
    return default_journal_dir(cache_dir) / f"{text}.jsonl"


class CampaignJournal:
    """One campaign's append-only JSONL checkpoint file."""

    def __init__(self, path):
        self.path = Path(path)
        self._handle = None

    # -- lifecycle -------------------------------------------------------------
    def open(self, fingerprint: dict, resume: bool = False) -> list:
        """Begin (or resume) a campaign; returns previously recorded entries.

        * fresh run (``resume=False``): any existing journal is discarded and
          a new one started — an empty list comes back;
        * ``resume=True``: the existing journal's header must match
          ``fingerprint`` (else :class:`JournalMismatch`); its entries are
          returned and later :meth:`record` calls append to the same file.
        """
        entries: list = []
        if self.path.exists():
            header, recorded = self._read()
            matches = (header is not None
                       and header.get("campaign") == fingerprint
                       and header.get("version") == JOURNAL_VERSION)
            if resume:
                if not matches:
                    raise JournalMismatch(
                        f"journal {self.path} does not belong to this "
                        f"campaign (different parameters or journal "
                        f"version); delete it or drop --resume")
                entries = recorded
            else:
                self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if not entries and self._handle.tell() == 0:
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "campaign": fingerprint})
        return entries

    def record(self, entry: dict) -> None:
        """Append one completed unit of work; flushed and fsynced."""
        if self._handle is None:
            raise RuntimeError("journal not opened; call open() first")
        self._append(entry)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------
    def _append(self, entry: dict) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _read(self):
        """Parse the file into (header, entries), skipping torn lines."""
        header = None
        entries = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from an interrupted write
                if record.get("type") == "header":
                    header = record
                else:
                    entries.append(record)
        return header, entries


__all__ = ["CampaignJournal", "JOURNAL_VERSION", "JournalMismatch",
           "default_journal_dir", "resolve_journal_path"]
