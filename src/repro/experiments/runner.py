"""The measurement harness: compile a benchmark under a profile, execute it,
and evaluate every metric the paper reports (cycle count, zkVM execution
time, proving time for both zkVMs; native execution time on the CPU model).

:class:`BenchmarkRunner` is the serial, in-memory-cached reference
implementation.  The figure/table regenerators and the autotuner submit work
through its batch API (:meth:`BenchmarkRunner.measure_pairs`), which the
parallel, disk-cached :class:`~repro.experiments.engine.ExperimentEngine`
subclass overrides to shard jobs across worker processes — substitute an
engine anywhere a runner is accepted to parallelize and persist a study."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from ..backend import compile_module
from ..cpu import CpuTimingModel
from ..cpu.x86_model import CpuMetrics
from ..emulator import Machine, TraceStats
from ..frontend import compile_source
from ..ir import Module, verify_module
from ..passes import PassManager
from ..zkvm.models import ZKVMS, ZkvmMetrics
from .profiles import Profile, baseline_profile


@dataclass
class Measurement:
    """Everything measured for one (benchmark, profile) pair."""

    benchmark: str
    profile: str
    trace: TraceStats
    risc0: ZkvmMetrics
    sp1: ZkvmMetrics
    #: None for measurements taken through the translated engine, which has
    #: no per-instruction observer stream to drive the CPU timing model.
    cpu: Optional[CpuMetrics]
    static_instructions: int
    #: Byte-accurate binary footprint ``{"rv32": ..., "rvc": ...}`` from
    #: :func:`repro.backend.encoding.code_size_report`; None when the
    #: program carries something the encoder rejects.
    code_bytes: Optional[dict] = None

    @property
    def instructions(self) -> int:
        return self.trace.instructions

    def metric(self, zkvm: str, name: str) -> float:
        """One zkVM metric by name, e.g. ``metric("risc0", "proving_time")``."""
        source = {"risc0": self.risc0, "sp1": self.sp1}[zkvm]
        return getattr(source, name)

    def as_dict(self) -> dict:
        """JSON-shaped summary (used by the CLI and cache round-trip tests)."""
        return {
            "benchmark": self.benchmark,
            "profile": self.profile,
            "instructions": self.instructions,
            "risc0": self.risc0.as_dict(),
            "sp1": self.sp1.as_dict(),
            "cpu": self.cpu.as_dict() if self.cpu is not None else None,
            "code_bytes": self.code_bytes,
        }


def percent_change(baseline: float, value: float) -> float:
    """Performance gain in percent: positive = faster (smaller) than baseline."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline * 100.0


def warm_matrix(runner: "BenchmarkRunner", benchmarks: list[str],
                profiles: list[Profile], include_baseline: bool = True) -> None:
    """Submit a full benchmark × profile matrix as one batched shard.

    Every figure/table regenerator calls this before assembling rows: an
    :class:`~repro.experiments.engine.ExperimentEngine` computes the batch in
    parallel and persists it, after which the per-cell ``measure``/``gain``
    calls are pure cache lookups.  The baseline profile is included by default
    because every gain is computed against it.
    """
    profiles = list(profiles)
    if include_baseline:
        profiles.insert(0, baseline_profile())
    runner.measure_pairs([(benchmark, profile)
                          for benchmark in benchmarks for profile in profiles])


#: Default capacity of the compiled-program cache (FIFO-evicted).  Compiled
#: ``AssemblyProgram`` objects carry their decoded instruction stream (see
#: :func:`repro.emulator.decode_program`), so reusing the program object across
#: measurements means each benchmark is compiled *and decoded* once per
#: process — the autotuner's re-measured elites and every repeated baseline
#: skip straight to the pre-decoded hot loop.
DEFAULT_PROGRAM_CACHE_SIZE = 128


def _program_key(benchmark_name: str, profile: Profile,
                 seed_backend: bool = False) -> str:
    """Content key for a compiled program: everything that shapes the code.

    Keyed by the profile's *recipe* (passes, config, cost model — shared with
    :func:`~repro.experiments.cache.measurement_fingerprint`), not its display
    name, so content-equal profiles (an autotuner candidate that rediscovers
    ``-O2``) share one compiled+decoded program.  The backend choice
    (optimizing vs the preserved seed backend) shapes the code too, so it is
    part of the key.
    """
    from .cache import profile_recipe

    return json.dumps({"benchmark": benchmark_name,
                       "backend": "seed" if seed_backend else "opt",
                       **profile_recipe(profile)},
                      sort_keys=True, default=repr)


class BenchmarkRunner:
    """Compiles and measures benchmark programs under optimization profiles.

    Compilation results are memoized per (benchmark, profile) so that the
    table/figure regenerators can share work, and compiled programs are kept
    in a bounded content-keyed cache so their decoded instruction streams are
    reused across measurements (decode once per process).
    """

    def __init__(self, max_instructions: int = 20_000_000, verify: bool = False,
                 program_cache_size: int = DEFAULT_PROGRAM_CACHE_SIZE,
                 analysis_cache: bool = True, seed_backend: bool = False,
                 translate: bool = False):
        self.max_instructions = max_instructions
        self.verify = verify
        self.program_cache_size = program_cache_size
        #: False routes every compile through the ``--no-analysis-cache``
        #: escape hatch (the seed-semantics recompute-everything pipeline).
        self.analysis_cache = analysis_cache
        #: True compiles through the preserved seed backend
        #: (``--seed-backend``) instead of the optimizing one — the A/B knob
        #: behind ``make bench-backend`` and the backend differential suite.
        self.seed_backend = seed_backend
        #: True replays guest programs through the superblock-translating
        #: :class:`~repro.emulator.translate.TranslatedMachine` — same
        #: TraceStats/paging byte-for-byte, several times faster — at the
        #: cost of the CPU timing model (``Measurement.cpu`` is None): the
        #: timing model is a per-instruction observer, and observers force
        #: the interpreter fallback.  The autotuner only consumes
        #: trace-derived zkVM metrics, so its measurement path uses this.
        self.translate = translate
        self._source_cache: dict[str, Module] = {}
        self._measure_cache: dict[tuple[str, str], Measurement] = {}
        self._program_cache: dict[str, object] = {}

    # -- compilation ---------------------------------------------------------
    def frontend_module(self, benchmark_name: str) -> Module:
        """The unoptimized IR module of a registered benchmark."""
        from ..benchmarks import get_benchmark

        if benchmark_name not in self._source_cache:
            benchmark = get_benchmark(benchmark_name)
            self._source_cache[benchmark_name] = compile_source(
                benchmark.source, module_name=benchmark_name)
        return self._source_cache[benchmark_name]

    def compile(self, benchmark_name: str, profile: Profile,
                use_cache: bool = True):
        """Apply the profile's passes and lower to RV32IM.

        The compiled ``AssemblyProgram`` is cached by content key so repeated
        measurements of the same recipe reuse one program object — and with
        it the emulator's per-program decoded instruction stream.  Emulation
        never mutates the program (machines copy ``globals_init``), so the
        shared object is safe across runs.
        """
        key = _program_key(benchmark_name, profile, self.seed_backend)
        if use_cache:
            program = self._program_cache.get(key)
            if program is not None:
                return program
        module = self.frontend_module(benchmark_name).clone()
        if profile.passes:
            PassManager(profile.passes, profile.config,
                        analysis_cache=self.analysis_cache).run(module)
        if self.verify:
            verify_module(module)
        program = compile_module(module, profile.cost_model,
                                 seed_backend=self.seed_backend)
        if use_cache and self.program_cache_size > 0:
            while len(self._program_cache) >= self.program_cache_size:
                self._program_cache.pop(next(iter(self._program_cache)))
            self._program_cache[key] = program
        return program

    # -- measurement ----------------------------------------------------------
    def measure(self, benchmark_name: str, profile: Profile,
                use_cache: bool = True) -> Measurement:
        """Compile, emulate and cost one (benchmark, profile) pair.

        Results are memoized per (benchmark, profile *name*) for the lifetime
        of this runner; ``use_cache=False`` forces a fresh computation and
        skips storing it.  The engine subclass replaces this name-keyed
        memoization with content-addressed memory + disk caches.
        """
        key = (benchmark_name, profile.name)
        if use_cache and key in self._measure_cache:
            return self._measure_cache[key]

        from ..benchmarks import get_benchmark

        benchmark = get_benchmark(benchmark_name)
        program = self.compile(benchmark_name, profile)
        if self.translate:
            from ..emulator import TranslatedMachine

            cpu_model = None
            machine = TranslatedMachine(
                program, max_instructions=self.max_instructions,
                input_values=benchmark.inputs)
        else:
            cpu_model = CpuTimingModel()
            machine = Machine(program, max_instructions=self.max_instructions,
                              observers=[cpu_model],
                              input_values=benchmark.inputs)
        trace = machine.run("main", benchmark.args)
        if benchmark.expected_output is not None and \
                trace.output != benchmark.expected_output:
            raise AssertionError(
                f"{benchmark_name} under {profile.name}: output {trace.output} "
                f"does not match expected {benchmark.expected_output}")

        risc0 = ZKVMS["risc0"].evaluate(trace, machine.page_in_events,
                                        machine.page_out_events)
        sp1 = ZKVMS["sp1"].evaluate(trace, machine.page_in_events,
                                    machine.page_out_events)
        measurement = Measurement(
            benchmark=benchmark_name,
            profile=profile.name,
            trace=trace,
            risc0=risc0,
            sp1=sp1,
            cpu=cpu_model.finalize() if cpu_model is not None else None,
            static_instructions=program.total_static_instructions(),
            code_bytes=getattr(program, "code_sizes", None),
        )
        if use_cache:
            self._measure_cache[key] = measurement
        return measurement

    def run_batched(self, benchmark_name: str, profile: Profile,
                    num_lanes: Optional[int] = None,
                    lane_args: Optional[list] = None,
                    lane_inputs: Optional[list] = None,
                    check_output: bool = True) -> list[TraceStats]:
        """Replay one compiled benchmark across N lockstep emulator lanes.

        This is the batch execution path for consumers that replay the *same
        program* many times — autotuner generations re-measuring one
        candidate's benchmark set, fuzz shards replaying a corpus, input
        sweeps.  ``lane_args`` / ``lane_inputs`` give each lane its own
        argument vector / input stream (the lane count is inferred from
        either); with neither, ``num_lanes`` identical replays of the
        registered benchmark run.  Returns one TraceStats per lane, each
        identical to what a single-stream :meth:`measure` emulation of that
        lane would record.  The engine subclass inherits this unchanged:
        batched lanes share one process and one decoded program by design.
        """
        from ..benchmarks import get_benchmark
        from ..emulator import BatchedMachine

        benchmark = get_benchmark(benchmark_name)
        program = self.compile(benchmark_name, profile)
        if num_lanes is None:
            if lane_args is not None:
                num_lanes = len(lane_args)
            elif lane_inputs is not None:
                num_lanes = len(lane_inputs)
            else:
                raise ValueError(
                    "num_lanes is required without lane_args/lane_inputs")
        machine = BatchedMachine(
            program, num_lanes, max_instructions=self.max_instructions,
            input_values=benchmark.inputs if lane_inputs is None else None,
            lane_inputs=lane_inputs)
        stats = machine.run(
            "main", args=benchmark.args if lane_args is None else None,
            lane_args=lane_args)
        if check_output and lane_args is None and lane_inputs is None and \
                benchmark.expected_output is not None:
            for lane, trace in enumerate(stats):
                if trace.output != benchmark.expected_output:
                    raise AssertionError(
                        f"{benchmark_name} under {profile.name}: lane {lane} "
                        f"output {trace.output} does not match expected "
                        f"{benchmark.expected_output}")
        return stats

    def measure_pairs(self, pairs: list[tuple[str, Profile]],
                      use_cache: bool = True,
                      on_error: str = "raise") -> list[Optional[Measurement]]:
        """Measure a batch of (benchmark, profile) jobs in submission order.

        This is the batch entry point the regenerators and the autotuner use;
        here it simply loops, while :class:`ExperimentEngine` overrides it to
        shard the batch across worker processes and an on-disk cache with the
        same deterministic result ordering.  With ``on_error="none"`` a
        failing job yields ``None`` instead of propagating (used by the
        autotuner, whose candidates may exceed the instruction budget);
        ``on_error="report"`` yields a structured
        :class:`~repro.experiments.faults.JobFailure` record instead.
        """
        results: list[Optional[Measurement]] = []
        for benchmark_name, profile in pairs:
            try:
                results.append(self.measure(benchmark_name, profile,
                                            use_cache=use_cache))
            except Exception as exc:
                if on_error == "none":
                    results.append(None)
                elif on_error == "report":
                    from .faults import failure_from_exception

                    results.append(failure_from_exception(
                        f"{benchmark_name}/{profile.name}", exc, attempts=1))
                else:
                    raise
        return results

    def measure_many(self, benchmark_names: list[str],
                     profiles: list[Profile]) -> list[Measurement]:
        """Measure the benchmark × profile cross product (benchmark-major)."""
        return self.measure_pairs([(benchmark_name, profile)
                                   for benchmark_name in benchmark_names
                                   for profile in profiles])

    def baseline(self, benchmark_name: str) -> Measurement:
        """The unoptimized reference measurement every gain is computed against."""
        return self.measure(benchmark_name, baseline_profile())

    # -- derived quantities ------------------------------------------------------
    def gain(self, benchmark_name: str, profile: Profile, zkvm: str,
             metric: str) -> float:
        """Percent improvement of ``profile`` over the baseline for a metric."""
        base = self.baseline(benchmark_name)
        value = self.measure(benchmark_name, profile)
        return percent_change(base.metric(zkvm, metric), value.metric(zkvm, metric))

    def cpu_gain(self, benchmark_name: str, profile: Profile) -> float:
        """Percent improvement over baseline on the x86 CPU timing model."""
        base = self.baseline(benchmark_name)
        value = self.measure(benchmark_name, profile)
        return percent_change(base.cpu.execution_time, value.cpu.execution_time)
