"""The 71 optimization profiles of the study.

A profile is a named compilation recipe: a list of passes (or a preset
level), the pass configuration, and which backend cost model to use.  The
paper evaluates 64 individual LLVM passes, six preset levels and an
unoptimized baseline; we expose every pass this reproduction implements plus
the same presets, and additionally the zkVM-aware -O3 of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backend.cost_model import CPU_COST_MODEL, ZKVM_COST_MODEL, TargetCostModel
from ..passes import (
    OPTIMIZATION_LEVELS, PassConfig, available_passes, config_for_level,
)


@dataclass(frozen=True)
class Profile:
    """One compilation recipe."""

    name: str
    passes: tuple[str, ...]
    config: PassConfig = field(default_factory=PassConfig)
    cost_model: TargetCostModel = CPU_COST_MODEL
    kind: str = "pass"  # "baseline" | "pass" | "level" | "zkvm-aware" | "custom"

    def describe(self) -> str:
        return f"{self.name} ({self.kind}): {', '.join(self.passes) or '<none>'}"


def baseline_profile() -> Profile:
    """No optimizations at all (the paper's reference point)."""
    return Profile(name="baseline", passes=(), kind="baseline")


def individual_pass_profiles() -> list[Profile]:
    """One profile per implemented pass, applied in isolation to -O0-style IR."""
    return [Profile(name=name, passes=(name,), kind="pass")
            for name in available_passes()]


def pass_profiles(passes=None) -> list[Profile]:
    """Single-pass profiles for the given pass names (all passes if None).

    The subset-selection helper shared by the figure/table regenerators.
    """
    if passes is None:
        return individual_pass_profiles()
    return [Profile(name=p, passes=(p,), kind="pass") for p in passes]


def level_profiles() -> list[Profile]:
    """The preset optimization levels -O0 ... -Oz."""
    profiles = []
    for level, passes in OPTIMIZATION_LEVELS.items():
        if level == "baseline":
            continue
        profiles.append(Profile(name=level, passes=tuple(passes),
                                config=config_for_level(level), kind="level"))
    return profiles


def zkvm_aware_profile(level: str = "-O3") -> Profile:
    """The paper's modified -O3 (Change Sets 1-3)."""
    passes = tuple(p for p in OPTIMIZATION_LEVELS[level]
                   if p not in ("speculative-execution",))
    return Profile(name=f"{level}-zkvm", passes=passes,
                   config=config_for_level(level, zkvm_aware=True),
                   cost_model=ZKVM_COST_MODEL, kind="zkvm-aware")


def custom_profile(name: str, passes: list[str],
                   config: PassConfig | None = None,
                   zkvm_aware_backend: bool = False) -> Profile:
    """A caller-defined pass sequence (used by the autotuner)."""
    return Profile(name=name, passes=tuple(passes), config=config or PassConfig(),
                   cost_model=ZKVM_COST_MODEL if zkvm_aware_backend else CPU_COST_MODEL,
                   kind="custom")


def all_study_profiles() -> list[Profile]:
    """Baseline + every individual pass + every preset level (the RQ1/RQ2 matrix)."""
    return [baseline_profile(), *individual_pass_profiles(), *level_profiles()]


def profile_by_name(name: str) -> Profile:
    """Look up any study profile (baseline, a pass, a level, or ``-O3-zkvm``)."""
    for profile in [*all_study_profiles(), zkvm_aware_profile()]:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown profile: {name}")
