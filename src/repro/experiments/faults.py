"""Fault tolerance primitives for the experiment engine.

Long campaigns (figure regenerations, autotune generations, thousand-seed
fuzzing runs) are exactly the workloads where individual worker failures stop
being exceptional: a candidate that compiles into a pathological program can
hang its worker, an OOM-killed process takes the whole pool down with it, and
a flaky filesystem turns one cache write into a lost batch.  This module
gives :class:`~repro.experiments.engine.ExperimentEngine` the vocabulary to
treat those events as data instead of crashes:

:class:`RetryPolicy`
    Bounded retries with exponential backoff and *deterministic* seeded
    jitter (two runs of the same campaign sleep the same amounts), plus the
    transient-vs-permanent error classification that decides which failures
    are worth retrying at all.
:class:`JobFailure`
    The structured quarantine record a failing job resolves to: job
    identity, failure stage, attempt count, classification and the worker
    traceback.  Batch APIs return these instead of silently mapping a
    poisoned job to ``None``.
:class:`FaultPlan` / :func:`fault_point`
    A deterministic fault-injection harness for the chaos test suite.  A
    plan is a list of :class:`FaultSpec` triggers matched at named injection
    points inside the worker entry points and the measurement cache; each
    spec fires a bounded number of times (counted across processes through
    exclusive marker files), so every degradation path the engine claims to
    survive is exercised by tests rather than trusted on faith.

Nothing in this module imports the rest of the package, so the cache, the
engine and the campaign drivers can all use it without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional


class TransientError(RuntimeError):
    """Base class for errors that are worth retrying by default."""


class InjectedTransientError(TransientError):
    """Raised by the fault-injection harness for retryable failures."""


class InjectedPermanentError(RuntimeError):
    """Raised by the fault-injection harness for non-retryable failures."""


#: Exception types classified as transient out of the box.  Deliberately
#: narrow: a ValueError from a miscompiled candidate will fail identically on
#: every retry, so only plumbing-shaped errors (connections, timeouts, our
#: own marker class) default to "try again".
TRANSIENT_ERROR_TYPES: tuple = (TransientError, ConnectionError, TimeoutError,
                                InterruptedError)


def classify_error(exc: BaseException, extra_transient: tuple = ()) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"`` (deterministic)."""
    if isinstance(exc, TRANSIENT_ERROR_TYPES + tuple(extra_transient)):
        return "transient"
    return "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry behaviour for one engine.

    ``max_attempts`` counts the first attempt: the default of 3 means one
    run plus up to two retries.  Delays grow as
    ``base_delay * backoff**(attempt-1)`` capped at ``max_delay``, then
    shrink by up to ``jitter`` (a fraction) using a hash of
    ``(seed, job key, attempt)`` — deterministic per campaign, decorrelated
    across jobs, so retry storms never re-synchronize.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    #: Whether a job that exceeded the wall-clock timeout is retried (its
    #: next attempt may hit a healthier worker) or quarantined immediately.
    retry_timeouts: bool = True
    #: Extra exception types this policy treats as transient.
    transient_types: tuple = ()

    def classify(self, exc: BaseException) -> str:
        return classify_error(exc, self.transient_types)

    def should_retry(self, classification: str, attempts: int) -> bool:
        """Whether a job with ``attempts`` runs so far deserves another."""
        if attempts >= self.max_attempts:
            return False
        if classification == "transient":
            return True
        return classification == "timeout" and self.retry_timeouts

    def delay_for(self, key: str, attempts: int) -> float:
        """Seconds to sleep before re-running ``key`` after ``attempts`` runs."""
        base = min(self.max_delay,
                   self.base_delay * self.backoff ** max(0, attempts - 1))
        if base <= 0 or self.jitter <= 0:
            return max(0.0, base)
        digest = hashlib.sha256(
            f"{self.seed}\x1e{key}\x1e{attempts}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 - self.jitter * fraction)


@dataclass
class JobFailure:
    """Structured record of one job the engine gave up on.

    Returned by the batch APIs (``on_error="report"``) and accumulated on
    ``engine.failures`` so a campaign can report *which* job failed, at what
    stage, after how many attempts — instead of a bare ``None``.
    """

    #: Human-readable job identity, e.g. ``"fibonacci/-O3"`` or ``"shard-7"``.
    job: str
    #: Where the job died: ``compute`` (raised in the worker), ``timeout``
    #: (exceeded the wall-clock budget), ``pool-kill`` (killed its worker
    #: process and was bisected out as the poison job).
    stage: str
    attempts: int
    #: ``transient`` / ``permanent`` / ``timeout`` / ``crash``.
    classification: str
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    #: The original exception when one exists (compute failures); carried so
    #: ``on_error="raise"`` can re-raise it, excluded from the dict form.
    exception: Optional[BaseException] = field(default=None, repr=False,
                                               compare=False)

    def as_dict(self) -> dict:
        return {"job": self.job, "stage": self.stage,
                "attempts": self.attempts,
                "classification": self.classification,
                "error_type": self.error_type, "message": self.message,
                "traceback": self.traceback}

    def to_exception(self) -> BaseException:
        """The original exception, or a :class:`PoisonJobError` wrapper."""
        if self.exception is not None:
            return self.exception
        return PoisonJobError(self)


class PoisonJobError(RuntimeError):
    """Raised (``on_error="raise"``) for a quarantined job with no exception
    object of its own — timeouts and worker-killing poison jobs."""

    def __init__(self, failure: JobFailure):
        super().__init__(
            f"job {failure.job!r} quarantined after {failure.attempts} "
            f"attempt(s): {failure.stage} ({failure.message or 'no detail'})")
        self.failure = failure


def failure_from_exception(job: str, exc: BaseException, attempts: int,
                           stage: str = "compute",
                           classification: Optional[str] = None) -> JobFailure:
    """Wrap a raised exception into a :class:`JobFailure` record."""
    if classification is None:
        classification = classify_error(exc)
    # Worker exceptions surfaced through concurrent.futures carry the remote
    # traceback as a chained _RemoteTraceback; format_exception renders both.
    tb = "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))
    return JobFailure(job=job, stage=stage, attempts=attempts,
                      classification=classification,
                      error_type=type(exc).__name__, message=str(exc),
                      traceback=tb, exception=exc)


# -- deterministic fault injection --------------------------------------------
#: Environment variable carrying the path of the active plan's JSON file.
#: Worker processes inherit it (fork) or receive it through the pool
#: initializer, so injection points fire on both sides of the pool boundary.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Recognized spec actions.
FAULT_ACTIONS = ("transient", "permanent", "hang", "kill", "corrupt")


@dataclass
class FaultSpec:
    """One trigger: at injection point ``point``, for job keys matching the
    glob ``match``, perform ``action`` the first ``times`` times seen
    (counted across every process sharing the plan)."""

    point: str
    match: str = "*"
    action: str = "transient"
    times: int = 1
    #: Seconds for ``hang`` (default 3600) and pre-``kill`` delay.
    arg: float = 0.0

    def as_dict(self) -> dict:
        return {"point": self.point, "match": self.match,
                "action": self.action, "times": self.times, "arg": self.arg}


class FaultPlan:
    """A deterministic set of faults to inject, shared across processes.

    ``install()`` serializes the plan next to its cross-process fire-counter
    directory and exports :data:`FAULT_PLAN_ENV`; ``remove()`` undoes it.
    Tests use it as a context manager::

        with FaultPlan([FaultSpec("measure-job", match="fib*",
                                  action="transient", times=2)],
                       state_dir=tmp_path):
            ...

    Fire counting claims one ``O_CREAT|O_EXCL`` marker file per shot, so a
    spec with ``times=2`` fires exactly twice even when the matching calls
    race across worker processes.
    """

    def __init__(self, specs, state_dir):
        self.specs = list(specs)
        self.state_dir = Path(state_dir)
        self.plan_path = self.state_dir / "fault-plan.json"

    def install(self) -> "FaultPlan":
        (self.state_dir / "fired").mkdir(parents=True, exist_ok=True)
        self.plan_path.write_text(json.dumps(
            {"state_dir": str(self.state_dir),
             "specs": [spec.as_dict() for spec in self.specs]}))
        os.environ[FAULT_PLAN_ENV] = str(self.plan_path)
        return self

    def remove(self) -> None:
        os.environ.pop(FAULT_PLAN_ENV, None)

    def __enter__(self) -> "FaultPlan":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.remove()

    # -- loading / firing (also used in worker processes) ---------------------
    @classmethod
    def _from_file(cls, path: str) -> Optional["FaultPlan"]:
        try:
            payload = json.loads(Path(path).read_text())
            return cls([FaultSpec(**spec) for spec in payload["specs"]],
                       payload["state_dir"])
        except Exception:
            return None  # stale env var / deleted tmpdir: injection disabled

    def _claim(self, spec_index: int, times: int) -> bool:
        """Atomically claim one of ``times`` shots for spec ``spec_index``."""
        fired = self.state_dir / "fired"
        for shot in range(times):
            try:
                fd = os.open(fired / f"{spec_index}.{shot}",
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def fire(self, point: str, key: str, path=None) -> None:
        for index, spec in enumerate(self.specs):
            if spec.point != point or not fnmatch(key, spec.match):
                continue
            if not self._claim(index, max(1, spec.times)):
                continue
            self._act(spec, point, key, path)

    @staticmethod
    def _act(spec: FaultSpec, point: str, key: str, path) -> None:
        where = f"{point}/{key}"
        if spec.action == "transient":
            raise InjectedTransientError(f"injected transient fault at {where}")
        if spec.action == "permanent":
            raise InjectedPermanentError(f"injected permanent fault at {where}")
        if spec.action == "hang":
            time.sleep(spec.arg or 3600.0)
        elif spec.action == "kill":
            if spec.arg:
                time.sleep(spec.arg)
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.action == "corrupt" and path is not None:
            Path(path).write_bytes(b"\x00corrupted-by-fault-plan")


#: Per-process cache of the parsed active plan, keyed by the env var value.
_ACTIVE_PLAN: tuple = (None, None)


def fault_point(point: str, key: str, path=None) -> None:
    """Injection hook: a no-op unless a :class:`FaultPlan` is installed.

    Sprinkled through the worker entry points (``measure-job``,
    ``fuzz-shard``) and the measurement cache (``cache-put``); ``path``
    gives file-targeting actions (``corrupt``) something to damage.
    """
    plan_path = os.environ.get(FAULT_PLAN_ENV)
    if not plan_path:
        return
    global _ACTIVE_PLAN
    if _ACTIVE_PLAN[0] != plan_path:
        _ACTIVE_PLAN = (plan_path, FaultPlan._from_file(plan_path))
    plan = _ACTIVE_PLAN[1]
    if plan is not None:
        plan.fire(point, key, path)


def worker_fault_init(plan_path: Optional[str]) -> None:
    """Pool-worker initializer: re-export the active plan's env var.

    Fork workers inherit the parent environment anyway; this keeps injection
    working under spawn/forkserver start methods too.
    """
    if plan_path:
        os.environ[FAULT_PLAN_ENV] = plan_path


__all__ = [
    "FAULT_ACTIONS", "FAULT_PLAN_ENV", "FaultPlan", "FaultSpec",
    "InjectedPermanentError", "InjectedTransientError", "JobFailure",
    "PoisonJobError", "RetryPolicy", "TRANSIENT_ERROR_TYPES",
    "TransientError", "classify_error", "failure_from_exception",
    "fault_point", "worker_fault_init",
]
