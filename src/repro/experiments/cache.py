"""Content-addressed on-disk cache for benchmark measurements.

A :class:`~repro.experiments.runner.Measurement` is a pure function of

* the benchmark's source text (plus its declared args/inputs/expected output),
* the optimization profile's pass list, :class:`~repro.passes.PassConfig`
  knobs and backend :class:`~repro.backend.cost_model.TargetCostModel`, and
* the analytic cost models (RISC Zero, SP1, the x86 CPU model) together with
  the emulator's instruction budget.

:func:`measurement_fingerprint` hashes exactly those ingredients, so the cache
key is independent of the profile's *name*: an autotuner candidate that
rediscovers the ``-O2`` pass list hits the cache entry the level sweep already
paid for, while any change to a threshold, a model parameter or a benchmark
source invalidates only the affected entries.

Entries are pickled ``(schema_version, Measurement)`` envelopes stored under
``<root>/<2-hex-shard>/<sha256>.pkl``.  Writes are atomic (temp file +
``os.replace``) so concurrent engines sharing one cache directory never
observe torn entries; corrupt, truncated, unreadable or wrong-schema entries
are treated as misses, counted on ``stats.errors`` and evicted, so a damaged
cache always degrades to recomputation instead of failing runs
(``repro cache verify`` runs that eviction as a batch scan).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..cpu import DEFAULT_CPU
from ..zkvm.models import COST_MODEL_VERSION, ZKVMS
from .faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..benchmarks import Benchmark
    from .profiles import Profile
    from .runner import Measurement

#: Bump when the on-disk entry format (or Measurement's shape) changes.
#: Version 2 wraps every entry in a ``(schema, measurement)`` envelope so a
#: reader can reject entries written by an incompatible format instead of
#: unpickling them blind.  Version 3 adds ``Measurement.code_bytes`` (the
#: byte-accurate RV32/RVC code-size pair).
CACHE_SCHEMA_VERSION = 3


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/measurements``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "measurements"


@lru_cache(maxsize=1)
def _environment_blob() -> str:
    """Serialized cost-model environment (constant for a process lifetime)."""
    return json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "cost_model_version": COST_MODEL_VERSION,
        "zkvms": {name: repr(model) for name, model in sorted(ZKVMS.items())},
        "cpu": repr(DEFAULT_CPU),
    }, sort_keys=True)


@lru_cache(maxsize=None)
def _benchmark_blob(benchmark: "Benchmark") -> str:
    """Serialized benchmark identity (registry entries are immutable)."""
    return json.dumps({
        "source": benchmark.source,
        "args": benchmark.args,
        "inputs": benchmark.inputs,
        "expected_output": benchmark.expected_output,
    }, sort_keys=True)


def profile_recipe(profile: "Profile") -> dict:
    """The profile ingredients that shape generated code (name excluded).

    Single source of truth shared by :func:`measurement_fingerprint` and the
    runner's compiled-program cache key, so a new code-shaping ``Profile``
    field can never invalidate one cache but not the other.
    """
    return {
        "passes": profile.passes,
        "config": asdict(profile.config),
        "cost_model": asdict(profile.cost_model),
    }


def measurement_fingerprint(benchmark: "Benchmark", profile: "Profile",
                            max_instructions: int, verify: bool = False,
                            seed_backend: bool = False,
                            translate: bool = False) -> str:
    """Content hash identifying one measurement.

    Every ingredient that can change the resulting numbers is included —
    the ``seed_backend`` escape hatch among them, since the seed and
    optimizing backends emit different code; the profile's display name
    deliberately is *not*, so identically configured profiles share one
    entry.  The environment and benchmark components are memoized — per call
    only the (small) profile recipe is serialized — so cache probes stay
    cheap on regenerator hot paths.
    """
    recipe = {
        **profile_recipe(profile),
        "max_instructions": max_instructions,
        "verify": verify,
        "backend": "seed" if seed_backend else "opt",
    }
    if translate:
        # Translated measurements carry no CPU-model metrics (the timing
        # model needs per-instruction observer events), so they must not
        # share cache entries with interpreter measurements.  Keyed only
        # when set so existing cache entries stay valid.
        recipe["engine"] = "translated"
    profile_blob = json.dumps(recipe, sort_keys=True, default=repr)
    blob = "\x1e".join([_environment_blob(), _benchmark_blob(benchmark),
                        profile_blob])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`MeasurementCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors}


class MeasurementCache:
    """Persistent measurement store shared by every engine on this machine.

    ``get``/``put`` are keyed by :func:`measurement_fingerprint` digests.
    The cache is safe to share between processes: entries are immutable once
    written and writes are atomic renames.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # -- key -> path ---------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where an entry with digest ``key`` lives (sharded by prefix)."""
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # -- lookup / store ------------------------------------------------------
    def get(self, key: str) -> Optional["Measurement"]:
        """The cached measurement for ``key``, or None on a miss.

        Unreadable, truncated, corrupt or wrong-schema entries count as
        misses (and are removed), so a damaged cache degrades to
        recomputation instead of failing runs.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
            if not (isinstance(envelope, tuple) and len(envelope) == 2
                    and envelope[0] == CACHE_SCHEMA_VERSION):
                raise ValueError(f"cache entry schema mismatch: {envelope!r:.60}")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return envelope[1]

    def put(self, key: str, measurement: "Measurement") -> None:
        """Persist ``measurement`` under ``key`` (atomic, last-writer-wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((CACHE_SCHEMA_VERSION, measurement), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except Exception:
            self.stats.errors += 1
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        self.stats.stores += 1
        # Chaos-suite hook: lets a FaultPlan damage the entry it just wrote,
        # proving the read path degrades to a miss + recompute.
        fault_point("cache-put", key, path=path)

    # -- maintenance ---------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size_report(self) -> dict:
        """Entry count and on-disk footprint (``repro cache stats``)."""
        entries = 0
        size = 0
        for path in self.root.glob("*/*.pkl"):
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return {"root": str(self.root), "schema": CACHE_SCHEMA_VERSION,
                "entries": entries, "bytes": size,
                "stats": self.stats.as_dict()}

    def verify(self) -> dict:
        """Load-check every entry, evicting damaged ones.

        Each entry goes through the normal :meth:`get` path, so corrupt,
        truncated or wrong-schema files are removed and counted on
        ``stats.errors`` exactly as a cache probe would have done — this is
        simply that degradation run eagerly over the whole store
        (``repro cache verify``).
        """
        checked = ok = corrupt_removed = 0
        for path in sorted(self.root.glob("*/*.pkl")):
            checked += 1
            errors_before = self.stats.errors
            if (self.get(path.stem) is not None
                    and self.stats.errors == errors_before):
                ok += 1
            elif not path.exists():
                corrupt_removed += 1
        return {"root": str(self.root), "checked": checked, "ok": ok,
                "corrupt_removed": corrupt_removed,
                "errors": self.stats.errors}


__all__ = ["CACHE_SCHEMA_VERSION", "CacheStats", "MeasurementCache",
           "default_cache_dir", "measurement_fingerprint"]
