"""Regenerators for every figure in the paper's evaluation.

Each function returns plain Python data (rows / series) shaped like the
corresponding figure, so the pytest-benchmark targets and EXPERIMENTS.md can
print them.  All regenerators take ``benchmarks``/``passes`` subsets and reuse
one :class:`BenchmarkRunner`, so small slices run quickly and the full matrix
is just "pass all names".

Every regenerator first submits its full (benchmark, profile) matrix as one
batch through the runner's ``measure_pairs`` API
(:func:`~repro.experiments.runner.warm_matrix`).  With
a plain :class:`BenchmarkRunner` that is a serial warm-up; with an
:class:`~repro.experiments.engine.ExperimentEngine` the batch is sharded
across worker processes and persisted to the on-disk measurement cache, so
first runs parallelize and repeat runs recompute nothing.  ``python -m repro
figure N`` wires an engine in for exactly this reason.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.stats import mean
from ..benchmarks import all_benchmark_names, benchmarks_in_suite
from .profiles import (
    Profile, baseline_profile, level_profiles, pass_profiles, profile_by_name,
    zkvm_aware_profile,
)
from .runner import BenchmarkRunner, percent_change, warm_matrix

#: Small-but-representative default slices so every regenerator runs in seconds.
DEFAULT_BENCHMARKS = [
    "fibonacci", "loop-sum", "factorial", "tailcall",
    "polybench-gemm", "polybench-floyd-warshall", "polybench-trmm",
    "npb-lu", "npb-is", "sha256", "regex-match",
]
DEFAULT_PASSES = [
    "inline", "always-inline", "gvn", "jump-threading", "instcombine",
    "simplifycfg", "tailcall", "sroa", "early-cse", "sccp", "mem2reg",
    "reg2mem", "loop-rotate", "loop-extract", "licm", "loop-unroll",
]


def figure3_pass_impact(runner: Optional[BenchmarkRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None,
                        passes: Optional[Sequence[str]] = None,
                        top_n: int = 25) -> dict:
    """Figure 3: average impact of individual passes on execution time,
    proving time and cycle count, per zkVM, relative to the baseline."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = pass_profiles(passes)
    warm_matrix(runner, benchmarks, profiles)
    metrics = {"execution_time": "execution time", "proving_time": "proving time",
               "total_cycles": "cycle count"}
    results: dict = {"risc0": {}, "sp1": {}}
    impact_by_pass: dict[str, list[float]] = {}

    for zkvm in ("risc0", "sp1"):
        for metric in metrics:
            series = {}
            for profile in profiles:
                gains = [runner.gain(b, profile, zkvm, metric) for b in benchmarks]
                series[profile.name] = {"mean": mean(gains), "per_benchmark": gains}
                impact_by_pass.setdefault(profile.name, []).append(abs(mean(gains)))
            results[zkvm][metric] = series

    ranked = sorted(impact_by_pass, key=lambda p: -mean(impact_by_pass[p]))[:top_n]
    results["top_passes"] = ranked
    return results


def figure4_effect_categories(runner: Optional[BenchmarkRunner] = None,
                              benchmarks: Optional[Sequence[str]] = None,
                              passes: Optional[Sequence[str]] = None) -> dict:
    """Figure 4: per pass, the number of programs with severe/moderate
    gains/losses in execution and proving time."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = pass_profiles(passes)
    warm_matrix(runner, benchmarks, profiles)
    buckets = {"severe_loss": lambda g: g <= -5.0,
               "moderate_loss": lambda g: -5.0 < g <= -2.0,
               "moderate_gain": lambda g: 2.0 <= g < 5.0,
               "severe_gain": lambda g: g >= 5.0}
    results: dict = {}
    for zkvm in ("risc0", "sp1"):
        for metric in ("execution_time", "proving_time"):
            table = {}
            for profile in profiles:
                counts = {bucket: 0 for bucket in buckets}
                for benchmark in benchmarks:
                    gain = runner.gain(benchmark, profile, zkvm, metric)
                    for bucket, test in buckets.items():
                        if test(gain):
                            counts[bucket] += 1
                table[profile.name] = counts
            results[(zkvm, metric)] = table
    return results


def figure5_optimization_levels(runner: Optional[BenchmarkRunner] = None,
                                benchmarks: Optional[Sequence[str]] = None) -> dict:
    """Figure 5: impact of -O0..-Os on execution and proving time, per zkVM."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    warm_matrix(runner, benchmarks, level_profiles())
    results: dict = {}
    for profile in level_profiles():
        row = {}
        for zkvm in ("risc0", "sp1"):
            for metric in ("execution_time", "proving_time"):
                gains = [runner.gain(b, profile, zkvm, metric) for b in benchmarks]
                row[(zkvm, metric)] = mean(gains)
        results[profile.name] = row
    return results


def figure6_autotuning(benchmarks: Optional[Sequence[str]] = None,
                       iterations: int = 12, seed: int = 1,
                       runner: Optional[BenchmarkRunner] = None) -> dict:
    """Figure 6: autotuning speedup over -O3 for the NPB and crypto suites."""
    from ..autotuner import GeneticAutotuner

    runner = runner or BenchmarkRunner()
    if benchmarks is None:
        benchmarks = benchmarks_in_suite("npb")[:2] + benchmarks_in_suite("crypto")[:2]
    # The tuner's reference points; each generation then batches its own shard.
    warm_matrix(runner, benchmarks, [profile_by_name("-O3")])
    results = {}
    for zkvm in ("risc0", "sp1"):
        tuner = GeneticAutotuner(runner=runner, seed=seed, zkvm=zkvm)
        for benchmark in benchmarks:
            outcome = tuner.tune(benchmark, iterations=iterations)
            results[(zkvm, benchmark)] = {
                "gain_over_o3_percent": outcome.gain_over_o3_percent,
                "speedup_over_o3": outcome.speedup_over_o3,
                "best_passes": list(outcome.best.passes),
            }
    return results


def figure7_zkvm_vs_x86(runner: Optional[BenchmarkRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None,
                        passes: Optional[Sequence[str]] = None) -> dict:
    """Figure 7: average impact of each optimization on zkVM execution,
    proving, and x86 execution time."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = [*level_profiles(), *pass_profiles(passes or DEFAULT_PASSES)]
    warm_matrix(runner, benchmarks, profiles)
    results = {}
    for profile in profiles:
        zkvm_exec = mean([mean([runner.gain(b, profile, z, "execution_time")
                                for z in ("risc0", "sp1")]) for b in benchmarks])
        zkvm_prove = mean([mean([runner.gain(b, profile, z, "proving_time")
                                 for z in ("risc0", "sp1")]) for b in benchmarks])
        x86 = mean([runner.cpu_gain(b, profile) for b in benchmarks])
        results[profile.name] = {"zkvm_execution": zkvm_exec,
                                 "zkvm_proving": zkvm_prove,
                                 "x86_execution": x86}
    return results


def figure8_divergence(runner: Optional[BenchmarkRunner] = None,
                       benchmarks: Optional[Sequence[str]] = None,
                       passes: Optional[Sequence[str]] = None,
                       zkvm: str = "risc0") -> dict:
    """Figure 8: per pass, how often its effect diverges between x86 and the
    zkVM (gains on one, losses on the other, or much larger gains on one)."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    profiles = pass_profiles(passes or DEFAULT_PASSES)
    warm_matrix(runner, benchmarks, profiles)
    results = {}
    for profile in profiles:
        counts = {"zkvm_up_x86_down": 0, "zkvm_gain_larger": 0,
                  "x86_gain_larger": 0, "x86_up_zkvm_down": 0}
        for benchmark in benchmarks:
            zk = runner.gain(benchmark, profile, zkvm, "execution_time")
            cpu = runner.cpu_gain(benchmark, profile)
            if zk > 0 and cpu < 0:
                counts["zkvm_up_x86_down"] += 1
            elif cpu > 0 and zk < 0:
                counts["x86_up_zkvm_down"] += 1
            elif zk > 0 and cpu > 0 and zk - cpu > 5:
                counts["zkvm_gain_larger"] += 1
            elif zk > 0 and cpu > 0 and cpu - zk > 5:
                counts["x86_gain_larger"] += 1
        results[profile.name] = counts
    return results


def figure9_cost_components(runner: Optional[BenchmarkRunner] = None,
                            benchmarks: Optional[Sequence[str]] = None,
                            profiles: Optional[Sequence[str]] = None) -> dict:
    """Figure 9: for representative passes, the change in proving/execution
    time alongside total cycles, dynamic instructions and paging cycles."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or ["polybench-floyd-warshall", "factorial",
                                     "npb-lu", "polybench-trmm", "tailcall"])
    profile_names = list(profiles or ["inline", "always-inline", "loop-extract",
                                      "licm", "-O3", "-O0"])
    warm_matrix(runner, benchmarks, [profile_by_name(n) for n in profile_names])
    results = {}
    for name in profile_names:
        profile = profile_by_name(name)
        per_benchmark = {}
        for benchmark in benchmarks:
            base = runner.baseline(benchmark)
            value = runner.measure(benchmark, profile)
            per_benchmark[benchmark] = {
                "exec_gain": percent_change(base.risc0.execution_time,
                                            value.risc0.execution_time),
                "prove_gain": percent_change(base.risc0.proving_time,
                                             value.risc0.proving_time),
                "total_cycles_change": -percent_change(base.risc0.total_cycles,
                                                       value.risc0.total_cycles),
                "instructions_change": -percent_change(base.instructions,
                                                       value.instructions),
                "paging_cycles_change": -percent_change(max(1, base.risc0.paging_cycles),
                                                        max(1, value.risc0.paging_cycles)),
            }
        results[name] = per_benchmark
    return results


def figure14_zkvm_aware(runner: Optional[BenchmarkRunner] = None,
                        benchmarks: Optional[Sequence[str]] = None) -> dict:
    """Figure 14: zkVM-aware -O3 (Change Sets 1-3) vs vanilla -O3."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    vanilla = profile_by_name("-O3")
    modified = zkvm_aware_profile("-O3")
    warm_matrix(runner, benchmarks, [vanilla, modified], include_baseline=False)
    results = {}
    for benchmark in benchmarks:
        row = {}
        for zkvm in ("risc0", "sp1"):
            for metric in ("execution_time", "proving_time"):
                before = runner.measure(benchmark, vanilla).metric(zkvm, metric)
                after = runner.measure(benchmark, modified).metric(zkvm, metric)
                row[(zkvm, metric)] = percent_change(before, after)
        before_instr = runner.measure(benchmark, vanilla).instructions
        after_instr = runner.measure(benchmark, modified).instructions
        row["instruction_reduction"] = percent_change(before_instr, after_instr)
        results[benchmark] = row
    return results


def figure15_native_vs_zkvm(runner: Optional[BenchmarkRunner] = None,
                            benchmarks: Optional[Sequence[str]] = None) -> dict:
    """Figure 15 (Appendix A): zkVM execution and proving vs native execution,
    unoptimized, for the NPB suite."""
    runner = runner or BenchmarkRunner()
    benchmarks = list(benchmarks or benchmarks_in_suite("npb"))
    base = baseline_profile()
    warm_matrix(runner, benchmarks, [], include_baseline=True)
    results = {}
    for benchmark in benchmarks:
        m = runner.measure(benchmark, base)
        results[benchmark] = {
            "native_execution_s": m.cpu.execution_time,
            "risc0_execution_s": m.risc0.execution_time,
            "risc0_proving_s": m.risc0.proving_time,
            "sp1_execution_s": m.sp1.execution_time,
            "sp1_proving_s": m.sp1.proving_time,
        }
    return results
