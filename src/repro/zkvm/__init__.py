"""zkVM models: execution-trace accounting, paging, cycle models and proving
cost models for the two zkVMs the paper studies (RISC Zero and SP1)."""

from .models import RISC_ZERO, SP1, ZKVMS, ZkvmMetrics, ZkvmModel
from .precompiles import (
    HOST_CALLS, PRECOMPILES, PRECOMPILE_CYCLES, interpret_host_call, make_signature,
)

__all__ = [
    "RISC_ZERO", "SP1", "ZKVMS", "ZkvmMetrics", "ZkvmModel",
    "HOST_CALLS", "PRECOMPILES", "PRECOMPILE_CYCLES",
    "interpret_host_call", "make_signature",
]
