"""Host calls and precompiles exposed to guest programs.

Real zkVMs expose *precompiles*: built-in circuits for expensive primitives
(SHA-2, Keccak, elliptic-curve signature verification) that replace thousands
of guest instructions with a fixed, much smaller proving cost.  Guest
programs reach them through ecalls.

We model the same interface.  A host call is identified by a ``__``-prefixed
name; both the IR interpreter and the RISC-V emulator dispatch to
:func:`interpret_host_call`, so the observable semantics are identical on
both execution paths (which is what the differential tests rely on).

The cryptographic precompiles are deterministic stand-ins (hashlib-backed
digests, hash-based signature checks).  They are not cryptographically
faithful — the paper's study only needs their *cost structure*: a constant,
comparatively small cycle charge instead of a long instruction sequence.
"""

from __future__ import annotations

import hashlib
from typing import Protocol


class GuestMemory(Protocol):
    """The memory/output interface a machine must expose to host calls."""

    output: list[int]

    def _read_word(self, address: int) -> int: ...

    def _write_word(self, address: int, value: int) -> None: ...


#: Names of every host call the guest ABI defines.
HOST_CALLS = frozenset({
    "__print",
    "__sha256",
    "__keccak256",
    "__ecdsa_verify",
    "__eddsa_verify",
    "__bigint_modmul",
    "__read_input",
})

#: Argument count of each host call (how many ``a0..a3`` registers the
#: emulator must marshal into :func:`interpret_host_call`).  Module-level so
#: the emulators look it up instead of rebuilding a dict per ecall.
HOST_CALL_ARITY = {
    "__print": 1,
    "__read_input": 1,
    "__sha256": 3,
    "__keccak256": 3,
    "__ecdsa_verify": 3,
    "__eddsa_verify": 3,
    "__bigint_modmul": 4,
}

#: Host calls that are accelerated by a precompile circuit (everything except
#: plain I/O).  Used by the zkVM cycle models.
PRECOMPILES = frozenset({
    "__sha256", "__keccak256", "__ecdsa_verify", "__eddsa_verify", "__bigint_modmul",
})

#: Cycle cost charged per precompile invocation, per zkVM.  The RISC Zero
#: numbers follow the guest optimization guide's order of magnitude (a SHA-256
#: block costs ~68 cycles in the accelerated circuit vs ~5k emulated); SP1's
#: precompiles are charged in its own units.
PRECOMPILE_CYCLES = {
    "risc0": {
        "__sha256": 68,
        "__keccak256": 90,
        "__ecdsa_verify": 6_000,
        "__eddsa_verify": 5_000,
        "__bigint_modmul": 230,
    },
    "sp1": {
        "__sha256": 80,
        "__keccak256": 100,
        "__ecdsa_verify": 7_000,
        "__eddsa_verify": 5_500,
        "__bigint_modmul": 260,
    },
}


def _read_words(machine: GuestMemory, address: int, count: int) -> list[int]:
    return [machine._read_word(address + 4 * i) for i in range(count)]


def _write_words(machine: GuestMemory, address: int, words: list[int]) -> None:
    for i, word in enumerate(words):
        machine._write_word(address + 4 * i, word & 0xFFFFFFFF)


def _words_to_bytes(words: list[int]) -> bytes:
    return b"".join(int(w & 0xFFFFFFFF).to_bytes(4, "big") for w in words)


def _bytes_to_words(data: bytes) -> list[int]:
    return [int.from_bytes(data[i:i + 4], "big") for i in range(0, len(data), 4)]


def _digest_words(machine: GuestMemory, in_ptr: int, num_words: int,
                  algorithm: str) -> list[int]:
    data = _words_to_bytes(_read_words(machine, in_ptr, num_words))
    digest = hashlib.new(algorithm, data).digest()
    return _bytes_to_words(digest)


def interpret_host_call(name: str, args: list[int], machine: GuestMemory) -> int:
    """Execute a host call against ``machine``'s memory; return the result word."""
    if name == "__print":
        value = args[0] & 0xFFFFFFFF
        if value >= 1 << 31:
            value -= 1 << 32
        machine.output.append(value)
        return 0

    if name == "__read_input":
        index = args[0]
        inputs = getattr(machine, "input_values", None)
        if inputs is not None and 0 <= index < len(inputs):
            return inputs[index] & 0xFFFFFFFF
        # Deterministic pseudo-random default input stream.
        return (index * 2654435761 + 12345) & 0xFFFFFFFF

    if name == "__sha256":
        in_ptr, num_words, out_ptr = args
        _write_words(machine, out_ptr, _digest_words(machine, in_ptr, num_words, "sha256"))
        return 0

    if name == "__keccak256":
        in_ptr, num_words, out_ptr = args
        _write_words(machine, out_ptr, _digest_words(machine, in_ptr, num_words, "sha3_256"))
        return 0

    if name == "__ecdsa_verify":
        # Stand-in verification: sig must equal H(msg || key) truncated to 8 words.
        msg_ptr, key_ptr, sig_ptr = args
        msg = _words_to_bytes(_read_words(machine, msg_ptr, 8))
        key = _words_to_bytes(_read_words(machine, key_ptr, 8))
        expected = _bytes_to_words(hashlib.sha256(msg + key).digest())
        actual = _read_words(machine, sig_ptr, 8)
        return int(expected == actual)

    if name == "__eddsa_verify":
        msg_ptr, key_ptr, sig_ptr = args
        msg = _words_to_bytes(_read_words(machine, msg_ptr, 8))
        key = _words_to_bytes(_read_words(machine, key_ptr, 8))
        expected = _bytes_to_words(hashlib.sha512(msg + key).digest()[:32])
        actual = _read_words(machine, sig_ptr, 8)
        return int(expected == actual)

    if name == "__bigint_modmul":
        # 256-bit modular multiplication: out = (a * b) mod m, 8 words each, little-endian words.
        a_ptr, b_ptr, m_ptr, out_ptr = args
        def read_bigint(ptr: int) -> int:
            words = _read_words(machine, ptr, 8)
            return sum(w << (32 * i) for i, w in enumerate(words))
        a, b, m = read_bigint(a_ptr), read_bigint(b_ptr), read_bigint(m_ptr)
        result = (a * b) % m if m != 0 else 0
        _write_words(machine, out_ptr, [(result >> (32 * i)) & 0xFFFFFFFF for i in range(8)])
        return 0

    raise ValueError(f"unknown host call: {name}")


def make_signature(message_words: list[int], key_words: list[int],
                   scheme: str = "ecdsa") -> list[int]:
    """Produce the signature words that the stand-in verifier accepts.

    Benchmarks use this helper (at build time, from Python) to embed valid
    signatures as global initializers so that the guest-side verification
    succeeds.
    """
    msg = _words_to_bytes([w & 0xFFFFFFFF for w in message_words])
    key = _words_to_bytes([w & 0xFFFFFFFF for w in key_words])
    if scheme == "ecdsa":
        return _bytes_to_words(hashlib.sha256(msg + key).digest())
    if scheme == "eddsa":
        return _bytes_to_words(hashlib.sha512(msg + key).digest()[:32])
    raise ValueError(f"unknown signature scheme: {scheme}")
