"""zkVM cost models for RISC Zero and SP1.

Both zkVMs execute the same RISC-V trace; what differs is how the trace is
turned into *cycles*, how memory paging is charged, how the trace is split
into proving units (segments / shards), and how fast the executor and prover
are.  The constants below follow the public RISC Zero guest-optimization
guide and the orders of magnitude reported in the paper (Appendix A /
Table 6): most instructions have uniform cost, paging a 1 KiB page costs
~1,100 cycles on RISC Zero, and proving is orders of magnitude slower than
execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..emulator.trace import TraceStats
from .precompiles import PRECOMPILE_CYCLES


@dataclass
class ZkvmMetrics:
    """The three metrics the paper reports, plus the underlying cost components."""

    zkvm: str
    #: Total cycles (user cycles + paging cycles).
    total_cycles: int
    #: Cycles spent executing guest instructions (excluding paging).
    user_cycles: int
    #: Cycles spent paging data in/out of the guest memory image.
    paging_cycles: int
    #: Dynamically executed instructions.
    instructions: int
    #: Number of proving units (RISC Zero segments / SP1 shards).
    segments: int
    #: Wall-clock seconds for the executor to replay the guest.
    execution_time: float
    #: Wall-clock seconds for the prover to produce a proof.
    proving_time: float
    #: Extra detail for analysis.
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "zkvm": self.zkvm,
            "total_cycles": self.total_cycles,
            "user_cycles": self.user_cycles,
            "paging_cycles": self.paging_cycles,
            "instructions": self.instructions,
            "segments": self.segments,
            "execution_time": self.execution_time,
            "proving_time": self.proving_time,
        }


@dataclass(frozen=True)
class ZkvmModel:
    """Analytic cost model of one zkVM."""

    name: str
    #: Cycles charged per instruction class.
    cycles_per_class: dict
    #: Cycles for paging one 1 KiB page in / out (0 if not modelled).
    page_in_cycles: int
    page_out_cycles: int
    #: Proving unit size, in cycles.
    segment_cycles: int
    #: Executor speed in cycles per second (used for zkVM execution time).
    executor_hz: float
    #: Prover speed: seconds per million cycles of trace, plus per-proof constant
    #: overhead and per-unit aggregation overhead when the trace spans more
    #: than one proving unit.
    seconds_per_megacycle: float
    proving_overhead_seconds: float
    aggregation_seconds_per_segment: float
    #: One-time execution overhead (program load, image hashing, ...).
    execution_overhead_seconds: float

    def cycles_for_trace(self, trace: TraceStats) -> tuple[int, int]:
        """(user_cycles, paging_cycles) for an execution trace."""
        metrics = self.evaluate(trace)
        return metrics.user_cycles, metrics.paging_cycles

    def evaluate(self, trace: TraceStats, page_in_events: int | None = None,
                 page_out_events: int | None = None) -> ZkvmMetrics:
        """Compute all metrics for a trace.

        ``page_in_events`` / ``page_out_events`` are the per-segment unique page
        touches recorded by the emulator; when omitted, whole-run unique pages
        are used as a lower bound.
        """
        user = 0
        for cls, count in trace.class_counts.items():
            user += count * self.cycles_per_class.get(cls, 1)
        for host_call, count in trace.host_calls.items():
            user += count * PRECOMPILE_CYCLES.get(self.name, {}).get(host_call, 0)

        if page_in_events is None:
            page_in_events = len(trace.pages_read | trace.pages_written)
        if page_out_events is None:
            page_out_events = len(trace.pages_written)
        paging = page_in_events * self.page_in_cycles + page_out_events * self.page_out_cycles

        total = user + paging
        segments = max(1, -(-total // self.segment_cycles))  # ceil division
        execution_time = self.execution_overhead_seconds + total / self.executor_hz
        proving_time = (self.proving_overhead_seconds
                        + total * self.seconds_per_megacycle / 1e6
                        + (segments - 1) * self.aggregation_seconds_per_segment)
        return ZkvmMetrics(
            zkvm=self.name,
            total_cycles=total,
            user_cycles=user,
            paging_cycles=paging,
            instructions=trace.instructions,
            segments=segments,
            execution_time=execution_time,
            proving_time=proving_time,
            detail={
                "page_in_events": page_in_events,
                "page_out_events": page_out_events,
                "host_calls": dict(trace.host_calls),
            },
        )


#: RISC Zero: near-uniform instruction cost, explicit paging cost (~1,100 cycles
#: per page operation), 1M-cycle segments, GPU prover throughput calibrated so
#: baseline medians land in the seconds range (Table 6).
RISC_ZERO = ZkvmModel(
    name="risc0",
    cycles_per_class={"alu": 1, "mul": 1, "div": 2, "load": 1, "store": 1,
                      "branch": 1, "jump": 1, "system": 2},
    page_in_cycles=1094,
    page_out_cycles=1130,
    segment_cycles=1 << 20,
    executor_hz=220e6,
    seconds_per_megacycle=2.4,
    proving_overhead_seconds=0.45,
    aggregation_seconds_per_segment=0.35,
    execution_overhead_seconds=0.0009,
)

#: SP1: slightly different per-class weights (memory operations are a bit more
#: expensive in its chip layout), no exposed paging metric, 2M-cycle shards,
#: faster executor, different prover throughput.
SP1 = ZkvmModel(
    name="sp1",
    cycles_per_class={"alu": 1, "mul": 1, "div": 2, "load": 2, "store": 2,
                      "branch": 1, "jump": 1, "system": 2},
    page_in_cycles=0,
    page_out_cycles=0,
    segment_cycles=1 << 21,
    executor_hz=350e6,
    seconds_per_megacycle=1.6,
    proving_overhead_seconds=0.30,
    aggregation_seconds_per_segment=0.45,
    execution_overhead_seconds=0.0012,
)

ZKVMS: dict[str, ZkvmModel] = {"risc0": RISC_ZERO, "sp1": SP1}

#: Version of the analytic cost-model *formulas* above.  Parameter values are
#: fingerprinted directly by the experiment cache; bump this when the shape of
#: ``cycles_for_trace``/``evaluate`` changes so stale cached measurements are
#: invalidated (see :mod:`repro.experiments.cache`).
COST_MODEL_VERSION = 1
