"""repro: a reproduction of "Evaluating Compiler Optimization Impacts on zkVM
Performance" (ASPLOS 2026).

The package contains the full stack the study needs: a MiniC frontend, an
LLVM-like IR and optimization pass pipeline, an RV32IM backend and emulator,
analytic cost models for two zkVMs (RISC Zero, SP1) and a traditional CPU, a
58-program benchmark suite, a genetic autotuner, and regenerators for every
table and figure in the paper's evaluation.

Quick start::

    from repro.frontend import compile_source
    from repro.passes import run_passes
    from repro.backend import compile_module
    from repro.emulator import run_program

    module = compile_source("fn main() -> int { return 41 + 1; }")
    optimized = run_passes(module, ["mem2reg", "instcombine", "simplifycfg"])
    stats = run_program(compile_module(optimized))
    assert stats.return_value == 42

Study-scale measurement goes through the parallel, disk-cached experiment
engine — ``repro.experiments.ExperimentEngine`` in code, ``python -m repro``
on the command line (``measure``, ``figure``, ``table``, ``autotune``, ...).
See README.md and docs/ARCHITECTURE.md.
"""

__version__ = "1.1.0"

__all__ = [
    "frontend", "ir", "passes", "backend", "emulator", "zkvm", "cpu",
    "benchmarks", "autotuner", "analysis", "experiments", "zkvm_aware",
]
