"""Core value classes of the repro IR.

Everything that can appear as an operand is a :class:`Value`.  Values track
their users so that passes can perform replace-all-uses-with efficiently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .types import IntType, PointerType, Type, I32, PTR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction


class Value:
    """Base class of everything that can be used as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.users: list["User"] = []

    def add_user(self, user: "User") -> None:
        self.users.append(user)

    def remove_user(self, user: "User") -> None:
        try:
            self.users.remove(user)
        except ValueError:
            pass

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to use ``new`` instead."""
        if new is self:
            return
        for user in list(self.users):
            user.replace_operand(self, new)

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def short_name(self) -> str:
        return f"%{self.name}" if self.name else "%<anon>"

    def __str__(self) -> str:
        return self.short_name()


class User(Value):
    """A value that uses other values as operands."""

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, name)
        self._operands: list[Value] = []

    def _note_mutation(self) -> None:
        """Bump the owning function's IR epoch after an operand rewrite.

        Users are instructions in practice; detached ones (not yet in a
        block/function) have nothing to notify.
        """
        block = getattr(self, "parent", None)
        if block is not None:
            function = block.parent
            if function is not None:
                function._ir_version += 1

    @property
    def operands(self) -> list[Value]:
        return list(self._operands)

    def set_operands(self, operands: Iterable[Value]) -> None:
        for op in self._operands:
            op.remove_user(self)
        self._operands = list(operands)
        for op in self._operands:
            op.add_user(self)
        self._note_mutation()

    def set_operand(self, index: int, value: Value) -> None:
        self._operands[index].remove_user(self)
        self._operands[index] = value
        value.add_user(self)
        self._note_mutation()

    def get_operand(self, index: int) -> Value:
        return self._operands[index]

    def replace_operand(self, old: Value, new: Value) -> None:
        replaced = False
        for i, op in enumerate(self._operands):
            if op is old:
                self._operands[i] = new
                old.remove_user(self)
                new.add_user(self)
                replaced = True
        if replaced:
            self._note_mutation()

    def drop_all_references(self) -> None:
        """Remove this user from the use lists of all of its operands."""
        for op in self._operands:
            op.remove_user(self)
        self._operands = []


class Constant(Value):
    """An integer constant of a given width."""

    def __init__(self, value: int, type_: IntType = I32):
        super().__init__(type_)
        if not isinstance(type_, IntType):
            raise TypeError("constants must have integer type")
        self.value = type_.wrap(value)

    @property
    def signed_value(self) -> int:
        return self.type.to_signed(self.value)  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return str(self.signed_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Constant({self.signed_value}, {self.type})"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level array or scalar with optional initial data."""

    def __init__(self, name: str, element_type: Type, count: int,
                 initializer: list[int] | None = None):
        super().__init__(PTR, name)
        self.element_type = element_type
        self.count = count
        self.initializer = list(initializer) if initializer is not None else None
        if self.initializer is not None and len(self.initializer) != count:
            raise ValueError("initializer length does not match count")

    @property
    def size_bytes(self) -> int:
        return self.element_type.size_bytes * self.count

    def short_name(self) -> str:
        return f"@{self.name}"


class UndefValue(Value):
    """An undefined value (used when promoting uninitialised memory)."""

    def __init__(self, type_: Type = I32):
        super().__init__(type_, "undef")

    def __str__(self) -> str:
        return "undef"
