"""Type system for the repro IR.

The IR is deliberately small: integer types, pointers, arrays, void and
function types.  It mirrors the subset of LLVM's type system that the paper's
guest programs exercise (32-bit integer arithmetic, arrays, and calls).
"""

from __future__ import annotations


class Type:
    """Base class of all IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    @property
    def size_bytes(self) -> int:
        """Storage size of a value of this type, in bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return str(self)


class VoidType(Type):
    """The type of functions that return nothing."""

    @property
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """An integer type of a fixed bit width (i1, i8, i32)."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this width, interpreted as unsigned."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        """Interpret the unsigned representation ``value`` as signed."""
        value &= self.mask
        if value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"


class PointerType(Type):
    """An untyped (byte-addressed) pointer, as in opaque-pointer LLVM."""

    @property
    def size_bytes(self) -> int:
        return 4  # RV32 pointers are 32-bit

    def __str__(self) -> str:
        return "ptr"


class ArrayType(Type):
    """A fixed-size array of a scalar element type."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    @property
    def size_bytes(self) -> int:
        return self.element.size_bytes * self.count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class FunctionType(Type):
    """The type of a function: a return type and parameter types."""

    def __init__(self, return_type: Type, param_types: tuple[Type, ...]):
        self.return_type = return_type
        self.param_types = tuple(param_types)

    @property
    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


# Singletons for the common types.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
PTR = PointerType()


def int_type(bits: int) -> IntType:
    """Return the canonical integer type of the given width."""
    return {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}[bits]
