"""Cloning utilities: remapping copies of instructions, functions and modules.

Used by ``Module.clone`` (so experiments never mutate shared benchmark IR),
by the inliner, by loop unrolling and by the partial inliner / loop extractor.
"""

from __future__ import annotations

from typing import Callable, Dict

from .basic_block import BasicBlock
from .function import Function
from .instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, CondBranch, GEP, ICmp, Instruction,
    Load, Phi, Ret, Select, Store, Unreachable,
)
from .module import Module
from .values import Value

ValueMap = Dict[Value, Value]
BlockMap = Dict[BasicBlock, BasicBlock]


def _map_value(value: Value, value_map: ValueMap) -> Value:
    return value_map.get(value, value)


_CLONERS = {
    BinaryOp: lambda inst, m, b: BinaryOp(inst.opcode, m(inst.lhs), m(inst.rhs), inst.name),
    ICmp: lambda inst, m, b: ICmp(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name),
    Select: lambda inst, m, b: Select(m(inst.condition), m(inst.true_value),
                                      m(inst.false_value), inst.name),
    Alloca: lambda inst, m, b: Alloca(inst.allocated_type, inst.count, inst.name),
    Load: lambda inst, m, b: Load(m(inst.pointer), inst.loaded_type, inst.name),
    Store: lambda inst, m, b: Store(m(inst.value), m(inst.pointer)),
    GEP: lambda inst, m, b: GEP(m(inst.base), m(inst.index), inst.element_size, inst.name),
    Branch: lambda inst, m, b: Branch(b(inst.target)),
    CondBranch: lambda inst, m, b: CondBranch(m(inst.condition), b(inst.true_target),
                                              b(inst.false_target)),
    Ret: lambda inst, m, b: Ret(m(inst.value) if inst.value is not None else None),
    Unreachable: lambda inst, m, b: Unreachable(),
    Call: lambda inst, m, b: Call(inst.callee, [m(a) for a in inst.args],
                                  inst.type, inst.name),
    Cast: lambda inst, m, b: Cast(inst.opcode, m(inst.value), inst.type, inst.name),
}


def _clone_phi(inst: Phi, m, b) -> Phi:
    phi = Phi(inst.type, inst.name)
    for value, block in inst.incoming:
        phi.add_incoming(m(value), b(block))
    return phi


_CLONERS[Phi] = _clone_phi


def clone_instruction(inst: Instruction, value_map: ValueMap,
                      block_map: BlockMap) -> Instruction:
    """Clone ``inst``, remapping operands through ``value_map`` and branch
    targets through ``block_map``.  Phi incoming values are remapped, but the
    caller is responsible for fixing them up if cloning an entire region
    (values defined later may not be in the map yet)."""
    cloner = _CLONERS.get(type(inst))
    if cloner is None:
        raise TypeError(f"cannot clone instruction of type {type(inst).__name__}")
    return cloner(inst,
                  lambda v: value_map.get(v, v),
                  lambda blk: block_map.get(blk, blk))


def clone_function_body(source: Function, target: Function,
                        value_map: ValueMap | None = None) -> tuple[ValueMap, BlockMap]:
    """Copy the body of ``source`` into the (empty) function ``target``.

    Returns the value and block maps so callers can locate cloned values.
    """
    value_map = dict(value_map or {})
    for src_arg, dst_arg in zip(source.arguments, target.arguments):
        value_map.setdefault(src_arg, dst_arg)

    block_map: BlockMap = {}
    for block in source.blocks:
        new_block = BasicBlock(block.name, target)
        target.blocks.append(new_block)
        block_map[block] = new_block
    target.invalidate_cfg()

    phi_fixups: list[tuple[Phi, Phi]] = []
    for block in source.blocks:
        new_block = block_map[block]
        for inst in block.instructions:
            if isinstance(inst, Phi):
                new_phi = Phi(inst.type, inst.name)
                new_block.append(new_phi)
                value_map[inst] = new_phi
                phi_fixups.append((inst, new_phi))
            else:
                new_inst = clone_instruction(inst, value_map, block_map)
                new_block.append(new_inst)
                if inst.has_result:
                    value_map[inst] = new_inst

    # Second pass: phi incoming values may refer to values defined anywhere.
    for old_phi, new_phi in phi_fixups:
        for value, block in old_phi.incoming:
            new_phi.add_incoming(_map_value(value, value_map), block_map.get(block, block))

    target._name_counter = source._name_counter
    return value_map, block_map


def clone_function(source: Function, module: Module | None = None,
                   new_name: str | None = None) -> Function:
    """Create a standalone deep copy of a function."""
    target = Function(new_name or source.name, source.return_type,
                      [a.type for a in source.arguments],
                      [a.name for a in source.arguments], module)
    target.attributes = set(source.attributes)
    clone_function_body(source, target)
    return target


def clone_module(module: Module) -> Module:
    """Deep-copy an entire module, including globals."""
    new_module = Module(module.name)
    for gv in module.globals.values():
        new_module.add_global(gv.name, gv.element_type, gv.count,
                              list(gv.initializer) if gv.initializer is not None else None)
    for function in module.functions.values():
        cloned = clone_function(function, new_module)
        new_module.add_function(cloned)
    return new_module
