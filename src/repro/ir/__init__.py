"""The repro intermediate representation (IR).

An LLVM-like, SSA-capable IR with typed values, basic blocks, functions and
modules, plus the standard analyses (CFG orders, dominators, loop info) the
optimization passes need.
"""

from .types import (
    ArrayType, FunctionType, IntType, PointerType, Type, VoidType,
    I1, I8, I16, I32, I64, PTR, VOID, int_type,
)
from .values import Argument, Constant, GlobalVariable, UndefValue, User, Value
from .instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, CondBranch, GEP, ICmp, Instruction,
    Load, Phi, Ret, Select, Store, Unreachable,
    BINARY_OPS, COMMUTATIVE_OPS, DIVISION_OPS, ICMP_PREDICATES, SHIFT_OPS,
)
from .basic_block import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .printer import format_function, format_instruction, format_module
from .verifier import VerificationError, verify_function, verify_module
from .analysis_cache import cfg_cache_disabled, cfg_cache_enabled
from .cfg import (
    OrderedSet, postorder, predecessors_map, reachable_blocks,
    remove_unreachable_blocks, reverse_postorder,
)
from .dominators import DominatorTree, dominance_frontiers
from .loops import Loop, LoopInfo
from .cloning import clone_function, clone_function_body, clone_instruction, clone_module

__all__ = [
    "ArrayType", "FunctionType", "IntType", "PointerType", "Type", "VoidType",
    "I1", "I8", "I16", "I32", "I64", "PTR", "VOID", "int_type",
    "Argument", "Constant", "GlobalVariable", "UndefValue", "User", "Value",
    "Alloca", "BinaryOp", "Branch", "Call", "Cast", "CondBranch", "GEP", "ICmp",
    "Instruction", "Load", "Phi", "Ret", "Select", "Store", "Unreachable",
    "BINARY_OPS", "COMMUTATIVE_OPS", "DIVISION_OPS", "ICMP_PREDICATES", "SHIFT_OPS",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "format_function", "format_instruction", "format_module",
    "VerificationError", "verify_function", "verify_module",
    "OrderedSet", "cfg_cache_disabled", "cfg_cache_enabled",
    "postorder", "predecessors_map", "reachable_blocks",
    "remove_unreachable_blocks", "reverse_postorder",
    "DominatorTree", "dominance_frontiers", "Loop", "LoopInfo",
    "clone_function", "clone_function_body", "clone_instruction", "clone_module",
]
