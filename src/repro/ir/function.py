"""Functions: named lists of basic blocks with typed arguments."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .basic_block import BasicBlock
from .instructions import Instruction
from .types import Type, I32
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module


class Function(Value):
    """A function definition (or declaration, when it has no blocks)."""

    def __init__(self, name: str, return_type: Type = I32,
                 param_types: list[Type] | None = None,
                 param_names: list[str] | None = None,
                 module: Optional["Module"] = None):
        from .types import PTR

        super().__init__(PTR, name)
        self.return_type = return_type
        param_types = param_types or []
        param_names = param_names or [f"arg{i}" for i in range(len(param_types))]
        self.arguments = [Argument(t, n, i) for i, (t, n) in enumerate(zip(param_types, param_names))]
        self.blocks: list[BasicBlock] = []
        self.module = module
        # Function attributes honoured by the pass pipeline.
        self.attributes: set[str] = set()
        self._name_counter = 0

    # -- structure ---------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        for inst in list(block.instructions):
            inst.drop_all_references()
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, base: str) -> str:
        self._name_counter += 1
        return f"{base}.{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(list(self.blocks))

    def short_name(self) -> str:
        return f"@{self.name}"

    def __str__(self) -> str:
        from .printer import format_function

        return format_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Function({self.name}, {len(self.blocks)} blocks)"
