"""Functions: named lists of basic blocks with typed arguments."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .analysis_cache import cfg_cache_enabled
from .basic_block import BasicBlock
from .instructions import Instruction
from .types import Type, I32
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module


class Function(Value):
    """A function definition (or declaration, when it has no blocks)."""

    def __init__(self, name: str, return_type: Type = I32,
                 param_types: list[Type] | None = None,
                 param_names: list[str] | None = None,
                 module: Optional["Module"] = None):
        from .types import PTR

        super().__init__(PTR, name)
        self.return_type = return_type
        param_types = param_types or []
        param_names = param_names or [f"arg{i}" for i in range(len(param_types))]
        self.arguments = [Argument(t, n, i) for i, (t, n) in enumerate(zip(param_types, param_names))]
        self.blocks: list[BasicBlock] = []
        self.module = module
        # Function attributes honoured by the pass pipeline.
        self.attributes: set[str] = set()
        self._name_counter = 0
        # CFG-metadata cache: bumped by every mutation that can change the
        # block graph (terminator insertion/removal, branch retargeting, block
        # membership).  Analyses validate against it before reusing results.
        self._cfg_version = 0
        self._preds_version = -1
        self._preds_map: dict[BasicBlock, list[BasicBlock]] = {}
        self._reach_version = -1
        self._reach_set: set[BasicBlock] = set()
        # IR mutation epoch: bumped by *every* semantic mutation (instruction
        # insertion/removal, operand rewires, phi edits, CFG changes).  Lets
        # the pass manager skip re-running a self-contained pass that already
        # proved itself a no-op on this exact IR.
        self._ir_version = 0

    # -- structure ---------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        self.invalidate_cfg()
        return block

    def remove_block(self, block: BasicBlock) -> None:
        for inst in list(block.instructions):
            inst.drop_all_references()
        self.blocks.remove(block)
        block.parent = None
        self.invalidate_cfg()

    # -- CFG metadata ------------------------------------------------------
    @property
    def cfg_version(self) -> int:
        """Monotonic counter identifying the current block-graph shape."""
        return self._cfg_version

    @property
    def ir_version(self) -> int:
        """Monotonic counter identifying the function's entire IR state."""
        return self._ir_version

    def invalidate_cfg(self) -> None:
        """Record that the block graph (nodes or edges) may have changed."""
        self._cfg_version += 1
        self._ir_version += 1

    def predecessors_map(self) -> dict[BasicBlock, list[BasicBlock]]:
        """The predecessor lists of every member block, cached by CFG version.

        Mirrors :func:`repro.ir.cfg.predecessors_map` exactly (predecessors
        appear in block order; a conditional branch with identical targets
        contributes its block twice).  The map is rebuilt lazily whenever the
        CFG version has moved; callers must not mutate the returned lists.
        """
        if self._preds_version == self._cfg_version and cfg_cache_enabled():
            return self._preds_map
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                if succ in preds:
                    preds[succ].append(block)
        self._preds_map = preds
        self._preds_version = self._cfg_version
        return self._preds_map

    def unique_name(self, base: str) -> str:
        self._name_counter += 1
        return f"{base}.{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(list(self.blocks))

    def short_name(self) -> str:
        return f"@{self.name}"

    def __str__(self) -> str:
        from .printer import format_function

        return format_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Function({self.name}, {len(self.blocks)} blocks)"
