"""Dominator tree and dominance frontier (Cooper-Harvey-Kennedy algorithm)."""

from __future__ import annotations

from .basic_block import BasicBlock
from .cfg import OrderedSet, predecessors_map, reverse_postorder
from .function import Function
from .instructions import Instruction, Phi
from .values import Value


class DominatorTree:
    """Immediate-dominator tree of a function's CFG."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: dict[BasicBlock, BasicBlock] = {}
        self._children: dict[BasicBlock, list[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        if not self.rpo:
            return
        entry = self.rpo[0]
        preds = predecessors_map(self.function)
        idom: dict[BasicBlock, BasicBlock | None] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo[1:]:
                new_idom: BasicBlock | None = None
                for pred in preds[block]:
                    if pred not in self._rpo_index or idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = {b: d for b, d in idom.items() if d is not None}
        self._children = {b: [] for b in self.rpo}
        for block, dom in self.idom.items():
            if block is not dom:
                self._children[dom].append(block)

    def _intersect(self, b1: BasicBlock, b2: BasicBlock,
                   idom: dict[BasicBlock, BasicBlock | None]) -> BasicBlock:
        index = self._rpo_index
        while b1 is not b2:
            while index[b1] > index[b2]:
                b1 = idom[b1]  # type: ignore[assignment]
            while index[b2] > index[b1]:
                b2 = idom[b2]  # type: ignore[assignment]
        return b1

    # -- queries -----------------------------------------------------------
    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if block ``a`` dominates block ``b`` (including a == b)."""
        if a is b:
            return True
        runner = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            if runner is self.idom.get(runner):
                break
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        return list(self._children.get(block, []))

    def instruction_dominates(self, a: Instruction, b: Instruction) -> bool:
        """True if instruction ``a`` dominates instruction ``b``."""
        if a.parent is b.parent and a.parent is not None:
            block = a.parent
            return block.instructions.index(a) < block.instructions.index(b)
        if a.parent is None or b.parent is None:
            return False
        return self.strictly_dominates(a.parent, b.parent)

    def value_dominates_use(self, value: Value, user: Instruction) -> bool:
        """True if ``value`` is available at ``user`` (arguments/constants always are)."""
        if not isinstance(value, Instruction):
            return True
        if isinstance(user, Phi):
            # A phi's operand only needs to dominate the end of the incoming block.
            for incoming_value, incoming_block in user.incoming:
                if incoming_value is value and value.parent is not None:
                    if not self.dominates(value.parent, incoming_block):
                        return False
            return True
        return self.instruction_dominates(value, user)


def dominance_frontiers(function: Function,
                        domtree: DominatorTree | None = None) -> dict[BasicBlock, OrderedSet]:
    """Compute the dominance frontier of every block (used by mem2reg).

    Frontier sets are insertion-ordered so phi placement iterates them
    deterministically."""
    domtree = domtree or DominatorTree(function)
    preds = predecessors_map(function)
    frontiers: dict[BasicBlock, OrderedSet] = {b: OrderedSet() for b in function.blocks}
    for block in domtree.rpo:
        block_preds = preds.get(block, [])
        if len(block_preds) < 2:
            continue
        for pred in block_preds:
            if pred not in domtree.idom:
                continue
            runner = pred
            while runner is not domtree.idom.get(block) and runner in domtree.idom:
                frontiers[runner].add(block)
                next_runner = domtree.idom[runner]
                if next_runner is runner:
                    break
                runner = next_runner
    return frontiers
