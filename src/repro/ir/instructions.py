"""Instruction classes of the repro IR.

The instruction set intentionally mirrors the LLVM instructions that the
paper's analysis talks about: integer arithmetic, comparisons, select,
memory (alloca / load / store / getelementptr), control flow (br / ret),
calls and phi nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .types import IntType, Type, VoidType, I1, I32, PTR, VOID
from .values import Constant, User, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .basic_block import BasicBlock
    from .function import Function


# Opcode groups used by passes and by the backend.
BINARY_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor"})
DIVISION_OPS = frozenset({"sdiv", "udiv", "srem", "urem"})
SHIFT_OPS = frozenset({"shl", "lshr", "ashr"})


class Instruction(User):
    """Base class of all instructions."""

    opcode = "<abstract>"

    # Classification flags consulted throughout the pass pipeline.  They are
    # class attributes (overridden by the relevant subclasses) rather than
    # isinstance-chain properties because passes query them millions of times
    # per pipeline run.
    is_terminator = False
    has_side_effects = False
    may_read_memory = False
    may_write_memory = False

    def __init__(self, type_: Type, operands: Sequence[Value] = (), name: str = ""):
        super().__init__(type_, name)
        self.parent: Optional["BasicBlock"] = None
        # Plain attribute (types never change after construction): queried on
        # nearly every instruction visit in the pass pipeline.
        self.has_result = not isinstance(type_, VoidType)
        self.set_operands(operands)

    @property
    def may_trap(self) -> bool:
        """Division can trap (divide by a non-constant zero)."""
        if isinstance(self, BinaryOp) and self.opcode in DIVISION_OPS:
            divisor = self.rhs
            return not (isinstance(divisor, Constant) and divisor.value != 0)
        return False

    def is_safe_to_speculate(self) -> bool:
        """True if the instruction can be hoisted past control flow."""
        return not self.has_side_effects and not self.may_read_memory and not self.may_trap

    def erase(self) -> None:
        """Remove this instruction from its parent block and drop operand uses."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_references()

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def clone(self) -> "Instruction":
        """Create a copy of this instruction with the same operands."""
        raise NotImplementedError

    def __str__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)


class BinaryOp(Instruction):
    """An integer binary operation (add, sub, mul, div, rem, bitwise, shifts)."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode: {opcode}")
        self.opcode = opcode
        super().__init__(lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS

    def clone(self) -> "BinaryOp":
        return BinaryOp(self.opcode, self.lhs, self.rhs, self.name)


class ICmp(Instruction):
    """Integer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        self.predicate = predicate
        super().__init__(I1, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.get_operand(0)

    @property
    def rhs(self) -> Value:
        return self.get_operand(1)

    def clone(self) -> "ICmp":
        return ICmp(self.predicate, self.lhs, self.rhs, self.name)


class Select(Instruction):
    """``select cond, a, b`` — returns ``a`` if cond is true else ``b``."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def true_value(self) -> Value:
        return self.get_operand(1)

    @property
    def false_value(self) -> Value:
        return self.get_operand(2)

    def clone(self) -> "Select":
        return Select(self.condition, self.true_value, self.false_value, self.name)


class Alloca(Instruction):
    """Stack allocation of ``count`` elements of ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        self.allocated_type = allocated_type
        self.count = count
        super().__init__(PTR, [], name)

    @property
    def size_bytes(self) -> int:
        return self.allocated_type.size_bytes * self.count

    def clone(self) -> "Alloca":
        return Alloca(self.allocated_type, self.count, self.name)


class Load(Instruction):
    """Load a scalar of ``loaded_type`` from a pointer."""

    opcode = "load"
    may_read_memory = True

    def __init__(self, pointer: Value, loaded_type: Type = I32, name: str = ""):
        self.loaded_type = loaded_type
        super().__init__(loaded_type, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.get_operand(0)

    def clone(self) -> "Load":
        return Load(self.pointer, self.loaded_type, self.name)


class Store(Instruction):
    """Store a scalar value to a pointer."""

    opcode = "store"
    has_side_effects = True
    may_write_memory = True

    def __init__(self, value: Value, pointer: Value):
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    @property
    def pointer(self) -> Value:
        return self.get_operand(1)

    def clone(self) -> "Store":
        return Store(self.value, self.pointer)


class GEP(Instruction):
    """Simplified getelementptr: ``result = base + index * element_size``."""

    opcode = "getelementptr"

    def __init__(self, base: Value, index: Value, element_size: int = 4, name: str = ""):
        self.element_size = element_size
        super().__init__(PTR, [base, index], name)

    @property
    def base(self) -> Value:
        return self.get_operand(0)

    @property
    def index(self) -> Value:
        return self.get_operand(1)

    def clone(self) -> "GEP":
        return GEP(self.base, self.index, self.element_size, self.name)


class Branch(Instruction):
    """Unconditional branch."""

    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(self, target: "BasicBlock"):
        self.target = target
        super().__init__(VOID, [])

    @property
    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new
            _invalidate_cfg_of(self)

    def clone(self) -> "Branch":
        return Branch(self.target)


class CondBranch(Instruction):
    """Conditional branch on an i1 condition."""

    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(self, condition: Value, true_target: "BasicBlock", false_target: "BasicBlock"):
        self.true_target = true_target
        self.false_target = false_target
        super().__init__(VOID, [condition])

    @property
    def condition(self) -> Value:
        return self.get_operand(0)

    @property
    def successors(self) -> list["BasicBlock"]:
        return [self.true_target, self.false_target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_target is old or self.false_target is old:
            if self.true_target is old:
                self.true_target = new
            if self.false_target is old:
                self.false_target = new
            _invalidate_cfg_of(self)

    def clone(self) -> "CondBranch":
        return CondBranch(self.condition, self.true_target, self.false_target)


class Ret(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"
    is_terminator = True
    has_side_effects = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        ops = self.operands
        return ops[0] if ops else None

    @property
    def successors(self) -> list["BasicBlock"]:
        return []

    def clone(self) -> "Ret":
        return Ret(self.value)


class Unreachable(Instruction):
    """Marks unreachable control flow (e.g. after a call to abort)."""

    opcode = "unreachable"
    is_terminator = True
    has_side_effects = True

    def __init__(self) -> None:
        super().__init__(VOID, [])

    @property
    def successors(self) -> list["BasicBlock"]:
        return []

    def clone(self) -> "Unreachable":
        return Unreachable()


class Call(Instruction):
    """A direct call to another function in the module (by name)."""

    opcode = "call"
    has_side_effects = True
    may_read_memory = True
    may_write_memory = True

    def __init__(self, callee: str, args: Sequence[Value], return_type: Type = I32, name: str = ""):
        self.callee = callee
        super().__init__(return_type, list(args), name)

    @property
    def args(self) -> list[Value]:
        return self.operands

    def clone(self) -> "Call":
        return Call(self.callee, self.args, self.type, self.name)


class Phi(Instruction):
    """SSA phi node.  Incoming values are kept parallel to incoming blocks."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        self.incoming_blocks: list["BasicBlock"] = []
        super().__init__(type_, [], name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._operands.append(value)
        value.add_user(self)
        self.incoming_blocks.append(block)
        self._note_mutation()

    @property
    def incoming(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                value = self._operands.pop(i)
                value.remove_user(self)
                self.incoming_blocks.pop(i)
                self._note_mutation()
                return

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming_blocks = [new if b is old else b for b in self.incoming_blocks]
        self._note_mutation()

    def clone(self) -> "Phi":
        phi = Phi(self.type, self.name)
        for value, block in self.incoming:
            phi.add_incoming(value, block)
        return phi


def _invalidate_cfg_of(inst: Instruction) -> None:
    """Bump the CFG version of the function an attached terminator lives in.

    Retargeting a branch changes the edge set without adding or removing any
    instruction, so it must notify the function's CFG-metadata cache directly
    (see :meth:`repro.ir.function.Function.invalidate_cfg`).
    """
    block = inst.parent
    if block is not None and block.parent is not None:
        block.parent.invalidate_cfg()


class Cast(Instruction):
    """zext / sext / trunc between integer widths."""

    def __init__(self, opcode: str, value: Value, to_type: IntType, name: str = ""):
        if opcode not in ("zext", "sext", "trunc"):
            raise ValueError(f"unknown cast opcode: {opcode}")
        self.opcode = opcode
        super().__init__(to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.get_operand(0)

    def clone(self) -> "Cast":
        return Cast(self.opcode, self.value, self.type, self.name)  # type: ignore[arg-type]
