"""Textual dumping of IR, in an LLVM-flavoured syntax.

The printer is used for debugging, for golden tests and by the verifier's
error messages.  It assigns stable local numbers to unnamed values.
"""

from __future__ import annotations

from .basic_block import BasicBlock
from .function import Function
from .instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, CondBranch, GEP, ICmp, Instruction,
    Load, Phi, Ret, Select, Store, Unreachable,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


def _value_ref(value: Value) -> str:
    if isinstance(value, Constant):
        return str(value.signed_value)
    if isinstance(value, UndefValue):
        return "undef"
    if isinstance(value, (GlobalVariable, Function)):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"%{value.name}"
    return f"%{value.name}" if value.name else "%<anon>"


def format_instruction(inst: Instruction) -> str:
    """Format a single instruction."""
    ref = _value_ref
    if isinstance(inst, BinaryOp):
        return f"%{inst.name} = {inst.opcode} {inst.type} {ref(inst.lhs)}, {ref(inst.rhs)}"
    if isinstance(inst, ICmp):
        return f"%{inst.name} = icmp {inst.predicate} {ref(inst.lhs)}, {ref(inst.rhs)}"
    if isinstance(inst, Select):
        return (f"%{inst.name} = select {ref(inst.condition)}, "
                f"{ref(inst.true_value)}, {ref(inst.false_value)}")
    if isinstance(inst, Alloca):
        return f"%{inst.name} = alloca {inst.allocated_type} x {inst.count}"
    if isinstance(inst, Load):
        return f"%{inst.name} = load {inst.loaded_type}, {ref(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {ref(inst.value)}, {ref(inst.pointer)}"
    if isinstance(inst, GEP):
        return (f"%{inst.name} = getelementptr {ref(inst.base)}, "
                f"{ref(inst.index)} x {inst.element_size}")
    if isinstance(inst, Branch):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranch):
        return (f"br {ref(inst.condition)}, label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}")
    if isinstance(inst, Ret):
        return f"ret {ref(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, Unreachable):
        return "unreachable"
    if isinstance(inst, Call):
        args = ", ".join(ref(a) for a in inst.args)
        prefix = f"%{inst.name} = " if inst.has_result else ""
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    if isinstance(inst, Phi):
        pairs = ", ".join(f"[ {ref(v)}, %{b.name} ]" for v, b in inst.incoming)
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, Cast):
        return f"%{inst.name} = {inst.opcode} {ref(inst.value)} to {inst.type}"
    return f"<unknown instruction {type(inst).__name__}>"


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def format_function(function: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in function.arguments)
    attrs = (" " + " ".join(sorted(function.attributes))) if function.attributes else ""
    header = f"define {function.return_type} @{function.name}({params}){attrs} {{"
    if function.is_declaration:
        return f"declare {function.return_type} @{function.name}({params})"
    body = "\n".join(format_block(b) for b in function.blocks)
    return f"{header}\n{body}\n}}"


def format_module(module: Module) -> str:
    parts = [f"; module: {module.name}"]
    for gv in module.globals.values():
        init = "zeroinitializer" if gv.initializer is None else str(gv.initializer[:8])
        parts.append(f"@{gv.name} = global [{gv.count} x {gv.element_type}] {init}")
    for function in module.functions.values():
        parts.append(format_function(function))
    return "\n\n".join(parts)
