"""A reference interpreter for the IR.

The interpreter gives the IR an executable semantics that is independent of
the RISC-V backend.  It is used by the test suite for differential testing:
every optimization pass must preserve the observable behaviour (return value
and output stream) of every program it transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .basic_block import BasicBlock
from .function import Function
from .instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, CondBranch, GEP, ICmp, Instruction,
    Load, Phi, Ret, Select, Store, Unreachable,
)
from .module import Module
from .types import IntType, I32
from .values import Argument, Constant, GlobalVariable, UndefValue, Value

WORD_MASK = 0xFFFFFFFF


class InterpreterError(Exception):
    """Raised on malformed programs (missing function, bad memory access, ...)."""


class StepLimitExceeded(InterpreterError):
    """The configured ``max_steps`` budget was exhausted.

    Carries the function being executed when the budget ran out and the
    executed-step count, so callers (fuzz triage in particular) can tell a
    slow-but-terminating program apart from a genuine hang and report *where*
    the time went.
    """

    def __init__(self, function_name: str, steps: int):
        super().__init__(
            f"interpreter step limit exceeded in function '{function_name}' "
            f"after {steps} executed steps")
        self.function_name = function_name
        self.steps = steps


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass
class ExecutionResult:
    """Outcome of interpreting a module."""

    return_value: int
    output: list[int] = field(default_factory=list)
    instructions_executed: int = 0


class Interpreter:
    """Executes IR modules with a simple flat word-addressed memory."""

    def __init__(self, module: Module, max_steps: int = 50_000_000):
        self.module = module
        self.max_steps = max_steps
        self.memory: dict[int, int] = {}
        self.output: list[int] = []
        self.steps = 0
        self._next_address = 0x1000
        self._global_addresses: dict[str, int] = {}
        self._allocate_globals()

    # -- memory ------------------------------------------------------------
    def _allocate_globals(self) -> None:
        for gv in self.module.globals.values():
            address = self._allocate(gv.size_bytes)
            self._global_addresses[gv.name] = address
            if gv.initializer is not None:
                elem_size = gv.element_type.size_bytes
                for i, value in enumerate(gv.initializer):
                    self._write_word(address + i * elem_size, value)

    def _allocate(self, size_bytes: int) -> int:
        address = self._next_address
        self._next_address += max(4, (size_bytes + 3) & ~3)
        return address

    def _read_word(self, address: int) -> int:
        return self.memory.get(address & WORD_MASK, 0)

    def _write_word(self, address: int, value: int) -> None:
        self.memory[address & WORD_MASK] = value & WORD_MASK

    # -- entry point --------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[list[int]] = None) -> ExecutionResult:
        function = self.module.get_function(entry)
        if function is None or function.is_declaration:
            raise InterpreterError(f"no definition for entry function '{entry}'")
        args = args or []
        result = self._call(function, [a & WORD_MASK for a in args])
        return ExecutionResult(return_value=_to_signed(result),
                               output=list(self.output),
                               instructions_executed=self.steps)

    # -- evaluation ----------------------------------------------------------
    def _value(self, value: Value, env: dict[Value, int]) -> int:
        if isinstance(value, Constant):
            return value.value & WORD_MASK
        if isinstance(value, GlobalVariable):
            return self._global_addresses[value.name]
        if isinstance(value, UndefValue):
            return 0
        if value in env:
            return env[value]
        raise InterpreterError(f"use of value with no definition: {value}")

    def _call(self, function: Function, args: list[int]) -> int:
        if len(args) != len(function.arguments):
            raise InterpreterError(
                f"{function.name}: expected {len(function.arguments)} arguments, got {len(args)}")
        env: dict[Value, int] = {arg: value for arg, value in zip(function.arguments, args)}
        block = function.entry_block
        previous_block: Optional[BasicBlock] = None

        while True:
            # Phi nodes are evaluated simultaneously on block entry.
            phi_values: dict[Value, int] = {}
            for phi in block.phis():
                if previous_block is None:
                    raise InterpreterError(f"phi in entry block of {function.name}")
                incoming = phi.incoming_for_block(previous_block)
                if incoming is None:
                    raise InterpreterError(
                        f"{function.name}/{block.name}: phi %{phi.name} has no entry for "
                        f"predecessor {previous_block.name}")
                phi_values[phi] = self._value(incoming, env)
                self.steps += 1
            env.update(phi_values)

            for inst in block.non_phi_instructions():
                self.steps += 1
                if self.steps > self.max_steps:
                    raise StepLimitExceeded(function.name, self.steps)
                outcome = self._execute(inst, env)
                if isinstance(outcome, _Return):
                    return outcome.value
                if isinstance(outcome, _Jump):
                    previous_block, block = block, outcome.target
                    break
            else:
                raise InterpreterError(
                    f"{function.name}/{block.name}: fell off the end of a block")

    def _execute(self, inst: Instruction, env: dict[Value, int]):
        if isinstance(inst, BinaryOp):
            env[inst] = self._binop(inst.opcode, self._value(inst.lhs, env),
                                    self._value(inst.rhs, env))
            return None
        if isinstance(inst, ICmp):
            env[inst] = int(self._icmp(inst.predicate, self._value(inst.lhs, env),
                                       self._value(inst.rhs, env)))
            return None
        if isinstance(inst, Select):
            cond = self._value(inst.condition, env)
            env[inst] = self._value(inst.true_value if cond & 1 else inst.false_value, env)
            return None
        if isinstance(inst, Alloca):
            if inst not in env:
                env[inst] = self._allocate(inst.size_bytes)
            return None
        if isinstance(inst, Load):
            env[inst] = self._read_word(self._value(inst.pointer, env))
            return None
        if isinstance(inst, Store):
            self._write_word(self._value(inst.pointer, env), self._value(inst.value, env))
            return None
        if isinstance(inst, GEP):
            base = self._value(inst.base, env)
            index = _to_signed(self._value(inst.index, env))
            env[inst] = (base + index * inst.element_size) & WORD_MASK
            return None
        if isinstance(inst, Cast):
            env[inst] = self._cast(inst, self._value(inst.value, env))
            return None
        if isinstance(inst, Branch):
            return _Jump(inst.target)
        if isinstance(inst, CondBranch):
            cond = self._value(inst.condition, env)
            return _Jump(inst.true_target if cond & 1 else inst.false_target)
        if isinstance(inst, Ret):
            return _Return(self._value(inst.value, env) if inst.value is not None else 0)
        if isinstance(inst, Unreachable):
            raise InterpreterError("executed 'unreachable'")
        if isinstance(inst, Call):
            env[inst] = self._do_call(inst, env)
            return None
        raise InterpreterError(f"cannot interpret instruction {type(inst).__name__}")

    def _do_call(self, inst: Call, env: dict[Value, int]) -> int:
        args = [self._value(a, env) for a in inst.args]
        if inst.callee.startswith("__"):
            return self._host_call(inst.callee, args)
        callee = self.module.get_function(inst.callee)
        if callee is None or callee.is_declaration:
            raise InterpreterError(f"call to undefined function '{inst.callee}'")
        return self._call(callee, args)

    def _host_call(self, name: str, args: list[int]) -> int:
        """Host/environment calls, mirroring the zkVM guest API."""
        from ..zkvm.precompiles import interpret_host_call

        return interpret_host_call(name, args, self)

    # -- scalar semantics ----------------------------------------------------
    @staticmethod
    def _binop(opcode: str, lhs: int, rhs: int) -> int:
        slhs, srhs = _to_signed(lhs), _to_signed(rhs)
        if opcode == "add":
            return (lhs + rhs) & WORD_MASK
        if opcode == "sub":
            return (lhs - rhs) & WORD_MASK
        if opcode == "mul":
            return (lhs * rhs) & WORD_MASK
        if opcode == "sdiv":
            if srhs == 0:
                return WORD_MASK  # RISC-V semantics: division by zero yields -1
            result = abs(slhs) // abs(srhs)
            if (slhs < 0) != (srhs < 0):
                result = -result
            return result & WORD_MASK
        if opcode == "udiv":
            return (lhs // rhs) & WORD_MASK if rhs != 0 else WORD_MASK
        if opcode == "srem":
            if srhs == 0:
                return lhs
            result = abs(slhs) % abs(srhs)
            if slhs < 0:
                result = -result
            return result & WORD_MASK
        if opcode == "urem":
            return (lhs % rhs) & WORD_MASK if rhs != 0 else lhs
        if opcode == "and":
            return lhs & rhs
        if opcode == "or":
            return lhs | rhs
        if opcode == "xor":
            return lhs ^ rhs
        if opcode == "shl":
            return (lhs << (rhs & 31)) & WORD_MASK
        if opcode == "lshr":
            return (lhs >> (rhs & 31)) & WORD_MASK
        if opcode == "ashr":
            return (slhs >> (rhs & 31)) & WORD_MASK
        raise InterpreterError(f"unknown binary opcode {opcode}")

    @staticmethod
    def _icmp(predicate: str, lhs: int, rhs: int) -> bool:
        # Unsigned/equality predicates avoid the signed conversions entirely;
        # this is one of the hottest scalar helpers in the pass pipeline
        # (constant folding, SCCP, trip-count simulation).
        if predicate == "eq":
            return lhs == rhs
        if predicate == "ne":
            return lhs != rhs
        if predicate == "ult":
            return lhs < rhs
        if predicate == "ule":
            return lhs <= rhs
        if predicate == "ugt":
            return lhs > rhs
        if predicate == "uge":
            return lhs >= rhs
        slhs, srhs = _to_signed(lhs), _to_signed(rhs)
        if predicate == "slt":
            return slhs < srhs
        if predicate == "sle":
            return slhs <= srhs
        if predicate == "sgt":
            return slhs > srhs
        if predicate == "sge":
            return slhs >= srhs
        raise KeyError(predicate)

    @staticmethod
    def _cast(inst: Cast, value: int) -> int:
        bits = inst.type.bits  # type: ignore[attr-defined]
        if inst.opcode == "trunc":
            return value & ((1 << bits) - 1)
        if inst.opcode == "zext":
            return value & WORD_MASK
        # sext: sign-extend from the operand's width.
        src_bits = inst.value.type.bits if isinstance(inst.value.type, IntType) else 32
        value &= (1 << src_bits) - 1
        if value >= (1 << (src_bits - 1)):
            value -= 1 << src_bits
        return value & WORD_MASK


@dataclass
class _Jump:
    target: BasicBlock


@dataclass
class _Return:
    value: int


def run_module(module: Module, entry: str = "main",
               args: Optional[list[int]] = None,
               max_steps: int = 50_000_000) -> ExecutionResult:
    """Convenience wrapper: interpret ``module`` starting at ``entry``."""
    return Interpreter(module, max_steps=max_steps).run(entry, args)
