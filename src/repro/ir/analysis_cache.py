"""Process-wide switch for the IR-level CFG-metadata caches.

The pass pipeline's analysis caching has two tiers: per-function analyses
(dominators, loops, ...) managed by :class:`repro.passes.analysis.AnalysisManager`,
and the CFG metadata (predecessor maps) cached directly on
:class:`~repro.ir.function.Function` and validated against its CFG version.
The second tier is always coherent — every mutation of the block graph bumps
the version — but the ``--no-analysis-cache`` escape hatch must reproduce the
seed pass manager exactly, which recomputed every predecessor query from
scratch.  :func:`cfg_cache_disabled` turns the second tier off for a scope so
the fresh/differential path pays the same recomputation the seed did.
"""

from __future__ import annotations

from contextlib import contextmanager

_ENABLED = True


def cfg_cache_enabled() -> bool:
    """Whether CFG-metadata queries may be answered from per-function caches."""
    return _ENABLED


@contextmanager
def cfg_cache_disabled():
    """Recompute every CFG-metadata query from scratch within the scope.

    Re-entrant; restores the previous state on exit.  Used by
    ``PassManager(analysis_cache=False)`` so the escape-hatch pipeline matches
    the seed pass manager's recompute-everything behaviour.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
