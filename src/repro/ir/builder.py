"""A convenience builder for constructing IR, similar to llvmlite's IRBuilder."""

from __future__ import annotations

from typing import Optional, Sequence

from .basic_block import BasicBlock
from .instructions import (
    Alloca, BinaryOp, Branch, Call, Cast, CondBranch, GEP, ICmp, Instruction,
    Load, Phi, Ret, Select, Store, Unreachable,
)
from .types import IntType, Type, I1, I32, VOID
from .values import Constant, Value


class IRBuilder:
    """Appends instructions to a basic block, tracking an insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._counter = 0

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def _insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        return self.block.append(inst)

    # -- constants ---------------------------------------------------------
    def const(self, value: int, type_: IntType = I32) -> Constant:
        return Constant(value, type_)

    # -- arithmetic ----------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._insert(BinaryOp(opcode, lhs, rhs, name or self._fresh(opcode)))  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("sdiv", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("udiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("srem", lhs, rhs, name)

    def urem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("urem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self.binop("ashr", lhs, rhs, name)

    # -- comparisons / select -----------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name or self._fresh("cmp")))  # type: ignore[return-value]

    def select(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> Select:
        return self._insert(Select(cond, true_value, false_value, name or self._fresh("sel")))  # type: ignore[return-value]

    # -- memory --------------------------------------------------------------
    def alloca(self, allocated_type: Type = I32, count: int = 1, name: str = "") -> Alloca:
        return self._insert(Alloca(allocated_type, count, name or self._fresh("slot")))  # type: ignore[return-value]

    def load(self, pointer: Value, loaded_type: Type = I32, name: str = "") -> Load:
        return self._insert(Load(pointer, loaded_type, name or self._fresh("ld")))  # type: ignore[return-value]

    def store(self, value: Value, pointer: Value) -> Store:
        return self._insert(Store(value, pointer))  # type: ignore[return-value]

    def gep(self, base: Value, index: Value, element_size: int = 4, name: str = "") -> GEP:
        return self._insert(GEP(base, index, element_size, name or self._fresh("gep")))  # type: ignore[return-value]

    # -- control flow ----------------------------------------------------------
    def br(self, target: BasicBlock) -> Branch:
        return self._insert(Branch(target))  # type: ignore[return-value]

    def cond_br(self, condition: Value, true_target: BasicBlock, false_target: BasicBlock) -> CondBranch:
        return self._insert(CondBranch(condition, true_target, false_target))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._insert(Unreachable())  # type: ignore[return-value]

    def call(self, callee: str, args: Sequence[Value], return_type: Type = I32, name: str = "") -> Call:
        return self._insert(Call(callee, args, return_type, name or self._fresh("call")))  # type: ignore[return-value]

    def phi(self, type_: Type = I32, name: str = "") -> Phi:
        phi = Phi(type_, name or self._fresh("phi"))
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        self.block.insert(self.block.first_non_phi_index(), phi)
        return phi

    def cast(self, opcode: str, value: Value, to_type: IntType, name: str = "") -> Cast:
        return self._insert(Cast(opcode, value, to_type, name or self._fresh(opcode)))  # type: ignore[return-value]
