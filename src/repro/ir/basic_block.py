"""Basic blocks: straight-line sequences of instructions ending in a terminator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .analysis_cache import cfg_cache_enabled
from .instructions import Branch, CondBranch, Instruction, Phi
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import Function


class BasicBlock(Value):
    """A basic block owned by a function."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        from .types import VOID

        super().__init__(VOID, name)
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- structural manipulation -----------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        instruction.parent = self
        function = self.parent
        if function is not None:
            if instruction.is_terminator:
                function.invalidate_cfg()
            else:
                function._ir_version += 1
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        self.instructions.insert(index, instruction)
        instruction.parent = self
        function = self.parent
        if function is not None:
            if instruction.is_terminator:
                function.invalidate_cfg()
            else:
                function._ir_version += 1
        return instruction

    def insert_before_terminator(self, instruction: Instruction) -> Instruction:
        index = len(self.instructions)
        if self.instructions and self.instructions[-1].is_terminator:
            index -= 1
        return self.insert(index, instruction)

    def remove_instruction(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None
        function = self.parent
        if function is not None:
            if instruction.is_terminator:
                function.invalidate_cfg()
            else:
                function._ir_version += 1

    def __iter__(self) -> Iterator[Instruction]:
        return iter(list(self.instructions))

    def __len__(self) -> int:
        return len(self.instructions)

    # -- CFG queries ------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list["BasicBlock"]:
        instructions = self.instructions
        if instructions:
            last = instructions[-1]
            if last.is_terminator:
                # Every terminator class defines ``successors`` and returns a
                # fresh list, so no defensive copy is needed here.
                return last.successors
        return []

    @property
    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        if cfg_cache_enabled():
            preds = self.parent.predecessors_map().get(self)
            if preds is not None:
                # The map lists a predecessor once per edge; this query lists
                # each predecessor block once.  Duplicate edges from one block
                # (a CondBranch with equal targets) are adjacent in the map.
                deduped: list["BasicBlock"] = []
                for pred in preds:
                    if not deduped or deduped[-1] is not pred:
                        deduped.append(pred)
                return deduped
            # Not a member of parent.blocks (detached/in-flight block): fall
            # through to the direct scan, which handles that case too.
        preds = []
        for block in self.parent.blocks:
            if self in block.successors:
                preds.append(block)
        return preds

    def phis(self) -> list[Phi]:
        return [inst for inst in self.instructions if isinstance(inst, Phi)]

    def non_phi_instructions(self) -> list[Instruction]:
        return [inst for inst in self.instructions if not isinstance(inst, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        term = self.terminator
        if isinstance(term, (Branch, CondBranch)):
            term.replace_successor(old, new)

    def short_name(self) -> str:
        return f"%{self.name}"

    def __str__(self) -> str:
        return self.short_name()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BasicBlock({self.name}, {len(self.instructions)} insts)"
