"""Structural verification of IR, run after the frontend and after each pass
in debug/test configurations.  Mirrors (a small part of) LLVM's verifier."""

from __future__ import annotations

from .basic_block import BasicBlock
from .cfg import reachable_blocks
from .dominators import DominatorTree
from .function import Function
from .instructions import Branch, Call, CondBranch, Instruction, Phi, Ret, Unreachable
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_module(module: Module, check_dominance: bool = True) -> None:
    """Verify every defined function in the module."""
    for function in module.defined_functions():
        verify_function(function, module, check_dominance=check_dominance)


def verify_function(function: Function, module: Module | None = None,
                    check_dominance: bool = True) -> None:
    """Check structural invariants; raise :class:`VerificationError` on failure."""
    if not function.blocks:
        return
    block_set = set(function.blocks)

    for block in function.blocks:
        _verify_block(function, block, block_set, module)

    if check_dominance:
        _verify_dominance(function)


def _verify_block(function: Function, block: BasicBlock, block_set: set[BasicBlock],
                  module: Module | None) -> None:
    if not block.instructions:
        raise VerificationError(f"{function.name}/{block.name}: empty basic block")
    term = block.instructions[-1]
    if not term.is_terminator:
        raise VerificationError(
            f"{function.name}/{block.name}: block does not end with a terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            raise VerificationError(
                f"{function.name}/{block.name}: terminator in the middle of a block")

    seen_non_phi = False
    for inst in block.instructions:
        if inst.parent is not block:
            raise VerificationError(
                f"{function.name}/{block.name}: instruction parent link is broken")
        if isinstance(inst, Phi):
            if seen_non_phi:
                raise VerificationError(
                    f"{function.name}/{block.name}: phi after non-phi instruction")
        else:
            seen_non_phi = True

    # Branch targets must be blocks of this function.
    for succ in block.successors:
        if succ not in block_set:
            raise VerificationError(
                f"{function.name}/{block.name}: branch to a block outside the function "
                f"({succ.name})")

    # Phi nodes must have exactly one entry per predecessor.
    preds = block.predecessors
    for phi in block.phis():
        incoming_blocks = list(phi.incoming_blocks)
        if set(map(id, incoming_blocks)) != set(map(id, preds)) or \
                len(incoming_blocks) != len(preds):
            raise VerificationError(
                f"{function.name}/{block.name}: phi %{phi.name} incoming blocks "
                f"{[b.name for b in incoming_blocks]} do not match predecessors "
                f"{[b.name for b in preds]}")

    # Calls must target known functions when a module is provided.
    if module is not None:
        for inst in block.instructions:
            if isinstance(inst, Call) and module.get_function(inst.callee) is None \
                    and not inst.callee.startswith("__"):
                raise VerificationError(
                    f"{function.name}/{block.name}: call to unknown function @{inst.callee}")

    # Return types must match the function signature.
    for inst in block.instructions:
        if isinstance(inst, Ret):
            returns_value = inst.value is not None
            expects_value = function.return_type.size_bytes > 0
            if returns_value != expects_value:
                raise VerificationError(
                    f"{function.name}: return does not match function return type")


def _verify_dominance(function: Function) -> None:
    domtree = DominatorTree(function)
    reachable = reachable_blocks(function)
    for block in function.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if not isinstance(op, Instruction):
                    continue
                if op.parent is None or op.parent not in reachable:
                    continue
                if not domtree.value_dominates_use(op, inst):
                    raise VerificationError(
                        f"{function.name}/{block.name}: operand %{op.name} does not "
                        f"dominate its use in '{inst}'")
