"""Modules: the top-level container of functions and global variables."""

from __future__ import annotations

from typing import Iterator, Optional

from .function import Function
from .types import Type, I32
from .values import GlobalVariable


class Module:
    """A translation unit containing functions and globals."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function: {function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def create_function(self, name: str, return_type: Type = I32,
                        param_types: list[Type] | None = None,
                        param_names: list[str] | None = None) -> Function:
        return self.add_function(Function(name, return_type, param_types, param_names, self))

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def add_global(self, name: str, element_type: Type = I32, count: int = 1,
                   initializer: list[int] | None = None) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global: {name}")
        gv = GlobalVariable(name, element_type, count, initializer)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    def __iter__(self) -> Iterator[Function]:
        return iter(list(self.functions.values()))

    def defined_functions(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.defined_functions())

    def clone(self) -> "Module":
        """Deep-copy the module (used so that passes never mutate benchmark IR)."""
        from .cloning import clone_module

        return clone_module(self)

    def __str__(self) -> str:
        from .printer import format_module

        return format_module(self)
