"""Control-flow-graph utilities: traversal orders and reachability."""

from __future__ import annotations

from typing import Iterable, Iterator

from .analysis_cache import cfg_cache_enabled
from .basic_block import BasicBlock
from .function import Function


class OrderedSet:
    """An insertion-ordered set of identity-hashed IR objects.

    Plain ``set`` iteration over blocks/instructions depends on object
    addresses, which made the pass pipeline's *output layout* differ between
    two runs over clones of the same module (e.g. the block emission order of
    the loop unroller).  Analyses and passes that iterate block sets use this
    instead, keeping compiles byte-reproducible — a prerequisite for the
    cached-vs-fresh pipeline differential tests.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable = ()):
        self._items = dict.fromkeys(items)

    def add(self, item) -> None:
        self._items[item] = None

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def __contains__(self, item) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"OrderedSet({list(self._items)!r})"


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors


def predecessors_map(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """The predecessor map of every block, answered from the function's
    CFG-version-validated cache (recomputed from scratch when the cache is
    globally disabled).  Callers must not mutate the returned lists."""
    return function.predecessors_map()


def reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block.

    Cached on the function and validated against its CFG version (recomputed
    from scratch when the caches are globally disabled).  Callers must not
    mutate the returned set."""
    cache = cfg_cache_enabled()
    if cache and function._reach_version == function._cfg_version:
        return function._reach_set
    if not function.blocks:
        return set()
    seen: set[BasicBlock] = set()
    worklist = [function.entry_block]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors)
    if cache:
        function._reach_set = seen
        function._reach_version = function._cfg_version
    return seen


def postorder(function: Function) -> list[BasicBlock]:
    """Post-order traversal of the CFG from the entry block."""
    visited: set[BasicBlock] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry_block)
    return order


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Reverse post-order (a topological-ish order ideal for dataflow)."""
    return list(reversed(postorder(function)))


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from entry.  Returns the number removed."""
    reachable = reachable_blocks(function)
    removed = 0
    for block in list(function.blocks):
        if block in reachable:
            continue
        # Unlink phi references from reachable successors (unreachable ones are
        # being deleted anyway and may already have been torn down).
        for succ in block.successors:
            if succ not in reachable:
                continue
            for phi in succ.phis():
                phi.remove_incoming(block)
        function.remove_block(block)
        removed += 1
    return removed
