"""Control-flow-graph utilities: traversal orders and reachability."""

from __future__ import annotations

from .basic_block import BasicBlock
from .function import Function


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors


def predecessors_map(function: Function) -> dict[BasicBlock, list[BasicBlock]]:
    """Compute a predecessor map for every block in one pass over the CFG."""
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors:
            if succ in preds:
                preds[succ].append(block)
    return preds


def reachable_blocks(function: Function) -> set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if not function.blocks:
        return set()
    seen: set[BasicBlock] = set()
    worklist = [function.entry_block]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors)
    return seen


def postorder(function: Function) -> list[BasicBlock]:
    """Post-order traversal of the CFG from the entry block."""
    visited: set[BasicBlock] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        visited.add(block)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry_block)
    return order


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Reverse post-order (a topological-ish order ideal for dataflow)."""
    return list(reversed(postorder(function)))


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from entry.  Returns the number removed."""
    reachable = reachable_blocks(function)
    removed = 0
    for block in list(function.blocks):
        if block in reachable:
            continue
        # Unlink phi references from reachable successors (unreachable ones are
        # being deleted anyway and may already have been torn down).
        for succ in block.successors:
            if succ not in reachable:
                continue
            for phi in succ.phis():
                phi.remove_incoming(block)
        function.remove_block(block)
        removed += 1
    return removed
