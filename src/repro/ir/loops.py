"""Natural-loop detection, mirroring LLVM's LoopInfo analysis.

Loop structure drives several passes the paper studies (licm, loop-unroll,
loop-rotate, loop-deletion, indvars, ...), so the analysis exposes the same
concepts: header, latch, preheader, exit blocks and loop depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .basic_block import BasicBlock
from .cfg import OrderedSet, predecessors_map
from .dominators import DominatorTree
from .function import Function


@dataclass
class Loop:
    """A natural loop: a header plus the set of blocks that can reach the latch.

    ``blocks`` is an insertion-ordered set so every iteration over a loop's
    body (hoisting, unrolling, cloning, ...) is deterministic and compiles
    stay byte-reproducible.
    """

    header: BasicBlock
    blocks: OrderedSet = field(default_factory=OrderedSet)
    latches: list[BasicBlock] = field(default_factory=list)
    parent: "Loop | None" = None
    subloops: list["Loop"] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth(self) -> int:
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def preheader(self) -> BasicBlock | None:
        """The unique out-of-loop predecessor of the header, if there is one."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1 and len(outside[0].successors) == 1:
            return outside[0]
        return None

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks outside the loop that are targeted from inside the loop."""
        exits: list[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def exiting_blocks(self) -> list[BasicBlock]:
        """Blocks inside the loop with a successor outside the loop."""
        return [b for b in self.blocks
                if any(s not in self.blocks for s in b.successors)]

    def body_in_rpo(self) -> list[BasicBlock]:
        """The loop's blocks in reverse post-order from the header.

        Cloning transformations (unrolling, unswitching) must visit defs
        before their cross-block uses so their value maps are populated in
        time; iterating the bare ``blocks`` set visits blocks in discovery
        order, which runs latch-backwards and broke that invariant.
        """
        visited = {self.header}
        order: list[BasicBlock] = []
        stack = [(self.header, iter(self.header.successors))]
        while stack:
            block, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ in self.blocks and succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()
        # Unreachable-from-header loop blocks cannot exist in a natural loop,
        # but keep any stragglers rather than dropping them silently.
        order.extend(b for b in self.blocks if b not in visited)
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Loop(header={self.header.name}, blocks={len(self.blocks)}, depth={self.depth})"


class LoopInfo:
    """All natural loops of a function, nested into a loop forest."""

    def __init__(self, function: Function, domtree: DominatorTree | None = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level: list[Loop] = []
        self._block_to_loop: dict[BasicBlock, Loop] = {}
        self._discover()

    def _discover(self) -> None:
        preds = predecessors_map(self.function)
        # Find back edges: edge (latch -> header) where header dominates latch.
        headers: dict[BasicBlock, list[BasicBlock]] = {}
        for block in self.function.blocks:
            for succ in block.successors:
                if self.domtree.dominates(succ, block):
                    headers.setdefault(succ, []).append(block)

        loops: list[Loop] = []
        for header, latches in headers.items():
            loop = Loop(header=header, latches=latches)
            loop.blocks.add(header)
            worklist = list(latches)
            while worklist:
                block = worklist.pop()
                if block in loop.blocks:
                    continue
                loop.blocks.add(block)
                worklist.extend(preds.get(block, []))
            loops.append(loop)

        # Nest loops: a loop is a subloop of the smallest loop strictly containing it.
        loops.sort(key=lambda l: len(l.blocks))
        for i, inner in enumerate(loops):
            for outer in loops[i + 1:]:
                if inner.header in outer.blocks and inner is not outer:
                    inner.parent = outer
                    outer.subloops.append(inner)
                    break
        self.top_level = [l for l in loops if l.parent is None]
        # Map each block to its innermost loop.
        for loop in loops:
            for block in loop.blocks:
                existing = self._block_to_loop.get(block)
                if existing is None or len(loop.blocks) < len(existing.blocks):
                    self._block_to_loop[block] = loop

    def loops(self) -> list[Loop]:
        """All loops (outermost first within each tree)."""
        result: list[Loop] = []

        def visit(loop: Loop) -> None:
            result.append(loop)
            for sub in loop.subloops:
                visit(sub)

        for loop in self.top_level:
            visit(loop)
        return result

    def innermost_loops(self) -> list[Loop]:
        return [l for l in self.loops() if not l.subloops]

    def loop_for(self, block: BasicBlock) -> Loop | None:
        return self._block_to_loop.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0
