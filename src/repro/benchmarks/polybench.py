"""The PolyBench suite (30 kernels), ported to MiniC with reduced sizes.

The original kernels operate on doubles; zkVMs have no native floating point,
so (like many zkVM workloads) these use 32-bit integer arithmetic.  Matrices
are flattened into 1-D arrays.  Every kernel prints a checksum of its output
arrays so the harness can check behavioural equivalence across profiles.
"""

from __future__ import annotations

from . import register

# A shared helper appended to every kernel: deterministic pseudo-data and a
# checksum accumulator.
PRELUDE = """
fn poly_init(v, n, seed) {
  var i;
  for (i = 0; i < n; i = i + 1) {
    v[i] = (seed * (i + 3) * 1103515245 + 12345) % 1024 - 512;
  }
}

fn poly_checksum(v, n) -> int {
  var i;
  var acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + v[i] * (i + 1);
  }
  return acc;
}
"""


def _register(name: str, body: str, description: str) -> None:
    register(f"polybench-{name}", "polybench", PRELUDE + body, description)


_register("2mm", """
const NI = 8; const NJ = 8; const NK = 8; const NL = 8;
global A[64]; global B[64]; global C[64]; global D[64]; global tmp[64];

fn kernel() {
  var i; var j; var k;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) {
      tmp[i * NJ + j] = 0;
      for (k = 0; k < NK; k = k + 1) {
        tmp[i * NJ + j] = tmp[i * NJ + j] + 3 * A[i * NK + k] * B[k * NJ + j];
      }
    }
  }
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NL; j = j + 1) {
      D[i * NL + j] = D[i * NL + j] * 2;
      for (k = 0; k < NJ; k = k + 1) {
        D[i * NL + j] = D[i * NL + j] + tmp[i * NJ + k] * C[k * NL + j];
      }
    }
  }
}

fn main() -> int {
  poly_init(A, 64, 1); poly_init(B, 64, 2); poly_init(C, 64, 3); poly_init(D, 64, 4);
  kernel();
  var s = poly_checksum(D, 64);
  print(s);
  return s;
}
""", "Two matrix multiplications D = alpha*A*B*C + beta*D")

_register("3mm", """
const N = 8;
global A[64]; global B[64]; global C[64]; global D[64];
global E[64]; global F[64]; global G[64];

fn matmul(dst, x, y) {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      dst[i * N + j] = 0;
      for (k = 0; k < N; k = k + 1) {
        dst[i * N + j] = dst[i * N + j] + x[i * N + k] * y[k * N + j];
      }
    }
  }
}

fn main() -> int {
  poly_init(A, 64, 1); poly_init(B, 64, 2); poly_init(C, 64, 3); poly_init(D, 64, 4);
  matmul(E, A, B);
  matmul(F, C, D);
  matmul(G, E, F);
  var s = poly_checksum(G, 64);
  print(s);
  return s;
}
""", "Three chained matrix multiplications G = (A*B)*(C*D)")

_register("adi", """
const N = 10; const TSTEPS = 3;
global u[100]; global v[100]; global p[100]; global q[100];

fn main() -> int {
  poly_init(u, 100, 7);
  var t; var i; var j;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      v[0 * N + i] = 1;
      p[i * N + 0] = 0;
      q[i * N + 0] = v[0 * N + i];
      for (j = 1; j < N - 1; j = j + 1) {
        p[i * N + j] = (0 - 3) / (2 * p[i * N + j - 1] - 6 + 1);
        q[i * N + j] = (u[j * N + i - 1] + u[j * N + i + 1] - u[j * N + i]
                        + 3 * q[i * N + j - 1]) / (2 * p[i * N + j - 1] - 6 + 1);
      }
      v[(N - 1) * N + i] = 1;
      for (j = N - 2; j >= 1; j = j - 1) {
        v[j * N + i] = p[i * N + j] * v[(j + 1) * N + i] + q[i * N + j];
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        u[i * N + j] = (v[i * N + j] + v[(i - 1) * N + j] + v[(i + 1) * N + j]) / 3;
      }
    }
  }
  var s = poly_checksum(u, 100) + poly_checksum(v, 100);
  print(s);
  return s;
}
""", "Alternating-direction implicit solver")

_register("atax", """
const M = 10; const N = 10;
global A[100]; global x[16]; global y[16]; global tmp[16];

fn main() -> int {
  poly_init(A, 100, 5); poly_init(x, N, 6);
  var i; var j;
  for (i = 0; i < N; i = i + 1) { y[i] = 0; }
  for (i = 0; i < M; i = i + 1) {
    tmp[i] = 0;
    for (j = 0; j < N; j = j + 1) { tmp[i] = tmp[i] + A[i * N + j] * x[j]; }
    for (j = 0; j < N; j = j + 1) { y[j] = y[j] + A[i * N + j] * tmp[i]; }
  }
  var s = poly_checksum(y, N);
  print(s);
  return s;
}
""", "Matrix transpose times vector product y = A^T (A x)")

_register("bicg", """
const M = 10; const N = 10;
global A[100]; global s[16]; global q[16]; global p[16]; global r[16];

fn main() -> int {
  poly_init(A, 100, 3); poly_init(p, M, 4); poly_init(r, N, 5);
  var i; var j;
  for (i = 0; i < M; i = i + 1) { s[i] = 0; }
  for (i = 0; i < N; i = i + 1) {
    q[i] = 0;
    for (j = 0; j < M; j = j + 1) {
      s[j] = s[j] + r[i] * A[i * M + j];
      q[i] = q[i] + A[i * M + j] * p[j];
    }
  }
  var c = poly_checksum(s, M) + poly_checksum(q, N);
  print(c);
  return c;
}
""", "BiCG sub-kernel of BiCGStab")

_register("cholesky", """
const N = 10;
global A[100];

fn main() -> int {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) { A[i * N + j] = (i * 7 + j * 3) % 19 + 1; }
    A[i * N + i] = A[i * N + i] + 400;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      for (k = 0; k < j; k = k + 1) {
        A[i * N + j] = A[i * N + j] - A[i * N + k] * A[j * N + k];
      }
      A[i * N + j] = A[i * N + j] / (A[j * N + j] + 1);
    }
    for (k = 0; k < i; k = k + 1) {
      A[i * N + i] = A[i * N + i] - A[i * N + k] * A[i * N + k];
    }
  }
  var s = poly_checksum(A, 100);
  print(s);
  return s;
}
""", "Cholesky decomposition (integer variant)")

_register("correlation", """
const M = 8; const N = 10;
global data[80]; global corr[64]; global mean[8]; global stddev[8];

fn main() -> int {
  poly_init(data, 80, 11);
  var i; var j; var k;
  for (j = 0; j < M; j = j + 1) {
    mean[j] = 0;
    for (i = 0; i < N; i = i + 1) { mean[j] = mean[j] + data[i * M + j]; }
    mean[j] = mean[j] / N;
    stddev[j] = 0;
    for (i = 0; i < N; i = i + 1) {
      stddev[j] = stddev[j] + (data[i * M + j] - mean[j]) * (data[i * M + j] - mean[j]);
    }
    stddev[j] = stddev[j] / N + 1;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < M; j = j + 1) { data[i * M + j] = data[i * M + j] - mean[j]; }
  }
  for (i = 0; i < M; i = i + 1) {
    corr[i * M + i] = 1;
    for (j = i + 1; j < M; j = j + 1) {
      corr[i * M + j] = 0;
      for (k = 0; k < N; k = k + 1) {
        corr[i * M + j] = corr[i * M + j] + data[k * M + i] * data[k * M + j];
      }
      corr[i * M + j] = corr[i * M + j] / (stddev[i] * stddev[j] + 1);
      corr[j * M + i] = corr[i * M + j];
    }
  }
  var s = poly_checksum(corr, 64);
  print(s);
  return s;
}
""", "Correlation matrix computation")

_register("covariance", """
const M = 8; const N = 10;
global data[80]; global cov[64]; global mean[8];

fn main() -> int {
  poly_init(data, 80, 13);
  var i; var j; var k;
  for (j = 0; j < M; j = j + 1) {
    mean[j] = 0;
    for (i = 0; i < N; i = i + 1) { mean[j] = mean[j] + data[i * M + j]; }
    mean[j] = mean[j] / N;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < M; j = j + 1) { data[i * M + j] = data[i * M + j] - mean[j]; }
  }
  for (i = 0; i < M; i = i + 1) {
    for (j = i; j < M; j = j + 1) {
      cov[i * M + j] = 0;
      for (k = 0; k < N; k = k + 1) {
        cov[i * M + j] = cov[i * M + j] + data[k * M + i] * data[k * M + j];
      }
      cov[i * M + j] = cov[i * M + j] / (N - 1);
      cov[j * M + i] = cov[i * M + j];
    }
  }
  var s = poly_checksum(cov, 64);
  print(s);
  return s;
}
""", "Covariance matrix computation")

_register("deriche", """
const W = 12; const H = 8;
global img_in[96]; global img_out[96]; global y1[96]; global y2[96];

fn main() -> int {
  poly_init(img_in, 96, 17);
  var i; var j;
  for (i = 0; i < W; i = i + 1) {
    var ym1 = 0; var ym2 = 0; var xm1 = 0;
    for (j = 0; j < H; j = j + 1) {
      y1[i * H + j] = img_in[i * H + j] / 2 + xm1 / 4 + ym1 / 2 - ym2 / 4;
      xm1 = img_in[i * H + j];
      ym2 = ym1;
      ym1 = y1[i * H + j];
    }
    var yp1 = 0; var yp2 = 0; var xp1 = 0; var xp2 = 0;
    for (j = H - 1; j >= 0; j = j - 1) {
      y2[i * H + j] = xp1 / 4 + xp2 / 8 + yp1 / 2 - yp2 / 4;
      xp2 = xp1;
      xp1 = img_in[i * H + j];
      yp2 = yp1;
      yp1 = y2[i * H + j];
    }
    for (j = 0; j < H; j = j + 1) {
      img_out[i * H + j] = y1[i * H + j] + y2[i * H + j];
    }
  }
  var s = poly_checksum(img_out, 96);
  print(s);
  return s;
}
""", "Deriche recursive edge-detection filter")

_register("doitgen", """
const NR = 6; const NQ = 6; const NP = 6;
global A[216]; global C4[36]; global sum[8];

fn main() -> int {
  poly_init(A, 216, 19); poly_init(C4, 36, 20);
  var r; var q; var p; var s;
  for (r = 0; r < NR; r = r + 1) {
    for (q = 0; q < NQ; q = q + 1) {
      for (p = 0; p < NP; p = p + 1) {
        sum[p] = 0;
        for (s = 0; s < NP; s = s + 1) {
          sum[p] = sum[p] + A[(r * NQ + q) * NP + s] * C4[s * NP + p];
        }
      }
      for (p = 0; p < NP; p = p + 1) { A[(r * NQ + q) * NP + p] = sum[p]; }
    }
  }
  var c = poly_checksum(A, 216);
  print(c);
  return c;
}
""", "Multi-resolution analysis kernel (MADNESS)")

_register("durbin", """
const N = 16;
global r[16]; global y[16]; global z[16];

fn main() -> int {
  poly_init(r, N, 23);
  var i; var k;
  y[0] = 0 - r[0];
  var beta = 1; var alpha = 0 - r[0];
  for (k = 1; k < N; k = k + 1) {
    beta = (1 - (alpha * alpha) / 256) * beta + 1;
    var sum = 0;
    for (i = 0; i < k; i = i + 1) { sum = sum + r[k - i - 1] * y[i]; }
    alpha = 0 - (r[k] + sum) / (beta + 1);
    for (i = 0; i < k; i = i + 1) { z[i] = y[i] + alpha * y[k - i - 1] / 64; }
    for (i = 0; i < k; i = i + 1) { y[i] = z[i]; }
    y[k] = alpha;
  }
  var s = poly_checksum(y, N);
  print(s);
  return s;
}
""", "Toeplitz system solver (Durbin recursion)")

_register("fdtd-2d", """
const NX = 10; const NY = 8; const TSTEPS = 3;
global ex[80]; global ey[80]; global hz[80];

fn main() -> int {
  poly_init(ex, 80, 29); poly_init(ey, 80, 30); poly_init(hz, 80, 31);
  var t; var i; var j;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (j = 0; j < NY; j = j + 1) { ey[j] = t; }
    for (i = 1; i < NX; i = i + 1) {
      for (j = 0; j < NY; j = j + 1) {
        ey[i * NY + j] = ey[i * NY + j] - (hz[i * NY + j] - hz[(i - 1) * NY + j]) / 2;
      }
    }
    for (i = 0; i < NX; i = i + 1) {
      for (j = 1; j < NY; j = j + 1) {
        ex[i * NY + j] = ex[i * NY + j] - (hz[i * NY + j] - hz[i * NY + j - 1]) / 2;
      }
    }
    for (i = 0; i < NX - 1; i = i + 1) {
      for (j = 0; j < NY - 1; j = j + 1) {
        hz[i * NY + j] = hz[i * NY + j]
          - (ex[i * NY + j + 1] - ex[i * NY + j] + ey[(i + 1) * NY + j] - ey[i * NY + j]) * 7 / 10;
      }
    }
  }
  var s = poly_checksum(hz, 80);
  print(s);
  return s;
}
""", "2-D finite-difference time-domain kernel")

_register("floyd-warshall", """
const N = 12;
global path[144];

fn main() -> int {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      path[i * N + j] = (i * j) % 7 + 1;
      if (((i + j) % 13) == 0) { path[i * N + j] = 999; }
    }
  }
  for (k = 0; k < N; k = k + 1) {
    for (i = 0; i < N; i = i + 1) {
      for (j = 0; j < N; j = j + 1) {
        var through = path[i * N + k] + path[k * N + j];
        if (through < path[i * N + j]) { path[i * N + j] = through; }
      }
    }
  }
  var s = poly_checksum(path, 144);
  print(s);
  return s;
}
""", "All-pairs shortest paths (Floyd-Warshall)")

_register("gemm", """
const NI = 10; const NJ = 10; const NK = 10;
global A[100]; global B[100]; global C[100];

fn main() -> int {
  poly_init(A, 100, 37); poly_init(B, 100, 38); poly_init(C, 100, 39);
  var i; var j; var k;
  for (i = 0; i < NI; i = i + 1) {
    for (j = 0; j < NJ; j = j + 1) {
      C[i * NJ + j] = C[i * NJ + j] * 2;
      for (k = 0; k < NK; k = k + 1) {
        C[i * NJ + j] = C[i * NJ + j] + 3 * A[i * NK + k] * B[k * NJ + j];
      }
    }
  }
  var s = poly_checksum(C, 100);
  print(s);
  return s;
}
""", "General matrix multiplication C = alpha*A*B + beta*C")

_register("gemver", """
const N = 12;
global A[144]; global u1[16]; global v1[16]; global u2[16]; global v2[16];
global w[16]; global x[16]; global y[16]; global z[16];

fn main() -> int {
  poly_init(A, 144, 41); poly_init(u1, N, 42); poly_init(v1, N, 43);
  poly_init(u2, N, 44); poly_init(v2, N, 45); poly_init(y, N, 46); poly_init(z, N, 47);
  var i; var j;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      A[i * N + j] = A[i * N + j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (i = 0; i < N; i = i + 1) {
    x[i] = 0;
    for (j = 0; j < N; j = j + 1) { x[i] = x[i] + 3 * A[j * N + i] * y[j]; }
  }
  for (i = 0; i < N; i = i + 1) { x[i] = x[i] + z[i]; }
  for (i = 0; i < N; i = i + 1) {
    w[i] = 0;
    for (j = 0; j < N; j = j + 1) { w[i] = w[i] + 2 * A[i * N + j] * x[j]; }
  }
  var s = poly_checksum(w, N);
  print(s);
  return s;
}
""", "Vector multiplication and matrix addition (BLAS gemver)")

_register("gesummv", """
const N = 12;
global A[144]; global B[144]; global x[16]; global y[16]; global tmp[16];

fn main() -> int {
  poly_init(A, 144, 51); poly_init(B, 144, 52); poly_init(x, N, 53);
  var i; var j;
  for (i = 0; i < N; i = i + 1) {
    tmp[i] = 0;
    y[i] = 0;
    for (j = 0; j < N; j = j + 1) {
      tmp[i] = tmp[i] + A[i * N + j] * x[j];
      y[i] = y[i] + B[i * N + j] * x[j];
    }
    y[i] = 3 * tmp[i] + 2 * y[i];
  }
  var s = poly_checksum(y, N);
  print(s);
  return s;
}
""", "Scalar, vector and matrix multiplication (BLAS gesummv)")

_register("gramschmidt", """
const M = 8; const N = 8;
global A[64]; global R[64]; global Q[64];

fn isqrt(x) -> int {
  if (x <= 0) { return 1; }
  var guess = x;
  var i;
  for (i = 0; i < 12; i = i + 1) { guess = (guess + x / guess) / 2; }
  if (guess <= 0) { return 1; }
  return guess;
}

fn main() -> int {
  poly_init(A, 64, 57);
  var i; var j; var k;
  for (k = 0; k < N; k = k + 1) {
    var nrm = 0;
    for (i = 0; i < M; i = i + 1) { nrm = nrm + A[i * N + k] * A[i * N + k]; }
    R[k * N + k] = isqrt(nrm);
    for (i = 0; i < M; i = i + 1) { Q[i * N + k] = A[i * N + k] * 16 / R[k * N + k]; }
    for (j = k + 1; j < N; j = j + 1) {
      R[k * N + j] = 0;
      for (i = 0; i < M; i = i + 1) { R[k * N + j] = R[k * N + j] + Q[i * N + k] * A[i * N + j]; }
      for (i = 0; i < M; i = i + 1) {
        A[i * N + j] = A[i * N + j] - Q[i * N + k] * R[k * N + j] / 256;
      }
    }
  }
  var s = poly_checksum(R, 64) + poly_checksum(Q, 64);
  print(s);
  return s;
}
""", "Gram-Schmidt orthonormalization (fixed point)")

_register("heat-3d", """
const N = 6; const TSTEPS = 3;
global A[216]; global B[216];

fn main() -> int {
  poly_init(A, 216, 61); poly_init(B, 216, 62);
  var t; var i; var j; var k;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        for (k = 1; k < N - 1; k = k + 1) {
          B[(i * N + j) * N + k] =
            (A[((i + 1) * N + j) * N + k] - 2 * A[(i * N + j) * N + k] + A[((i - 1) * N + j) * N + k]) / 8
            + (A[(i * N + j + 1) * N + k] - 2 * A[(i * N + j) * N + k] + A[(i * N + j - 1) * N + k]) / 8
            + (A[(i * N + j) * N + k + 1] - 2 * A[(i * N + j) * N + k] + A[(i * N + j) * N + k - 1]) / 8
            + A[(i * N + j) * N + k];
        }
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        for (k = 1; k < N - 1; k = k + 1) {
          A[(i * N + j) * N + k] = B[(i * N + j) * N + k];
        }
      }
    }
  }
  var s = poly_checksum(A, 216);
  print(s);
  return s;
}
""", "3-D heat equation stencil")

_register("jacobi-1d", """
const N = 48; const TSTEPS = 6;
global A[48]; global B[48];

fn main() -> int {
  poly_init(A, N, 67); poly_init(B, N, 68);
  var t; var i;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (i = 1; i < N - 1; i = i + 1) { B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3; }
    for (i = 1; i < N - 1; i = i + 1) { A[i] = (B[i - 1] + B[i] + B[i + 1]) / 3; }
  }
  var s = poly_checksum(A, N);
  print(s);
  return s;
}
""", "1-D Jacobi stencil")

_register("jacobi-2d", """
const N = 10; const TSTEPS = 3;
global A[100]; global B[100];

fn main() -> int {
  poly_init(A, 100, 71); poly_init(B, 100, 72);
  var t; var i; var j;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        B[i * N + j] = (A[i * N + j] + A[i * N + j - 1] + A[i * N + j + 1]
                        + A[(i + 1) * N + j] + A[(i - 1) * N + j]) / 5;
      }
    }
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        A[i * N + j] = (B[i * N + j] + B[i * N + j - 1] + B[i * N + j + 1]
                        + B[(i + 1) * N + j] + B[(i - 1) * N + j]) / 5;
      }
    }
  }
  var s = poly_checksum(A, 100);
  print(s);
  return s;
}
""", "2-D Jacobi stencil")

_register("lu", """
const N = 10;
global A[100];

fn main() -> int {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) { A[i * N + j] = (i * 5 + j * 11) % 23 + 1; }
    A[i * N + i] = A[i * N + i] + 300;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      for (k = 0; k < j; k = k + 1) { A[i * N + j] = A[i * N + j] - A[i * N + k] * A[k * N + j]; }
      A[i * N + j] = A[i * N + j] / (A[j * N + j] + 1);
    }
    for (j = i; j < N; j = j + 1) {
      for (k = 0; k < i; k = k + 1) { A[i * N + j] = A[i * N + j] - A[i * N + k] * A[k * N + j]; }
    }
  }
  var s = poly_checksum(A, 100);
  print(s);
  return s;
}
""", "LU decomposition without pivoting")

_register("ludcmp", """
const N = 10;
global A[100]; global b[16]; global x[16]; global y[16];

fn main() -> int {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    b[i] = (i * 13) % 29 + 1;
    for (j = 0; j < N; j = j + 1) { A[i * N + j] = (i * 3 + j * 7) % 17 + 1; }
    A[i * N + i] = A[i * N + i] + 250;
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < i; j = j + 1) {
      var w1 = A[i * N + j];
      for (k = 0; k < j; k = k + 1) { w1 = w1 - A[i * N + k] * A[k * N + j]; }
      A[i * N + j] = w1 / (A[j * N + j] + 1);
    }
    for (j = i; j < N; j = j + 1) {
      var w2 = A[i * N + j];
      for (k = 0; k < i; k = k + 1) { w2 = w2 - A[i * N + k] * A[k * N + j]; }
      A[i * N + j] = w2;
    }
  }
  for (i = 0; i < N; i = i + 1) {
    var w3 = b[i];
    for (j = 0; j < i; j = j + 1) { w3 = w3 - A[i * N + j] * y[j]; }
    y[i] = w3;
  }
  for (i = N - 1; i >= 0; i = i - 1) {
    var w4 = y[i];
    for (j = i + 1; j < N; j = j + 1) { w4 = w4 - A[i * N + j] * x[j]; }
    x[i] = w4 / (A[i * N + i] + 1);
  }
  var s = poly_checksum(x, N);
  print(s);
  return s;
}
""", "LU decomposition followed by forward/backward substitution")

_register("mvt", """
const N = 12;
global A[144]; global x1[16]; global x2[16]; global y1[16]; global y2[16];

fn main() -> int {
  poly_init(A, 144, 83); poly_init(x1, N, 84); poly_init(x2, N, 85);
  poly_init(y1, N, 86); poly_init(y2, N, 87);
  var i; var j;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) { x1[i] = x1[i] + A[i * N + j] * y1[j]; }
  }
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j < N; j = j + 1) { x2[i] = x2[i] + A[j * N + i] * y2[j]; }
  }
  var s = poly_checksum(x1, N) + poly_checksum(x2, N);
  print(s);
  return s;
}
""", "Matrix-vector product and transpose")

_register("nussinov", """
const N = 14;
global seq[16]; global table[196];

fn maxval(a, b) -> int {
  if (a > b) { return a; }
  return b;
}

fn main() -> int {
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) { seq[i] = (i * 7 + 3) % 4; }
  for (i = N - 1; i >= 0; i = i - 1) {
    for (j = i + 1; j < N; j = j + 1) {
      if (j - 1 >= 0) { table[i * N + j] = maxval(table[i * N + j], table[i * N + j - 1]); }
      if (i + 1 < N)  { table[i * N + j] = maxval(table[i * N + j], table[(i + 1) * N + j]); }
      if (j - 1 >= 0 && i + 1 < N) {
        var match = 0;
        if (seq[i] + seq[j] == 3) { match = 1; }
        table[i * N + j] = maxval(table[i * N + j], table[(i + 1) * N + j - 1] + match);
      }
      for (k = i + 1; k < j; k = k + 1) {
        table[i * N + j] = maxval(table[i * N + j], table[i * N + k] + table[(k + 1) * N + j]);
      }
    }
  }
  var s = table[0 * N + N - 1] * 1000 + poly_checksum(table, 196) % 1000;
  print(s);
  return s;
}
""", "RNA secondary-structure prediction (Nussinov dynamic programming)")

_register("seidel-2d", """
const N = 10; const TSTEPS = 3;
global A[100];

fn main() -> int {
  poly_init(A, 100, 91);
  var t; var i; var j;
  for (t = 0; t < TSTEPS; t = t + 1) {
    for (i = 1; i < N - 1; i = i + 1) {
      for (j = 1; j < N - 1; j = j + 1) {
        A[i * N + j] = (A[(i - 1) * N + j - 1] + A[(i - 1) * N + j] + A[(i - 1) * N + j + 1]
                        + A[i * N + j - 1] + A[i * N + j] + A[i * N + j + 1]
                        + A[(i + 1) * N + j - 1] + A[(i + 1) * N + j] + A[(i + 1) * N + j + 1]) / 9;
      }
    }
  }
  var s = poly_checksum(A, 100);
  print(s);
  return s;
}
""", "2-D Gauss-Seidel stencil")

_register("symm", """
const M = 8; const N = 8;
global A[64]; global B[64]; global C[64];

fn main() -> int {
  poly_init(A, 64, 93); poly_init(B, 64, 94); poly_init(C, 64, 95);
  var i; var j; var k;
  for (i = 0; i < M; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      var temp2 = 0;
      for (k = 0; k < i; k = k + 1) {
        C[k * N + j] = C[k * N + j] + 2 * B[i * N + j] * A[i * M + k];
        temp2 = temp2 + B[k * N + j] * A[i * M + k];
      }
      C[i * N + j] = C[i * N + j] + 2 * B[i * N + j] * A[i * M + i] + 2 * temp2;
    }
  }
  var s = poly_checksum(C, 64);
  print(s);
  return s;
}
""", "Symmetric matrix multiplication (BLAS symm)")

_register("syr2k", """
const N = 8; const M = 8;
global A[64]; global B[64]; global C[64];

fn main() -> int {
  poly_init(A, 64, 97); poly_init(B, 64, 98); poly_init(C, 64, 99);
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j <= i; j = j + 1) { C[i * N + j] = C[i * N + j] * 2; }
    for (k = 0; k < M; k = k + 1) {
      for (j = 0; j <= i; j = j + 1) {
        C[i * N + j] = C[i * N + j] + A[j * M + k] * B[i * M + k] + B[j * M + k] * A[i * M + k];
      }
    }
  }
  var s = poly_checksum(C, 64);
  print(s);
  return s;
}
""", "Symmetric rank-2k update (BLAS syr2k)")

_register("syrk", """
const N = 8; const M = 8;
global A[64]; global C[64];

fn main() -> int {
  poly_init(A, 64, 101); poly_init(C, 64, 102);
  var i; var j; var k;
  for (i = 0; i < N; i = i + 1) {
    for (j = 0; j <= i; j = j + 1) { C[i * N + j] = C[i * N + j] * 2; }
    for (k = 0; k < M; k = k + 1) {
      for (j = 0; j <= i; j = j + 1) {
        C[i * N + j] = C[i * N + j] + 3 * A[i * M + k] * A[j * M + k];
      }
    }
  }
  var s = poly_checksum(C, 64);
  print(s);
  return s;
}
""", "Symmetric rank-k update (BLAS syrk)")

_register("trisolv", """
const N = 14;
global L[196]; global b[16]; global x[16];

fn main() -> int {
  var i; var j;
  for (i = 0; i < N; i = i + 1) {
    b[i] = (i * 19) % 31 + 1;
    for (j = 0; j <= i; j = j + 1) { L[i * N + j] = (i * 3 + j) % 9 + 1; }
    L[i * N + i] = L[i * N + i] + 20;
  }
  for (i = 0; i < N; i = i + 1) {
    x[i] = b[i];
    for (j = 0; j < i; j = j + 1) { x[i] = x[i] - L[i * N + j] * x[j]; }
    x[i] = x[i] / L[i * N + i];
  }
  var s = poly_checksum(x, N);
  print(s);
  return s;
}
""", "Triangular system solve")

_register("trmm", """
const M = 8; const N = 8;
global A[64]; global B[64];

fn main() -> int {
  poly_init(A, 64, 103); poly_init(B, 64, 104);
  var i; var j; var k;
  for (i = 0; i < M; i = i + 1) {
    for (j = 0; j < N; j = j + 1) {
      for (k = i + 1; k < M; k = k + 1) {
        B[i * N + j] = B[i * N + j] + A[k * M + i] * B[k * N + j];
      }
      B[i * N + j] = 3 * B[i * N + j];
    }
  }
  var s = poly_checksum(B, 64);
  print(s);
  return s;
}
""", "Triangular matrix multiplication (BLAS trmm)")
