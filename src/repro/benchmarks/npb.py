"""Reduced-scale stand-ins for the NAS Parallel Benchmarks (sequential Rust port).

The real NPB programs are thousands of lines of floating-point code; these
stand-ins keep each benchmark's characteristic loop/memory structure (CG's
sparse mat-vec, IS's counting sort, MG's multi-level relaxation, the
line-solve sweeps of LU/SP/BT, ...) at integer precision and reduced size.
"""

from __future__ import annotations

from . import register


def _register(name: str, source: str, description: str) -> None:
    register(f"npb-{name}", "npb", source, description)


_register("ep", """
// Embarrassingly Parallel: generate pseudo-random pairs and count by annulus.
const SAMPLES = 600;
global counts[10];

fn main() -> int {
  var seed = 271828183;
  var i;
  for (i = 0; i < SAMPLES; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    var x = seed % 1000;
    seed = (seed * 1103515245 + 12345) % 2147483647;
    var y = seed % 1000;
    var t = (x * x + y * y) / 100000;
    if (t > 9) { t = 9; }
    if (t < 0) { t = 0 - t; if (t > 9) { t = 9; } }
    counts[t] = counts[t] + 1;
  }
  var acc = 0;
  for (i = 0; i < 10; i = i + 1) { acc = acc + counts[i] * (i + 1); }
  print(acc);
  return acc;
}
""", "EP: pseudo-random pair generation and binning")

_register("cg", """
// Conjugate Gradient: repeated sparse matrix-vector products.
const N = 24; const NNZ_PER_ROW = 4; const ITERS = 6;
global colidx[96]; global values[96]; global x[24]; global q[24]; global r[24];

fn spmv() {
  var i; var k;
  for (i = 0; i < N; i = i + 1) {
    var acc = 0;
    for (k = 0; k < NNZ_PER_ROW; k = k + 1) {
      acc = acc + values[i * NNZ_PER_ROW + k] * x[colidx[i * NNZ_PER_ROW + k]];
    }
    q[i] = acc;
  }
}

fn main() -> int {
  var i; var it;
  for (i = 0; i < N * NNZ_PER_ROW; i = i + 1) {
    colidx[i] = (i * 7 + 3) % N;
    values[i] = (i * 13) % 9 - 4;
  }
  for (i = 0; i < N; i = i + 1) { x[i] = 1; }
  var rho = 0;
  for (it = 0; it < ITERS; it = it + 1) {
    spmv();
    rho = 0;
    for (i = 0; i < N; i = i + 1) {
      r[i] = x[i] - q[i] / 8;
      rho = rho + r[i] * r[i] % 65536;
    }
    for (i = 0; i < N; i = i + 1) { x[i] = r[i] + x[i] / 2; }
  }
  print(rho);
  return rho;
}
""", "CG: sparse matrix-vector iteration")

_register("is", """
// Integer Sort: counting sort over a small key range.
const NKEYS = 256; const RANGE = 64;
global keys[256]; global counts[64]; global sorted[256];

fn main() -> int {
  var i;
  var seed = 314159;
  for (i = 0; i < NKEYS; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    keys[i] = seed % RANGE;
  }
  for (i = 0; i < RANGE; i = i + 1) { counts[i] = 0; }
  for (i = 0; i < NKEYS; i = i + 1) { counts[keys[i]] = counts[keys[i]] + 1; }
  for (i = 1; i < RANGE; i = i + 1) { counts[i] = counts[i] + counts[i - 1]; }
  for (i = NKEYS - 1; i >= 0; i = i - 1) {
    counts[keys[i]] = counts[keys[i]] - 1;
    sorted[counts[keys[i]]] = keys[i];
  }
  var acc = 0;
  for (i = 0; i < NKEYS; i = i + 1) { acc = acc + sorted[i] * (i % 7); }
  print(acc);
  return acc;
}
""", "IS: bucket/counting sort of integer keys")

_register("ft", """
// FT: butterfly-structured transform passes over a signal (integer DFT stand-in).
const N = 64; const PASSES = 6;
global re[64]; global im[64];

fn main() -> int {
  var i; var p;
  for (i = 0; i < N; i = i + 1) { re[i] = (i * 37) % 97 - 48; im[i] = (i * 53) % 89 - 44; }
  var span = 1;
  for (p = 0; p < PASSES; p = p + 1) {
    for (i = 0; i < N; i = i + 1) {
      var partner = i ^ span;
      if (partner > i) {
        var tr = re[i] + re[partner];
        var ti = im[i] + im[partner];
        var br = re[i] - re[partner];
        var bi = im[i] - im[partner];
        re[i] = tr; im[i] = ti;
        re[partner] = (br * 3 - bi) / 4;
        im[partner] = (bi * 3 + br) / 4;
      }
    }
    span = span * 2;
  }
  var acc = 0;
  for (i = 0; i < N; i = i + 1) { acc = acc + re[i] * 2 + im[i]; }
  print(acc);
  return acc;
}
""", "FT: butterfly transform passes")

_register("mg", """
// MG: V-cycle style multi-level relaxation on a 1-D grid.
const N = 64; const CYCLES = 3;
global fine[64]; global coarse[32]; global coarser[16];

fn relax(v, n) {
  var i;
  for (i = 1; i < n - 1; i = i + 1) {
    v[i] = (v[i - 1] + 2 * v[i] + v[i + 1]) / 4;
  }
}

fn main() -> int {
  var i; var c;
  for (i = 0; i < N; i = i + 1) { fine[i] = (i * 29) % 51 - 25; }
  for (c = 0; c < CYCLES; c = c + 1) {
    relax(fine, N);
    for (i = 0; i < N / 2; i = i + 1) { coarse[i] = (fine[2 * i] + fine[2 * i + 1]) / 2; }
    relax(coarse, N / 2);
    for (i = 0; i < N / 4; i = i + 1) { coarser[i] = (coarse[2 * i] + coarse[2 * i + 1]) / 2; }
    relax(coarser, N / 4);
    for (i = 0; i < N / 4; i = i + 1) { coarse[2 * i] = coarse[2 * i] + coarser[i] / 2; }
    relax(coarse, N / 2);
    for (i = 0; i < N / 2; i = i + 1) { fine[2 * i] = fine[2 * i] + coarse[i] / 2; }
    relax(fine, N);
  }
  var acc = 0;
  for (i = 0; i < N; i = i + 1) { acc = acc + fine[i] * (i + 1); }
  print(acc);
  return acc;
}
""", "MG: multigrid V-cycle relaxation")

_register("lu", """
// LU: SSOR-style sweeps with forward/backward dependent updates over a 2-D grid.
const N = 12; const ITERS = 3;
global u[144]; global rsd[144];

fn main() -> int {
  var i; var j; var it;
  for (i = 0; i < N * N; i = i + 1) { u[i] = (i * 17) % 41 - 20; rsd[i] = (i * 11) % 23 - 11; }
  for (it = 0; it < ITERS; it = it + 1) {
    // Lower-triangular sweep.
    for (i = 1; i < N; i = i + 1) {
      for (j = 1; j < N; j = j + 1) {
        rsd[i * N + j] = rsd[i * N + j] - (u[(i - 1) * N + j] + u[i * N + j - 1]) / 4;
      }
    }
    // Upper-triangular sweep.
    for (i = N - 2; i >= 0; i = i - 1) {
      for (j = N - 2; j >= 0; j = j - 1) {
        rsd[i * N + j] = rsd[i * N + j] - (u[(i + 1) * N + j] + u[i * N + j + 1]) / 4;
      }
    }
    for (i = 0; i < N * N; i = i + 1) { u[i] = u[i] + rsd[i] / 8; }
  }
  var acc = 0;
  for (i = 0; i < N * N; i = i + 1) { acc = acc + u[i] * (i % 5 + 1); }
  print(acc);
  return acc;
}
""", "LU: SSOR sweeps over a structured grid")

_register("sp", """
// SP: scalar pentadiagonal line solves along both grid dimensions.
const N = 12; const ITERS = 3;
global u[144]; global lhs[144]; global rhs[144];

fn main() -> int {
  var i; var j; var it;
  for (i = 0; i < N * N; i = i + 1) {
    u[i] = (i * 23) % 37 - 18;
    lhs[i] = (i * 7) % 5 + 2;
    rhs[i] = (i * 13) % 27 - 13;
  }
  for (it = 0; it < ITERS; it = it + 1) {
    // x-direction line solve (Thomas-like forward/backward pass).
    for (i = 0; i < N; i = i + 1) {
      for (j = 1; j < N; j = j + 1) {
        rhs[i * N + j] = rhs[i * N + j] - rhs[i * N + j - 1] / lhs[i * N + j - 1];
      }
      for (j = N - 2; j >= 0; j = j - 1) {
        rhs[i * N + j] = rhs[i * N + j] - rhs[i * N + j + 1] / lhs[i * N + j + 1];
      }
    }
    // y-direction line solve.
    for (j = 0; j < N; j = j + 1) {
      for (i = 1; i < N; i = i + 1) {
        rhs[i * N + j] = rhs[i * N + j] - rhs[(i - 1) * N + j] / lhs[(i - 1) * N + j];
      }
      for (i = N - 2; i >= 0; i = i - 1) {
        rhs[i * N + j] = rhs[i * N + j] - rhs[(i + 1) * N + j] / lhs[(i + 1) * N + j];
      }
    }
    for (i = 0; i < N * N; i = i + 1) { u[i] = u[i] + rhs[i] / 16; }
  }
  var acc = 0;
  for (i = 0; i < N * N; i = i + 1) { acc = acc + u[i] * (i % 9 + 1); }
  print(acc);
  return acc;
}
""", "SP: scalar pentadiagonal line solves")

_register("bt", """
// BT: block-tridiagonal solves; 2x2 blocks along grid lines.
const N = 10; const ITERS = 3;
global a[200]; global b[200]; global x[200];

fn main() -> int {
  var i; var line; var it;
  for (i = 0; i < 2 * N * N; i = i + 1) {
    a[i] = (i * 19) % 13 + 2;
    b[i] = (i * 31) % 29 - 14;
    x[i] = 0;
  }
  for (it = 0; it < ITERS; it = it + 1) {
    for (line = 0; line < N; line = line + 1) {
      // Forward elimination on 2x2 blocks.
      for (i = 1; i < N; i = i + 1) {
        var base = (line * N + i) * 2;
        var prev = (line * N + i - 1) * 2;
        b[base] = b[base] - b[prev] * a[base] / (a[prev] + 1);
        b[base + 1] = b[base + 1] - b[prev + 1] * a[base + 1] / (a[prev + 1] + 1);
      }
      // Back substitution.
      var last = (line * N + N - 1) * 2;
      x[last] = b[last] / (a[last] + 1);
      x[last + 1] = b[last + 1] / (a[last + 1] + 1);
      for (i = N - 2; i >= 0; i = i - 1) {
        var bb = (line * N + i) * 2;
        var nn = (line * N + i + 1) * 2;
        x[bb] = (b[bb] - a[bb] * x[nn]) / (a[bb] + 2);
        x[bb + 1] = (b[bb + 1] - a[bb + 1] * x[nn + 1]) / (a[bb + 1] + 2);
      }
    }
  }
  var acc = 0;
  for (i = 0; i < 2 * N * N; i = i + 1) { acc = acc + x[i] * (i % 7 + 1); }
  print(acc);
  return acc;
}
""", "BT: block-tridiagonal line solves")
