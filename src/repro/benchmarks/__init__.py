"""The benchmark suite: 58 guest programs mirroring the paper's Table 4.

Every benchmark is a MiniC source string registered under the paper's
benchmark name.  Input sizes are reduced (as in the paper, and further, so
pure-Python emulation stays tractable); each program prints a checksum so
that the harness can verify that every optimization profile preserves
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Benchmark:
    """One guest program."""

    name: str
    suite: str
    source: str
    description: str = ""
    uses_precompile: bool = False
    args: Optional[tuple[int, ...]] = None
    inputs: Optional[tuple[int, ...]] = None
    expected_output: Optional[tuple[int, ...]] = None


_REGISTRY: dict[str, Benchmark] = {}


def register(name: str, suite: str, source: str, description: str = "",
             uses_precompile: bool = False,
             args: Optional[list[int]] = None,
             inputs: Optional[list[int]] = None) -> Benchmark:
    if name in _REGISTRY:
        raise ValueError(f"duplicate benchmark: {name}")
    benchmark = Benchmark(name=name, suite=suite, source=source,
                          description=description, uses_precompile=uses_precompile,
                          args=tuple(args) if args else None,
                          inputs=tuple(inputs) if inputs else None)
    _REGISTRY[name] = benchmark
    return benchmark


def get_benchmark(name: str) -> Benchmark:
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown benchmark: {name} (known: {sorted(_REGISTRY)[:5]}...)")
    return _REGISTRY[name]


def all_benchmark_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY.keys())


def benchmarks_in_suite(suite: str) -> list[str]:
    _ensure_loaded()
    return sorted(name for name, b in _REGISTRY.items() if b.suite == suite)


def suites() -> list[str]:
    _ensure_loaded()
    return sorted({b.suite for b in _REGISTRY.values()})


_LOADED = False


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    from . import crypto, misc, npb, polybench, rsp, spec  # noqa: F401
    _LOADED = True


__all__ = ["Benchmark", "register", "get_benchmark", "all_benchmark_names",
           "benchmarks_in_suite", "suites"]
