"""Reduced stand-ins for the three SPEC CPU 2017 benchmarks the paper uses
(605.mcf_s, 619.lbm_s, 631.deepsjeng_s)."""

from __future__ import annotations

from . import register

register("spec-605", "spec", """
// 605.mcf stand-in: shortest-path relaxation over a sparse network
// (min-cost-flow style pointer-chasing and relaxation loops).
const NODES = 48;
const EDGES = 144;
const ROUNDS = 6;
global edge_from[144]; global edge_to[144]; global edge_cost[144];
global dist[48];

fn main() -> int {
  var i; var r;
  for (i = 0; i < EDGES; i = i + 1) {
    edge_from[i] = (i * 7) % NODES;
    edge_to[i] = (i * 13 + 5) % NODES;
    edge_cost[i] = (i * 11) % 29 + 1;
  }
  for (i = 0; i < NODES; i = i + 1) { dist[i] = 999999; }
  dist[0] = 0;
  for (r = 0; r < ROUNDS; r = r + 1) {
    for (i = 0; i < EDGES; i = i + 1) {
      var candidate = dist[edge_from[i]] + edge_cost[i];
      if (candidate < dist[edge_to[i]]) { dist[edge_to[i]] = candidate; }
    }
  }
  var acc = 0;
  for (i = 0; i < NODES; i = i + 1) {
    var d = dist[i];
    if (d > 100000) { d = 0 - 1; }
    acc = acc + d * (i + 1);
  }
  print(acc);
  return acc;
}
""", "mcf-style network relaxation")

register("spec-619", "spec", """
// 619.lbm stand-in: 1-D lattice-Boltzmann stream-and-collide passes.
const CELLS = 96;
const STEPS = 6;
global f0[96]; global f1[96]; global f2[96];
global n0[96]; global n1[96]; global n2[96];

fn main() -> int {
  var i; var t;
  for (i = 0; i < CELLS; i = i + 1) {
    f0[i] = (i * 17) % 41 + 10;
    f1[i] = (i * 23) % 37 + 10;
    f2[i] = (i * 31) % 43 + 10;
  }
  for (t = 0; t < STEPS; t = t + 1) {
    for (i = 0; i < CELLS; i = i + 1) {
      // streaming
      n0[i] = f0[i];
      n1[i] = f1[(i + CELLS - 1) % CELLS];
      n2[i] = f2[(i + 1) % CELLS];
    }
    for (i = 0; i < CELLS; i = i + 1) {
      // collision: relax toward equilibrium (density/3 each).
      var rho = n0[i] + n1[i] + n2[i];
      var eq = rho / 3;
      f0[i] = n0[i] + (eq - n0[i]) / 2;
      f1[i] = n1[i] + (eq - n1[i]) / 2;
      f2[i] = n2[i] + (eq - n2[i]) / 2;
    }
  }
  var acc = 0;
  for (i = 0; i < CELLS; i = i + 1) { acc = acc + f0[i] + 2 * f1[i] + 3 * f2[i]; }
  print(acc);
  return acc;
}
""", "lbm-style stream/collide stencil")

register("spec-631", "spec", """
// 631.deepsjeng stand-in: fixed-depth alpha-beta search over a deterministic
// synthetic game tree with a small evaluation function.
const DEPTH = 6;
const BRANCH = 4;

fn evaluate(state) -> int {
  var v = (state * 2654435761) % 201 - 100;
  return v;
}

fn search(state, depth, alpha, beta, maximizing) -> int {
  if (depth == 0) { return evaluate(state); }
  var i;
  if (maximizing == 1) {
    var best = 0 - 1000000;
    for (i = 0; i < BRANCH; i = i + 1) {
      var child = state * BRANCH + i + 1;
      var score = search(child, depth - 1, alpha, beta, 0);
      if (score > best) { best = score; }
      if (best > alpha) { alpha = best; }
      if (beta <= alpha) { return best; }
    }
    return best;
  }
  var worst = 1000000;
  for (i = 0; i < BRANCH; i = i + 1) {
    var child2 = state * BRANCH + i + 1;
    var score2 = search(child2, depth - 1, alpha, beta, 1);
    if (score2 < worst) { worst = score2; }
    if (worst < beta) { beta = worst; }
    if (beta <= alpha) { return worst; }
  }
  return worst;
}

fn main() -> int {
  var total = 0;
  var root;
  for (root = 0; root < 3; root = root + 1) {
    total = total + search(root, DEPTH, 0 - 1000000, 1000000, 1);
  }
  print(total);
  return total;
}
""", "deepsjeng-style alpha-beta game-tree search")
