"""RSP (Reth Succinct Processor) stand-in: proving EVM-style block execution.

The real RSP benchmark replays an Ethereum block inside the zkVM.  The
stand-in interprets a small EVM-flavoured stack machine over a synthetic
block of transactions, updates an account state array, and hashes each
transaction through the Keccak precompile — the same "interpreter loop plus
precompile calls" workload shape."""

from __future__ import annotations

from . import register

register("rsp", "rsp", """
// Opcodes: 0=PUSH imm, 1=ADD, 2=MUL, 3=SUB, 4=DUP, 5=SWAP, 6=SLOAD, 7=SSTORE, 8=HALT
const TXS = 8;
const CODE_LEN = 24;
global code[192];        // TXS x CODE_LEN opcode stream
global operands[192];
global stack[32];
global storage[64];
global tx_words[16];
global tx_hash[8];

fn execute_tx(tx) -> int {
  var sp = 0;
  var pc = 0;
  var gas = 0;
  while (pc < CODE_LEN) {
    var op = code[tx * CODE_LEN + pc];
    var arg = operands[tx * CODE_LEN + pc];
    gas = gas + 3;
    if (op == 0) {
      stack[sp] = arg;
      sp = sp + 1;
    } else { if (op == 1 && sp >= 2) {
      stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
      sp = sp - 1;
    } else { if (op == 2 && sp >= 2) {
      stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
      sp = sp - 1;
      gas = gas + 5;
    } else { if (op == 3 && sp >= 2) {
      stack[sp - 2] = stack[sp - 2] - stack[sp - 1];
      sp = sp - 1;
    } else { if (op == 4 && sp >= 1) {
      stack[sp] = stack[sp - 1];
      sp = sp + 1;
    } else { if (op == 5 && sp >= 2) {
      var tmp = stack[sp - 1];
      stack[sp - 1] = stack[sp - 2];
      stack[sp - 2] = tmp;
    } else { if (op == 6 && sp >= 1) {
      stack[sp - 1] = storage[stack[sp - 1] % 64];
      gas = gas + 100;
    } else { if (op == 7 && sp >= 2) {
      storage[stack[sp - 1] % 64] = stack[sp - 2];
      sp = sp - 2;
      gas = gas + 100;
    } else {
      pc = CODE_LEN;
    } } } } } } } }
    pc = pc + 1;
  }
  return gas;
}

fn main() -> int {
  var tx; var i;
  // Build a deterministic block of transactions.
  for (tx = 0; tx < TXS; tx = tx + 1) {
    for (i = 0; i < CODE_LEN; i = i + 1) {
      var k = tx * CODE_LEN + i;
      code[k] = (k * 7 + tx) % 9;
      operands[k] = (k * 2654435761) % 1000;
    }
    code[tx * CODE_LEN] = 0;              // every tx starts with a PUSH
    code[tx * CODE_LEN + CODE_LEN - 1] = 8;  // and ends with HALT
  }
  var total_gas = 0;
  for (tx = 0; tx < TXS; tx = tx + 1) {
    total_gas = total_gas + execute_tx(tx);
    // Hash the transaction body through the Keccak precompile (receipt hash).
    for (i = 0; i < 16; i = i + 1) { tx_words[i] = code[tx * CODE_LEN + i] * 65537 + operands[tx * CODE_LEN + i]; }
    keccak256(tx_words, 16, tx_hash);
    storage[tx % 64] = storage[tx % 64] ^ tx_hash[0];
  }
  var state_root = 0;
  for (i = 0; i < 64; i = i + 1) { state_root = state_root ^ (storage[i] + i); }
  var result = (total_gas % 65536) * 65536 + (state_root % 65536 + 65536) % 65536;
  print(result);
  return result;
}
""", "EVM-style block execution with precompile-hashed transactions",
         uses_precompile=True)
