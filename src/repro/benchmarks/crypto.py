"""Cryptography benchmarks (a16z crypto / Succinct Labs style workloads).

``sha256``/``sha2-bench``/``sha2-chain`` implement the real SHA-256
compression function in guest code (no precompile), which is the dominant
zkVM workload shape.  ``sha3-bench``/``sha3-chain`` use a reduced, 32-bit
Keccak-style permutation (the real Keccak-f[1600] needs 64-bit lanes, which
RV32 guests emulate; the stand-in preserves the rotate/xor-heavy structure).
``keccak256``, ``ecdsa-verify`` and ``eddsa-verify`` exercise the precompile
path, as the paper's versions do.
"""

from __future__ import annotations

from . import register
from ..zkvm.precompiles import make_signature

# Real SHA-256 (single 16-word block per call), shared by several benchmarks.
SHA256_LIB = """
global sha_k[64] = {
  0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
  0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
  0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
  0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
  0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
  0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
  0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
  0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2 };
global sha_h[8];
global sha_w[64];

fn rotr(x, n) -> int {
  return (x >>> n) | (x << (32 - n));
}

fn sha_reset() {
  sha_h[0] = 0x6a09e667; sha_h[1] = 0xbb67ae85; sha_h[2] = 0x3c6ef372; sha_h[3] = 0xa54ff53a;
  sha_h[4] = 0x510e527f; sha_h[5] = 0x9b05688c; sha_h[6] = 0x1f83d9ab; sha_h[7] = 0x5be0cd19;
}

fn sha_compress(block) {
  var t;
  for (t = 0; t < 16; t = t + 1) { sha_w[t] = block[t]; }
  for (t = 16; t < 64; t = t + 1) {
    var s0 = rotr(sha_w[t - 15], 7) ^ rotr(sha_w[t - 15], 18) ^ (sha_w[t - 15] >>> 3);
    var s1 = rotr(sha_w[t - 2], 17) ^ rotr(sha_w[t - 2], 19) ^ (sha_w[t - 2] >>> 10);
    sha_w[t] = sha_w[t - 16] + s0 + sha_w[t - 7] + s1;
  }
  var a = sha_h[0]; var b = sha_h[1]; var c = sha_h[2]; var d = sha_h[3];
  var e = sha_h[4]; var f = sha_h[5]; var g = sha_h[6]; var h = sha_h[7];
  for (t = 0; t < 64; t = t + 1) {
    var e1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    var ch = (e & f) ^ (~e & g);
    var temp1 = h + e1 + ch + sha_k[t] + sha_w[t];
    var e0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    var maj = (a & b) ^ (a & c) ^ (b & c);
    var temp2 = e0 + maj;
    h = g; g = f; f = e;
    e = d + temp1;
    d = c; c = b; b = a;
    a = temp1 + temp2;
  }
  sha_h[0] = sha_h[0] + a; sha_h[1] = sha_h[1] + b; sha_h[2] = sha_h[2] + c; sha_h[3] = sha_h[3] + d;
  sha_h[4] = sha_h[4] + e; sha_h[5] = sha_h[5] + f; sha_h[6] = sha_h[6] + g; sha_h[7] = sha_h[7] + h;
}
"""

register("sha256", "crypto", SHA256_LIB + """
global message[16];

fn main() -> int {
  var i;
  for (i = 0; i < 16; i = i + 1) { message[i] = i * 0x01010101 + 7; }
  sha_reset();
  sha_compress(message);
  var digest = sha_h[0] ^ sha_h[7];
  print(digest);
  return digest;
}
""", "SHA-256 compression of one block, implemented in guest code")

register("sha2-bench", "crypto", SHA256_LIB + """
const BLOCKS = 4;
global message[16];

fn main() -> int {
  var b; var i;
  sha_reset();
  for (b = 0; b < BLOCKS; b = b + 1) {
    for (i = 0; i < 16; i = i + 1) { message[i] = (b * 16 + i) * 0x9e3779b9 + 1; }
    sha_compress(message);
  }
  var digest = sha_h[0] ^ sha_h[3] ^ sha_h[7];
  print(digest);
  return digest;
}
""", "SHA-256 over a multi-block message (software)")

register("sha2-chain", "crypto", SHA256_LIB + """
const ROUNDS = 6;
global message[16];

fn main() -> int {
  var r; var i;
  for (i = 0; i < 16; i = i + 1) { message[i] = i + 1; }
  for (r = 0; r < ROUNDS; r = r + 1) {
    sha_reset();
    sha_compress(message);
    for (i = 0; i < 8; i = i + 1) { message[i] = sha_h[i]; message[i + 8] = sha_h[i] ^ r; }
  }
  var digest = sha_h[0] ^ sha_h[4];
  print(digest);
  return digest;
}
""", "Iterated (chained) SHA-256 hashing (software)")

# A 32-bit Keccak-style permutation used by the sha3 software benchmarks.
KECCAK_LIB = """
const ROUNDS = 12;
global state[25];
global round_constants[12] = {
  0x00000001, 0x00008082, 0x0000808a, 0x80008000, 0x0000808b, 0x80000001,
  0x80008081, 0x00008009, 0x0000008a, 0x00000088, 0x80008009, 0x8000000a };

fn rotl(x, n) -> int {
  return (x << n) | (x >>> (32 - n));
}

fn keccak_permute() {
  var round; var x; var y;
  var c[5];
  var d[5];
  for (round = 0; round < ROUNDS; round = round + 1) {
    // theta
    for (x = 0; x < 5; x = x + 1) {
      c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
    }
    for (x = 0; x < 5; x = x + 1) {
      d[x] = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
      for (y = 0; y < 5; y = y + 1) {
        state[y * 5 + x] = state[y * 5 + x] ^ d[x];
      }
    }
    // rho + pi (simplified rotation schedule)
    for (x = 0; x < 25; x = x + 1) {
      state[x] = rotl(state[x], (x * 7 + round) % 32);
    }
    // chi
    for (y = 0; y < 5; y = y + 1) {
      for (x = 0; x < 5; x = x + 1) {
        c[x] = state[y * 5 + x];
      }
      for (x = 0; x < 5; x = x + 1) {
        state[y * 5 + x] = c[x] ^ (~c[(x + 1) % 5] & c[(x + 2) % 5]);
      }
    }
    // iota
    state[0] = state[0] ^ round_constants[round];
  }
}
"""

register("sha3-bench", "crypto", KECCAK_LIB + """
const ABSORB = 4;
fn main() -> int {
  var i; var blk;
  for (i = 0; i < 25; i = i + 1) { state[i] = 0; }
  for (blk = 0; blk < ABSORB; blk = blk + 1) {
    for (i = 0; i < 16; i = i + 1) { state[i] = state[i] ^ (blk * 16 + i + 1) * 0x9e3779b9; }
    keccak_permute();
  }
  var digest = state[0] ^ state[1] ^ state[2];
  print(digest);
  return digest;
}
""", "Keccak-style sponge absorbing a multi-block message (software)")

register("sha3-chain", "crypto", KECCAK_LIB + """
const CHAIN = 6;
fn main() -> int {
  var i; var r;
  for (i = 0; i < 25; i = i + 1) { state[i] = i + 1; }
  for (r = 0; r < CHAIN; r = r + 1) {
    keccak_permute();
    state[0] = state[0] ^ r;
  }
  var digest = state[0] ^ state[24];
  print(digest);
  return digest;
}
""", "Iterated Keccak-style permutation (software)")

register("keccak256", "crypto", """
// Chained Keccak-256 hashing through the zkVM precompile.
const ROUNDS = 8;
global buffer[16];
global digest[8];

fn main() -> int {
  var i; var r;
  for (i = 0; i < 16; i = i + 1) { buffer[i] = i * 2654435761 + 99; }
  for (r = 0; r < ROUNDS; r = r + 1) {
    keccak256(buffer, 16, digest);
    for (i = 0; i < 8; i = i + 1) { buffer[i] = digest[i]; buffer[i + 8] = digest[i] ^ r; }
  }
  var out = digest[0] ^ digest[7];
  print(out);
  return out;
}
""", "Keccak-256 chained hashing via the precompile", uses_precompile=True)

register("merkle", "crypto", SHA256_LIB + """
// Merkle tree over 8 leaves with an inclusion-proof check (software SHA-256).
const LEAVES = 8;
global leaves[128];
global tree[256];
global block[16];

fn hash_pair(left_index, right_index, out_index) {
  var i;
  for (i = 0; i < 8; i = i + 1) {
    block[i] = tree[left_index * 8 + i];
    block[i + 8] = tree[right_index * 8 + i];
  }
  sha_reset();
  sha_compress(block);
  for (i = 0; i < 8; i = i + 1) { tree[out_index * 8 + i] = sha_h[i]; }
}

fn main() -> int {
  var i; var level;
  // Leaf hashes live in tree[8..16); internal nodes fill tree[1..8).
  for (i = 0; i < LEAVES; i = i + 1) {
    var j;
    for (j = 0; j < 8; j = j + 1) { block[j] = i * 8 + j + 1; block[j + 8] = 0; }
    sha_reset();
    sha_compress(block);
    for (j = 0; j < 8; j = j + 1) { tree[(LEAVES + i) * 8 + j] = sha_h[j]; }
  }
  for (i = LEAVES - 1; i >= 1; i = i - 1) {
    hash_pair(2 * i, 2 * i + 1, i);
  }
  var root = tree[8] ^ tree[15];
  print(root);
  return root;
}
""", "Merkle tree construction and root computation (software SHA-256)")

# Build valid stand-in signatures at benchmark-definition time so the guest's
# verification succeeds (mirrors embedding a known-good signature in the guest).
_MESSAGE = [0x11111111 * (i + 1) & 0xFFFFFFFF for i in range(8)]
_KEY = [0x22222222 ^ (i * 0x01010101) for i in range(8)]
_ECDSA_SIG = make_signature(_MESSAGE, _KEY, "ecdsa")
_EDDSA_SIG = make_signature(_MESSAGE, _KEY, "eddsa")


def _words(values: list[int]) -> str:
    return ", ".join(str(v) for v in values)


register("ecdsa-verify", "crypto", f"""
// ECDSA signature verification via the zkVM precompile.
const CHECKS = 4;
global message[8] = {{ {_words(_MESSAGE)} }};
global key[8] = {{ {_words(_KEY)} }};
global signature[8] = {{ {_words(_ECDSA_SIG)} }};
global scratch[8];

fn main() -> int {{
  var ok = 0;
  var i;
  for (i = 0; i < CHECKS; i = i + 1) {{
    // Hash the message first (as real verifiers do), then verify.
    sha256(message, 8, scratch);
    ok = ok + ecdsa_verify(message, key, signature);
  }}
  print(ok);
  return ok;
}}
""", "ECDSA verification through the precompile", uses_precompile=True)

register("eddsa-verify", "crypto", f"""
// Ed25519-style signature verification via the zkVM precompile.
const CHECKS = 4;
global message[8] = {{ {_words(_MESSAGE)} }};
global key[8] = {{ {_words(_KEY)} }};
global signature[8] = {{ {_words(_EDDSA_SIG)} }};
global scratch[8];

fn main() -> int {{
  var ok = 0;
  var i;
  for (i = 0; i < CHECKS; i = i + 1) {{
    sha256(message, 8, scratch);
    ok = ok + eddsa_verify(message, key, signature);
  }}
  print(ok);
  return ok;
}}
""", "EdDSA verification through the precompile", uses_precompile=True)
