"""Targeted benchmarks: fibonacci, factorial, loop-sum, tailcall, bigmem,
regex-match and zkvm-mnist (matching the paper's 'Others' group plus the
Succinct fibonacci benchmark)."""

from __future__ import annotations

from . import register

register("fibonacci", "misc", """
// Iterative Fibonacci (the Succinct Labs benchmark shape), mod 2^32.
const N = 4000;
fn main() -> int {
  var a = 0;
  var b = 1;
  var i;
  for (i = 0; i < N; i = i + 1) {
    var next = a + b;
    a = b;
    b = next;
  }
  // A remainder keeps the final value small; the paper's modified LLVM picks a
  // single remu here instead of a shift/add expansion (Section 6.1).
  var result = b % 7919;
  print(result);
  return result;
}
""", "Iterative Fibonacci sequence")

register("factorial", "misc", """
// Recursive and iterative factorial, compared against each other.
const N = 12;
fn fact_recursive(n) -> int {
  if (n <= 1) { return 1; }
  return n * fact_recursive(n - 1);
}
fn fact_iterative(n) -> int {
  var acc = 1;
  var i;
  for (i = 2; i <= n; i = i + 1) { acc = acc * i; }
  return acc;
}
fn main() -> int {
  var r = 0;
  var i;
  for (i = 1; i <= N; i = i + 1) {
    r = r + fact_recursive(i) - fact_iterative(i);
    r = r + fact_iterative(i) % 1000003;
  }
  print(r);
  return r;
}
""", "Recursive vs iterative factorial")

register("loop-sum", "misc", """
// Simple loop-heavy summation with a few divisions sprinkled in.
const N = 3000;
fn main() -> int {
  var acc = 0;
  var i;
  for (i = 1; i <= N; i = i + 1) {
    acc = acc + i * 3 - i / 8 + (i % 5);
  }
  print(acc);
  return acc;
}
""", "Loop-heavy arithmetic summation")

register("tailcall", "misc", """
// The paper's Figure 11 shape: a small worker function called in a hot loop;
// inlining it forces extra values to stay live across the inner loop.
const OUTER = 60;
fn work(x) -> int {
  var sum = x;
  var j;
  for (j = 0; j < 40; j = j + 1) {
    sum = sum * 31 + j;
  }
  return sum;
}
fn accumulate(n, acc) -> int {
  if (n == 0) { return acc; }
  return accumulate(n - 1, acc + work(n));
}
fn main() -> int {
  var total = accumulate(OUTER, 0);
  var result = total % 1000003;
  print(result);
  return result;
}
""", "Tail-recursive accumulation over a worker loop (Figure 11 shape)")

register("bigmem", "misc", """
// Allocation/paging-heavy benchmark: strided writes over a large buffer.
const SIZE = 4096;
const PASSES = 3;
global buffer[4096];
fn main() -> int {
  var p; var i;
  for (p = 0; p < PASSES; p = p + 1) {
    for (i = 0; i < SIZE; i = i + 1) {
      buffer[(i * 257 + p * 61) % SIZE] = i + p;
    }
  }
  var acc = 0;
  for (i = 0; i < SIZE; i = i + 256) { acc = acc + buffer[i]; }
  print(acc);
  return acc;
}
""", "Memory-heavy strided writes over a 16 KiB buffer")

register("regex-match", "misc", """
// Regular-expression matching: '.'-and-'*' pattern matcher (dynamic programming).
const TEXT_LEN = 24;
const PAT_LEN = 8;
global text[24];
global pattern[8];
global dp[250];

fn match_all() -> int {
  var i; var j;
  var cols = PAT_LEN + 1;
  dp[0] = 1;
  for (j = 1; j <= PAT_LEN; j = j + 1) {
    dp[j] = 0;
    if (pattern[j - 1] == 42 && j >= 2) { dp[j] = dp[j - 2]; }
  }
  for (i = 1; i <= TEXT_LEN; i = i + 1) {
    for (j = 0; j <= PAT_LEN; j = j + 1) {
      var cell = 0;
      if (j > 0) {
        var p = pattern[j - 1];
        if (p == 42) {
          // '*' matches zero of the previous element...
          if (j >= 2) { cell = dp[(i) * cols + j - 2]; }
          // ...or one more of it.
          var prev = pattern[j - 2];
          if (cell == 0 && (prev == 46 || prev == text[i - 1])) {
            cell = dp[(i - 1) * cols + j];
          }
        } else {
          if (p == 46 || p == text[i - 1]) { cell = dp[(i - 1) * cols + j - 1]; }
        }
      }
      dp[i * cols + j] = cell;
    }
  }
  return dp[TEXT_LEN * cols + PAT_LEN];
}

fn main() -> int {
  var i;
  for (i = 0; i < TEXT_LEN; i = i + 1) { text[i] = 97 + (i * 3) % 4; }
  pattern[0] = 97; pattern[1] = 42; pattern[2] = 46; pattern[3] = 42;
  pattern[4] = 100; pattern[5] = 42; pattern[6] = 46; pattern[7] = 42;
  var matched = 0;
  for (i = 0; i < 8; i = i + 1) {
    text[0] = 97 + i % 4;
    matched = matched + match_all();
  }
  print(matched);
  return matched;
}
""", "Regex matching with '.' and '*' via dynamic programming")

register("zkvm-mnist", "misc", """
// Tiny fixed-point MLP inference on 7x7 'MNIST' images: 49 -> 12 -> 10.
const INPUTS = 49;
const HIDDEN = 12;
const CLASSES = 10;
const SAMPLES = 4;
global w1[588];     // 49 x 12
global w2[120];     // 12 x 10
global image[49];
global hidden[12];
global logits[10];

fn relu(x) -> int {
  if (x < 0) { return 0; }
  return x;
}

fn infer() -> int {
  var i; var j;
  for (j = 0; j < HIDDEN; j = j + 1) {
    var acc = 0;
    for (i = 0; i < INPUTS; i = i + 1) { acc = acc + image[i] * w1[i * HIDDEN + j]; }
    hidden[j] = relu(acc / 64);
  }
  for (j = 0; j < CLASSES; j = j + 1) {
    var acc2 = 0;
    for (i = 0; i < HIDDEN; i = i + 1) { acc2 = acc2 + hidden[i] * w2[i * CLASSES + j]; }
    logits[j] = acc2;
  }
  var best = 0;
  for (j = 1; j < CLASSES; j = j + 1) {
    if (logits[j] > logits[best]) { best = j; }
  }
  return best;
}

fn main() -> int {
  var i; var s;
  for (i = 0; i < INPUTS * HIDDEN; i = i + 1) { w1[i] = (i * 37) % 17 - 8; }
  for (i = 0; i < HIDDEN * CLASSES; i = i + 1) { w2[i] = (i * 53) % 13 - 6; }
  var summary = 0;
  for (s = 0; s < SAMPLES; s = s + 1) {
    for (i = 0; i < INPUTS; i = i + 1) { image[i] = ((i + s * 7) * 29) % 255; }
    var predicted = infer();
    // One crude SGD-style update of the output layer toward label s % CLASSES.
    for (i = 0; i < HIDDEN; i = i + 1) {
      w2[i * CLASSES + (s % CLASSES)] = w2[i * CLASSES + (s % CLASSES)] + hidden[i] / 128;
      w2[i * CLASSES + predicted] = w2[i * CLASSES + predicted] - hidden[i] / 128;
    }
    summary = summary * 10 + predicted;
  }
  print(summary);
  return summary;
}
""", "Fixed-point neural-network inference and update on 7x7 images")
