"""``python -m repro`` — the command-line face of the reproduction.

Every subcommand drives the same
:class:`~repro.experiments.engine.ExperimentEngine`, so measurements are
sharded across worker processes on first use and answered from the
content-addressed on-disk cache afterwards:

* ``repro compile BENCH``  — show the RV32IM assembly (or ``--ir``) a profile
  produces for a benchmark.
* ``repro run BENCH``      — execute a benchmark on the emulator and print its
  output checksum and dynamic instruction count.
* ``repro measure BENCH..``— full metric table (cycles, zkVM execution/proving
  time, native time) for benchmark × profile combinations.
* ``repro figure N``       — regenerate paper figure N (3,4,5,6,7,8,9,14,15).
* ``repro table N``        — regenerate paper table N (1,2,3,6).
* ``repro autotune BENCH`` — run the genetic autotuner, generations batched.
* ``repro passes BENCH..`` — show a profile's pass pipeline; with ``--time``,
  compile the benchmarks and report per-pass wall time plus analysis-cache
  activity (computed/hits/invalidated/drifted/skipped).
* ``repro lower BENCH..``  — show the optimizing backend's assembly; with
  ``--stats``, per-function static instruction counts, spill statistics and
  peephole hit counts compared against the preserved seed backend.
* ``repro fuzz``           — differential fuzzing: generated MiniC programs
  replayed through every oracle (IR interpreter, both backends, both
  emulators, cached-vs-fresh pipeline) under both paper profiles, sharded as
  batched engine jobs; ``--minimize`` reduces failures to ``.repro`` files,
  ``--journal``/``--resume`` checkpoint and continue interrupted campaigns.
* ``repro cache``          — measurement-cache maintenance: ``stats``,
  ``verify`` (scan + evict corrupt entries), ``clear``.
* ``repro list KIND``      — enumerate benchmarks/suites/profiles/figures/tables.

Global flags (before the subcommand) select the worker count, the cache
directory, the emulator's instruction budget, the fault-tolerance knobs
(``--job-timeout``, ``--retries``, ``--stats``) and the two escape hatches
(``--no-analysis-cache``, ``--seed-backend``).  ``--json`` on the reporting
subcommands emits machine-readable output for scripting.

Long campaigns (``fuzz``, ``autotune``) survive interruption: ``Ctrl-C``
exits with status 130 after journaling completed work, and ``--resume``
picks up where the journal left off.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


# -- result rendering ---------------------------------------------------------
def _jsonable(obj):
    """Recursively convert regenerator output into JSON-serializable data.

    Tuple dict keys (used by several regenerators, e.g. ``(zkvm, metric)``)
    become ``"a/b"`` strings; dataclasses become dicts; sets become sorted
    lists; non-finite floats become strings.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {_key(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_jsonable(v) for v in obj)
    if isinstance(obj, float) and (obj != obj or obj in (float("inf"), float("-inf"))):
        return str(obj)
    return obj


def _key(key) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _emit(result, as_json: bool) -> None:
    """Print a regenerator result; sorted keys in human mode for stable diffs."""
    json.dump(_jsonable(result), sys.stdout, indent=2, sort_keys=not as_json)
    sys.stdout.write("\n")


def _report_engine(engine, full: bool = False) -> None:
    """One stderr line showing where this invocation's measurements came from.

    ``full`` (the global ``--stats`` flag) appends the complete engine and
    cache counters — retries, timeouts, quarantined/salvaged jobs — plus any
    structured job-failure records, as JSON on stderr.
    """
    stats = engine.stats
    cache_dir = engine.cache.root if engine.cache is not None else "<disabled>"
    print(f"[engine] computed={stats.computed} disk_hits={stats.disk_hits} "
          f"memory_hits={stats.memory_hits} errors={stats.errors} "
          f"retries={stats.retries} timeouts={stats.timeouts} "
          f"quarantined={stats.quarantined} "
          f"workers={engine.workers} cache={cache_dir}", file=sys.stderr)
    if full:
        report = {"engine": stats.as_dict(),
                  "cache": engine.cache.stats.as_dict()
                  if engine.cache is not None else None,
                  "failures": [f.as_dict() for f in engine.failures]}
        print(json.dumps(report, indent=2, sort_keys=True), file=sys.stderr)


class UsageError(Exception):
    """Bad CLI input (unknown benchmark/profile/...): report cleanly, exit 2."""


# -- engine / profile plumbing ------------------------------------------------
def _make_engine(args, translate: bool = False):
    from .experiments.engine import ExperimentEngine
    from .experiments.faults import RetryPolicy

    return ExperimentEngine(
        max_instructions=args.max_instructions,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_disk_cache=not args.no_disk_cache,
        analysis_cache=not args.no_analysis_cache,
        seed_backend=getattr(args, "seed_backend", False),
        translate=translate,
        job_timeout=args.job_timeout,
        retry_policy=RetryPolicy(max_attempts=max(1, args.retries)),
    )


def _resolve_profile(name: str):
    from .experiments.profiles import profile_by_name, zkvm_aware_profile

    try:
        if name.endswith("-zkvm"):
            return zkvm_aware_profile(name[: -len("-zkvm")])
        return profile_by_name(name)
    except KeyError as exc:
        raise UsageError(f"unknown profile: {name}") from exc


def _resolve_benchmarks(names: Sequence[str]) -> list[str]:
    """Expand and validate benchmark arguments: names, suite names, or ``all``."""
    from .benchmarks import all_benchmark_names, benchmarks_in_suite, suites

    resolved: list[str] = []
    for name in names:
        if name == "all":
            resolved.extend(all_benchmark_names())
        elif name in suites():
            resolved.extend(benchmarks_in_suite(name))
        else:
            _check_benchmark(name)
            resolved.append(name)
    return resolved


def _check_benchmark(name: str) -> str:
    from .benchmarks import get_benchmark

    try:
        get_benchmark(name)
    except KeyError as exc:
        raise UsageError(exc.args[0] if exc.args else str(exc)) from exc
    return name


# -- regenerator registry -----------------------------------------------------
def _figure_registry() -> dict:
    from .experiments import figures

    return {
        "3": figures.figure3_pass_impact,
        "4": figures.figure4_effect_categories,
        "5": figures.figure5_optimization_levels,
        "6": figures.figure6_autotuning,
        "7": figures.figure7_zkvm_vs_x86,
        "8": figures.figure8_divergence,
        "9": figures.figure9_cost_components,
        "14": figures.figure14_zkvm_aware,
        "15": figures.figure15_native_vs_zkvm,
    }


def _table_registry() -> dict:
    from .experiments import tables

    return {
        "1": tables.table1_gain_loss_counts,
        "2": tables.table2_correlations,
        "3": tables.table3_manual_unrolling,
        "6": tables.table6_baseline_statistics,
    }


def _call_regenerator(fn, runner, benchmarks, passes, **extra):
    """Invoke a figure/table regenerator with only the kwargs it accepts.

    The regenerators have slightly different signatures (figure 9 takes
    ``profiles``, figure 6 takes ``iterations``/``seed``, table 3 takes
    nothing); this adapter keeps one CLI for all of them.
    """
    params = inspect.signature(fn).parameters
    kwargs = {}
    if "runner" in params:
        kwargs["runner"] = runner
    if benchmarks and "benchmarks" in params:
        kwargs["benchmarks"] = benchmarks
    if passes:
        if "passes" in params:
            kwargs["passes"] = passes
        elif "profiles" in params:
            kwargs["profiles"] = passes
    for name, value in extra.items():
        if name in params and value is not None:
            kwargs[name] = value
    return fn(**kwargs)


# -- subcommands --------------------------------------------------------------
def _cmd_compile(args) -> int:
    from .ir.printer import format_module
    from .passes import PassManager
    from .ir import verify_module

    engine = _make_engine(args)
    _check_benchmark(args.benchmark)
    profile = _resolve_profile(args.profile)
    if args.ir:
        module = engine.frontend_module(args.benchmark).clone()
        if profile.passes:
            PassManager(profile.passes, profile.config).run(module)
        verify_module(module)
        print(format_module(module))
    else:
        print(engine.compile(args.benchmark, profile))
    return 0


def _cmd_run(args) -> int:
    engine = _make_engine(args)
    benchmark_name = _check_benchmark(args.benchmark)
    profile = _resolve_profile(args.profile)
    if getattr(args, "translate", False) and \
            (getattr(args, "reference", False) or getattr(args, "batch", False)):
        raise UsageError("--translate cannot be combined with "
                         "--reference or --batch")
    if getattr(args, "translate", False):
        # Replay through the superblock-translating engine; the trace it
        # prints is byte-for-byte what the interpreter would record.
        import time as _time

        from .benchmarks import get_benchmark
        from .emulator import TranslatedMachine

        benchmark = get_benchmark(benchmark_name)
        program = engine.compile(benchmark_name, profile)
        machine = TranslatedMachine(program,
                                    max_instructions=engine.max_instructions,
                                    input_values=benchmark.inputs)
        start = _time.perf_counter()
        trace = machine.run("main", benchmark.args)
        elapsed = _time.perf_counter() - start
        print(f"benchmark:     {benchmark_name} [translated superblocks]")
        print(f"profile:       {profile.name}")
        print(f"output:        {list(trace.output)}")
        print(f"return value:  {trace.return_value}")
        print(f"instructions:  {trace.instructions}")
        print(f"throughput:    {trace.instructions / elapsed / 1e6:.2f} "
              f"Minstr/s")
        return 0
    if getattr(args, "reference", False):
        # Replay on the seed interpreter (the differential-testing oracle);
        # bypasses the measurement caches since nothing is persisted.
        from .benchmarks import get_benchmark
        from .emulator import ReferenceMachine

        benchmark = get_benchmark(benchmark_name)
        program = engine.compile(benchmark_name, profile)
        machine = ReferenceMachine(program,
                                   max_instructions=engine.max_instructions,
                                   input_values=benchmark.inputs)
        trace = machine.run("main", benchmark.args)
        print(f"benchmark:     {benchmark_name} [reference interpreter]")
        print(f"profile:       {profile.name}")
        print(f"output:        {list(trace.output)}")
        print(f"return value:  {trace.return_value}")
        print(f"instructions:  {trace.instructions}")
        return 0
    if getattr(args, "batch", False):
        # Replay the benchmark across N lockstep lanes of the batched
        # NumPy emulator; every lane must agree (same program, same inputs).
        import time as _time

        from .emulator.batched import require_numpy

        lanes = args.lanes
        if lanes < 1:
            raise UsageError(f"--lanes must be a positive integer, got {lanes}")
        require_numpy()
        start = _time.perf_counter()
        stats = engine.run_batched(benchmark_name, profile, num_lanes=lanes)
        elapsed = _time.perf_counter() - start
        first = stats[0]
        if any(trace != first for trace in stats):
            print("FAIL: lanes diverged on identical inputs", file=sys.stderr)
            return 1
        total = sum(trace.instructions for trace in stats)
        print(f"benchmark:     {benchmark_name} [batched x{lanes} lanes]")
        print(f"profile:       {profile.name}")
        print(f"output:        {list(first.output)}")
        print(f"return value:  {first.return_value}")
        print(f"instructions:  {first.instructions} per lane, {total} total")
        print(f"throughput:    {total / elapsed / 1e6:.2f} Minstr/s aggregate")
        return 0
    measurement = engine.measure(benchmark_name, profile)
    trace = measurement.trace
    print(f"benchmark:     {measurement.benchmark}")
    print(f"profile:       {measurement.profile}")
    print(f"output:        {list(trace.output)}")
    print(f"return value:  {trace.return_value}")
    print(f"instructions:  {trace.instructions}")
    _report_engine(engine, full=args.engine_stats)
    return 0


def _cmd_measure(args) -> int:
    from .analysis.reporting import format_table

    engine = _make_engine(args)
    benchmarks = _resolve_benchmarks(args.benchmarks)
    profiles = [_resolve_profile(name) for name in (args.profile or ["baseline"])]
    pairs = [(b, p) for b in benchmarks for p in profiles]
    measurements = engine.measure_pairs(pairs)
    if args.json:
        _emit([m.as_dict() for m in measurements], as_json=True)
    else:
        rows = [[m.benchmark, m.profile, m.instructions,
                 m.risc0.total_cycles, m.risc0.execution_time, m.risc0.proving_time,
                 m.sp1.execution_time, m.sp1.proving_time, m.cpu.execution_time]
                for m in measurements]
        print(format_table(
            ["benchmark", "profile", "instructions", "risc0 cycles",
             "risc0 exec s", "risc0 prove s", "sp1 exec s", "sp1 prove s",
             "native s"],
            rows, title="Measurements"))
    _report_engine(engine, full=args.engine_stats)
    return 0


def _cmd_figure(args) -> int:
    registry = _figure_registry()
    if args.number not in registry:
        print(f"unknown figure {args.number!r}; available: "
              f"{', '.join(sorted(registry, key=int))}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    benchmarks = _resolve_benchmarks(args.benchmarks) if args.benchmarks else None
    result = _call_regenerator(registry[args.number], engine, benchmarks,
                               args.passes, iterations=args.iterations,
                               seed=args.seed)
    _emit(result, as_json=args.json)
    _report_engine(engine, full=args.engine_stats)
    return 0


def _cmd_table(args) -> int:
    registry = _table_registry()
    if args.number not in registry:
        print(f"unknown table {args.number!r}; available: "
              f"{', '.join(sorted(registry, key=int))}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    benchmarks = _resolve_benchmarks(args.benchmarks) if args.benchmarks else None
    result = _call_regenerator(registry[args.number], engine, benchmarks,
                               args.passes)
    _emit(result, as_json=args.json)
    _report_engine(engine, full=args.engine_stats)
    return 0


def _journal_for(args, default_name: str):
    """The journal path for a campaign subcommand, or None when disabled.

    Journaling engages when ``--journal`` names one explicitly or ``--resume``
    asks to continue the derived default for these campaign parameters.
    """
    from .experiments.journal import resolve_journal_path

    if not args.journal and not args.resume:
        return None
    return resolve_journal_path(args.journal or default_name,
                                cache_dir=args.cache_dir)


def _cmd_autotune(args) -> int:
    from .autotuner import GeneticAutotuner
    from .experiments.journal import JournalMismatch

    # Candidate evaluation only consumes trace-derived zkVM metrics, so the
    # measurement path runs on the translated engine by default.
    engine = _make_engine(args, translate=not args.no_translate)
    tuner = GeneticAutotuner(runner=engine, seed=args.seed, zkvm=args.zkvm,
                             population_size=args.population,
                             size_weight=args.size_weight)
    journal = _journal_for(
        args, f"autotune-{args.benchmark}-{args.seed}-{args.zkvm}")
    try:
        result = tuner.tune(_check_benchmark(args.benchmark),
                            iterations=args.iterations,
                            journal=journal, resume=args.resume)
    except JournalMismatch as exc:
        raise UsageError(str(exc)) from exc
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed generations are journaled"
              + (f" in {journal} — rerun with --resume to continue"
                 if journal is not None else
                 " only with --journal/--resume"), file=sys.stderr)
        _report_engine(engine, full=args.engine_stats)
        return 130
    summary = {
        "benchmark": result.benchmark,
        "zkvm": result.zkvm,
        "evaluations": result.evaluations,
        "baseline_cycles": result.baseline_cycles,
        "o3_cycles": result.o3_cycles,
        "best_cycles": result.best_cycles,
        "speedup_over_o3": result.speedup_over_o3,
        "gain_over_o3_percent": result.gain_over_o3_percent,
        "best_passes": list(result.best.passes),
        "inline_threshold": result.best.inline_threshold,
        "unroll_threshold": result.best.unroll_threshold,
    }
    _emit(summary, as_json=args.json)
    _report_engine(engine, full=args.engine_stats)
    return 0


def _cmd_passes(args) -> int:
    from .analysis.reporting import format_table
    from .passes import PassManager

    profile = _resolve_profile(args.profile)
    if not args.time:
        if args.json:
            _emit({"profile": profile.name, "passes": list(profile.passes)},
                  as_json=True)
        else:
            for index, name in enumerate(profile.passes):
                print(f"{index:3d}  {name}")
        return 0

    engine = _make_engine(args)
    benchmarks = _resolve_benchmarks(args.benchmarks or ["all"])
    # One slot per pipeline position, aggregated across the benchmarks.
    slots: list[dict] = [
        {"name": name, "seconds": 0.0, "changed": 0,
         "computed": 0, "hits": 0, "invalidated": 0, "drifted": 0,
         "skipped": 0}
        for name in profile.passes
    ]
    for benchmark_name in benchmarks:
        module = engine.frontend_module(benchmark_name).clone()
        manager = PassManager(profile.passes, profile.config,
                              analysis_cache=not args.no_analysis_cache)
        manager.run(module)
        for timing in manager.timings:
            slot = slots[timing.index]
            slot["seconds"] += timing.seconds
            slot["changed"] += int(timing.changed)
            for key in ("computed", "hits", "invalidated", "drifted", "skipped"):
                slot[key] += getattr(timing.analysis, key)

    if args.json:
        _emit({"profile": profile.name, "benchmarks": benchmarks,
               "analysis_cache": not args.no_analysis_cache, "slots": slots},
              as_json=True)
        return 0
    rows = [[index, slot["name"], f"{slot['seconds'] * 1000:.2f}",
             slot["changed"], slot["computed"], slot["hits"],
             slot["invalidated"], slot["drifted"], slot["skipped"]]
            for index, slot in enumerate(slots)]
    total = sum(slot["seconds"] for slot in slots)
    rows.append(["", "TOTAL", f"{total * 1000:.2f}",
                 sum(s["changed"] for s in slots),
                 sum(s["computed"] for s in slots),
                 sum(s["hits"] for s in slots),
                 sum(s["invalidated"] for s in slots),
                 sum(s["drifted"] for s in slots),
                 sum(s["skipped"] for s in slots)])
    print(format_table(
        ["#", "pass", "total ms", "changed", "computed", "hits",
         "invalidated", "drifted", "skipped"],
        rows,
        title=f"Pass pipeline timing — {profile.name} over "
              f"{len(benchmarks)} benchmark(s), analysis cache "
              f"{'on' if not args.no_analysis_cache else 'off'}"))
    return 0


def _cmd_lower(args) -> int:
    from .analysis.reporting import format_table
    from .backend import compile_module
    from .passes import PassManager

    engine = _make_engine(args)
    profile = _resolve_profile(args.profile)
    benchmarks = _resolve_benchmarks(args.benchmarks)

    if not args.stats:
        # Plain mode: show the optimizing backend's assembly (equivalent to
        # ``repro compile``, but accepting several benchmarks/suites).
        for benchmark_name in benchmarks:
            print(engine.compile(benchmark_name, profile))
        return 0

    rows = []
    report = []
    for benchmark_name in benchmarks:
        module = engine.frontend_module(benchmark_name).clone()
        if profile.passes:
            PassManager(profile.passes, profile.config,
                        analysis_cache=not args.no_analysis_cache).run(module)
        seed_program = compile_module(module, profile.cost_model,
                                      seed_backend=True)
        opt_program = compile_module(module, profile.cost_model)
        for function_name, asm in opt_program.functions.items():
            stats = opt_program.backend_stats[function_name]
            seed_count = len(
                seed_program.functions[function_name].instructions())
            final = stats["final_instructions"]
            peephole_total = sum(stats["peephole"].values())
            reduction = (seed_count - final) / seed_count * 100 if seed_count else 0.0
            rows.append([benchmark_name, function_name, seed_count,
                         stats["lowered_instructions"], final,
                         f"{reduction:.1f}", stats["spilled_vregs"],
                         stats["spill_loads"] + stats["spill_stores"],
                         peephole_total])
            report.append({"benchmark": benchmark_name,
                           "function": function_name,
                           "seed_instructions": seed_count, **stats})
    if args.json:
        _emit({"profile": profile.name, "functions": report}, as_json=True)
        return 0
    print(format_table(
        ["benchmark", "function", "seed", "lowered", "final", "Δ% vs seed",
         "spilled", "spill ops", "peephole hits"],
        rows,
        title=f"Backend static code size — {profile.name} "
              f"(seed backend vs optimizing backend)"))
    totals = (sum(r[2] for r in rows), sum(r[4] for r in rows))
    if totals[0]:
        print(f"total: {totals[0]} -> {totals[1]} static instructions "
              f"({(totals[0] - totals[1]) / totals[0] * 100:.1f}% smaller)")
    return 0


def _cmd_encode(args) -> int:
    from .analysis.reporting import format_table
    from .backend.encoding import encode_program

    engine = _make_engine(args)
    profile = _resolve_profile(args.profile)
    benchmarks = _resolve_benchmarks(args.benchmarks)

    rows = []
    report = []
    for benchmark_name in benchmarks:
        program = engine.compile(benchmark_name, profile)
        plain = encode_program(program)
        packed = encode_program(program, rvc=True)
        if args.hex:
            chosen = packed if args.rvc else plain
            print(f"# {benchmark_name} — {profile.name}, "
                  f"{'RVC' if args.rvc else 'RV32I'}, "
                  f"{chosen.code_bytes} bytes")
            print(chosen.hexdump())
            print()
        entry = {"benchmark": benchmark_name,
                 "code_bytes": {"rv32": plain.code_bytes,
                                "rvc": packed.code_bytes},
                 "functions": {}}
        for function_name, rv32_bytes in plain.function_sizes.items():
            rvc_bytes = packed.function_sizes[function_name]
            reduction = ((rv32_bytes - rvc_bytes) / rv32_bytes * 100
                         if rv32_bytes else 0.0)
            rows.append([benchmark_name, function_name, rv32_bytes,
                         rvc_bytes, f"{reduction:.1f}"])
            entry["functions"][function_name] = {"rv32": rv32_bytes,
                                                 "rvc": rvc_bytes}
        report.append(entry)
    if args.json:
        _emit({"profile": profile.name, "benchmarks": report}, as_json=True)
        return 0
    if not args.hex or len(rows) > 1:
        print(format_table(
            ["benchmark", "function", "rv32 bytes", "rvc bytes", "Δ%"],
            rows, title=f"Binary code size — {profile.name}"))
        total_rv32 = sum(r[2] for r in rows)
        total_rvc = sum(r[3] for r in rows)
        if total_rv32:
            print(f"total: {total_rv32} -> {total_rvc} bytes "
                  f"({(total_rv32 - total_rvc) / total_rv32 * 100:.1f}% "
                  f"smaller with RVC)")
    return 0


def _cmd_fuzz(args) -> int:
    from .experiments.journal import JournalMismatch
    from .fuzz import HarnessConfig, run_campaign
    from .fuzz.driver import DEFAULT_MAX_MINIMIZE

    engine = _make_engine(args)
    config = HarnessConfig(emulator_max_instructions=args.max_instructions)
    journal = _journal_for(
        args, f"fuzz-{args.mode}-{args.start_seed}+{args.seeds}")
    try:
        summary = run_campaign(
            seeds=args.seeds, mode=args.mode, start_seed=args.start_seed,
            engine=engine, config=config, minimize=args.minimize,
            corpus_dir=args.corpus_dir, shard_size=args.shard_size,
            max_minimize=args.max_minimize
            if args.max_minimize is not None else DEFAULT_MAX_MINIMIZE,
            journal=journal, resume=args.resume,
            stop_after_shards=args.stop_after_shards)
    except ValueError as exc:
        raise UsageError(str(exc)) from exc
    except JournalMismatch as exc:
        raise UsageError(str(exc)) from exc
    _emit(summary.as_dict(), as_json=args.json)
    _report_engine(engine, full=args.engine_stats)
    if summary.interrupted:
        print("interrupted; completed shards are journaled"
              + (f" in {journal} — rerun with --resume to continue"
                 if journal is not None else
                 " only with --journal/--resume"), file=sys.stderr)
        return 130
    return 0 if summary.clean else 1


def _cmd_cache(args) -> int:
    from .experiments.cache import MeasurementCache

    if args.no_disk_cache:
        raise UsageError("'repro cache' manages the disk cache; "
                         "--no-disk-cache disables it")
    cache = MeasurementCache(args.cache_dir)
    if args.action == "stats":
        report = cache.size_report()
    elif args.action == "verify":
        report = cache.verify()
    else:  # clear
        report = {"root": str(cache.root), "removed": cache.clear()}
    _emit(report, as_json=args.json)
    # verify is an fsck: finding (and evicting) corruption is a nonzero exit.
    return 1 if report.get("corrupt_removed", 0) else 0


def _cmd_list(args) -> int:
    from .benchmarks import all_benchmark_names, benchmarks_in_suite, suites
    from .experiments.profiles import all_study_profiles, zkvm_aware_profile

    kind = args.kind
    if kind == "benchmarks":
        for name in all_benchmark_names():
            print(name)
    elif kind == "suites":
        for suite in suites():
            print(f"{suite}: {len(benchmarks_in_suite(suite))} benchmarks")
    elif kind == "profiles":
        for profile in [*all_study_profiles(), zkvm_aware_profile()]:
            print(profile.describe())
    elif kind == "figures":
        print(" ".join(sorted(_figure_registry(), key=int)))
    elif kind == "tables":
        print(" ".join(sorted(_table_registry(), key=int)))
    return 0


# -- argument parsing ---------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit: compile, emulate and measure zkVM "
                    "benchmarks; regenerate the paper's figures and tables.")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for batched measurements "
                             "(default: CPU count)")
    parser.add_argument("--cache-dir", default=None,
                        help="measurement cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/measurements)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep measurements in memory only")
    parser.add_argument("--no-analysis-cache", action="store_true",
                        help="recompute every pass-pipeline analysis from "
                             "scratch (the seed pass manager's behaviour; "
                             "used for differential testing)")
    parser.add_argument("--seed-backend", action="store_true",
                        help="compile through the preserved seed backend "
                             "(naive lowering, single-range linear scan, no "
                             "peephole) instead of the optimizing one; "
                             "measurements are cached separately")
    parser.add_argument("--max-instructions", type=int, default=20_000_000,
                        help="emulator instruction budget per run")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock budget in seconds for "
                             "batched jobs; a job running longer has its "
                             "worker killed and is retried or quarantined "
                             "(default: no timeout)")
    parser.add_argument("--retries", type=int, default=3,
                        help="attempts per batched job before it is "
                             "quarantined (transient failures and timeouts "
                             "only; default: 3)")
    # dest avoids colliding with 'repro lower --stats' (a different report).
    parser.add_argument("--stats", dest="engine_stats", action="store_true",
                        help="print full engine/cache fault-tolerance "
                             "counters and job-failure records to stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="show a benchmark's compiled form")
    p.add_argument("benchmark")
    p.add_argument("--profile", default="baseline",
                   help="optimization profile (default: baseline)")
    p.add_argument("--ir", action="store_true",
                   help="print optimized IR instead of RV32IM assembly")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("run", help="execute a benchmark on the emulator")
    p.add_argument("benchmark")
    p.add_argument("--profile", default="baseline")
    p.add_argument("--reference", action="store_true",
                   help="replay on the seed reference interpreter "
                        "(slow; for differential debugging)")
    p.add_argument("--batch", action="store_true",
                   help="replay across N lockstep lanes of the batched "
                        "NumPy emulator and report aggregate throughput")
    p.add_argument("--lanes", type=int, default=64, metavar="N",
                   help="lane count for --batch (default: 64)")
    p.add_argument("--translate", action="store_true",
                   help="replay through the superblock-translating engine "
                        "(same trace, several times faster)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("measure", help="measure benchmark × profile pairs")
    p.add_argument("benchmarks", nargs="+",
                   help="benchmark names, suite names, or 'all'")
    p.add_argument("--profile", action="append",
                   help="profile to measure (repeatable; default: baseline)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", help="3, 4, 5, 6, 7, 8, 9, 14 or 15")
    p.add_argument("--benchmarks", nargs="+", default=None)
    p.add_argument("--passes", nargs="+", default=None)
    p.add_argument("--iterations", type=int, default=None,
                   help="autotuner budget (figure 6 only)")
    p.add_argument("--seed", type=int, default=None,
                   help="autotuner seed (figure 6 only)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", help="1, 2, 3 or 6")
    p.add_argument("--benchmarks", nargs="+", default=None)
    p.add_argument("--passes", nargs="+", default=None)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("autotune", help="genetic search over pass sequences")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--population", type=int, default=12)
    p.add_argument("--zkvm", choices=["risc0", "sp1"], default="risc0")
    p.add_argument("--size-weight", type=float, default=0.0,
                   help="weight of the RVC binary footprint in candidate "
                        "fitness (cycles + weight * code_bytes; default 0 = "
                        "cycles only)")
    p.add_argument("--journal", default=None,
                   help="checkpoint each generation to this journal (a name "
                        "under the cache root, or a path)")
    p.add_argument("--resume", action="store_true",
                   help="continue from the journal's last generation "
                        "(restores population, history and RNG state)")
    p.add_argument("--no-translate", action="store_true",
                   help="measure candidates on the interpreter instead of "
                        "the (default) superblock-translating engine")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_autotune)

    p = sub.add_parser("passes", help="inspect/time a profile's pass pipeline")
    p.add_argument("benchmarks", nargs="*",
                   help="benchmark names, suite names, or 'all' "
                        "(only used with --time; default: all)")
    p.add_argument("--profile", default="-O3",
                   help="optimization profile (default: -O3)")
    p.add_argument("--time", action="store_true",
                   help="compile the benchmarks and report per-pass wall "
                        "time and analysis-cache activity")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_passes)

    p = sub.add_parser("lower",
                       help="inspect backend lowering; --stats compares the "
                            "optimizing backend against the seed backend")
    p.add_argument("benchmarks", nargs="+",
                   help="benchmark names, suite names, or 'all'")
    p.add_argument("--profile", default="-O3",
                   help="optimization profile (default: -O3)")
    p.add_argument("--stats", action="store_true",
                   help="per-function static instruction counts, spills and "
                        "peephole hits (vs the seed backend)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_lower)

    p = sub.add_parser("encode",
                       help="encode benchmarks to real RV32/RVC machine "
                            "words and report byte-accurate code sizes")
    p.add_argument("benchmarks", nargs="+",
                   help="benchmark names, suite names, or 'all'")
    p.add_argument("--profile", default="-O3",
                   help="optimization profile (default: -O3)")
    p.add_argument("--rvc", action="store_true",
                   help="show the RVC-compressed encoding in --hex output "
                        "(the size table always reports both)")
    p.add_argument("--hex", action="store_true",
                   help="print the full disassembly-style hex dump")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("fuzz",
                       help="differential fuzzing across every oracle "
                            "(IR interpreter, backends, emulators, pipeline)")
    p.add_argument("--seeds", type=int, default=200,
                   help="number of generated programs (default: 200)")
    p.add_argument("--mode", default="all",
                   help="generator mode: loop-heavy, call-heavy, "
                        "pointer-heavy, branchy-int, mixed, or 'all' "
                        "(round-robin; default)")
    p.add_argument("--start-seed", type=int, default=0,
                   help="first seed (campaigns shard the seed space)")
    p.add_argument("--minimize", action="store_true",
                   help="delta-debug each failure down to a minimal "
                        "reproducer before triage")
    p.add_argument("--corpus-dir", default=None,
                   help="write triaged reproducers as .repro files here")
    p.add_argument("--shard-size", type=int, default=16,
                   help="programs per batched engine job")
    p.add_argument("--max-minimize", type=int, default=None,
                   help="cap on minimizations per campaign (default: 25)")
    p.add_argument("--journal", default=None,
                   help="checkpoint each completed shard to this journal "
                        "(a name under the cache root, or a path)")
    p.add_argument("--resume", action="store_true",
                   help="replay the journal's completed shards and run only "
                        "the missing ones")
    p.add_argument("--stop-after-shards", type=int, default=None,
                   help="submit at most this many shards, then stop "
                        "(resumable; for incremental campaigns)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("cache",
                       help="measurement-cache maintenance "
                            "(stats / verify / clear)")
    p.add_argument("action", choices=["stats", "verify", "clear"],
                   help="stats: entry count and footprint; verify: load-check "
                        "every entry, evicting corrupt ones (exit 1 if any); "
                        "clear: delete every entry")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("list", help="enumerate available inputs")
    p.add_argument("kind", choices=["benchmarks", "suites", "profiles",
                                    "figures", "tables"])
    p.set_defaults(func=_cmd_list)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except UsageError as exc:
        # Bad input is reported cleanly; genuine crashes traceback normally.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output truncated by a downstream pager/head; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
