"""Decode-once lowering of an :class:`AssemblyProgram` for the emulator.

The seed interpreter re-parsed every dynamic instruction: opcode-string
membership chains, label lookups on every taken branch, a dict-based register
file keyed by names.  :func:`decode_program` pays all of that exactly once per
program instead, producing a flat stream of pre-decoded tuples:

* every function body is concatenated into one indexable instruction stream
  (the program counter is a plain list index);
* labels and call targets are resolved to integer indices at decode time;
* opcode strings are mapped to small integer *handler ids* (the ``K_*``
  kinds below) with the ALU / branch semantics bound as callables inside the
  tuple, so the hot loop dispatches on an int and never inspects a string;
* register names are interned to fixed slots of a list-based register file
  (``zero`` is always slot 0; unknown names get fresh slots, mirroring the
  reference interpreter's tolerance of arbitrary register names);
* immediates are pre-masked where the opcode semantics allow it (``li`` /
  ``lui`` values, logical immediates, shift amounts).

The decoded stream is immutable and carries no run state, so it is shared by
every :class:`~repro.emulator.machine.Machine` replaying the same program:
the result is cached on the ``AssemblyProgram`` instance, which is how the
experiment engine, runner, autotuner and CLI all decode each benchmark once
per process.

Alongside the decoded kinds this module owns the fast machine's scalar
operator tables (:data:`ALU_REG_IMPLS`, :data:`ALU_IMM_IMPLS`,
:data:`BRANCH_IMPLS`).  The reference interpreter deliberately keeps its own
verbatim copies of the seed's tables, so the differential tests compare two
*independent* implementations of the arithmetic rather than one shared one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..backend.isa import (
    AssemblyProgram, Label, MachineInstr, OPCODE_CLASS, REGISTER_NUMBERS,
)

WORD_MASK = 0xFFFFFFFF
#: ``ra`` value that makes ``main``'s return halt the machine.
RETURN_SENTINEL = 0xFFFF_FFF0


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


# -- scalar semantics (shared by the fast machine and the reference) ----------
def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return WORD_MASK
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & WORD_MASK


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & WORD_MASK


#: Register-register ALU semantics, ``f(rs1_value, rs2_value) -> masked word``.
ALU_REG_IMPLS: dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & WORD_MASK,
    "sub": lambda a, b: (a - b) & WORD_MASK,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & WORD_MASK,
    "srl": lambda a, b: (a >> (b & 31)) & WORD_MASK,
    "sra": lambda a, b: (to_signed(a) >> (b & 31)) & WORD_MASK,
    "slt": lambda a, b: int(to_signed(a) < to_signed(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: (a * b) & WORD_MASK,
    "div": _div,
    "divu": lambda a, b: (a // b) & WORD_MASK if b else WORD_MASK,
    "rem": _rem,
    "remu": lambda a, b: (a % b) & WORD_MASK if b else a,
}

#: Immediate ALU semantics over the *raw* (unprepared) immediate, exactly as
#: the reference interpreter applies them.
ALU_IMM_IMPLS: dict[str, Callable[[int, int], int]] = {
    "addi": lambda a, imm: (a + imm) & WORD_MASK,
    "andi": lambda a, imm: a & (imm & WORD_MASK),
    "ori": lambda a, imm: a | (imm & WORD_MASK),
    "xori": lambda a, imm: a ^ (imm & WORD_MASK),
    "slli": lambda a, imm: (a << (imm & 31)) & WORD_MASK,
    "srli": lambda a, imm: (a >> (imm & 31)) & WORD_MASK,
    "srai": lambda a, imm: (to_signed(a) >> (imm & 31)) & WORD_MASK,
    "slti": lambda a, imm: int(to_signed(a) < imm),
    "sltiu": lambda a, imm: int(a < (imm & WORD_MASK)),
}

#: Conditional-branch predicates, ``f(rs1_value, rs2_value) -> taken``.
BRANCH_IMPLS: dict[str, Callable[[int, int], bool]] = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: to_signed(a) < to_signed(b),
    "bge": lambda a, b: to_signed(a) >= to_signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

#: Decode-time immediate preparation + matching prepared-immediate semantics.
#: Each entry is ``(prepare(imm), apply(a, prepared_imm))``; ``apply`` over the
#: prepared immediate is provably equal to ``ALU_IMM_IMPLS[op]`` over the raw
#: one (the differential tests exercise every pair).
_ALU_IMM_DECODED: dict[str, tuple[Callable[[int], int],
                                  Callable[[int, int], int]]] = {
    "andi": (lambda imm: imm & WORD_MASK, lambda a, i: a & i),
    "ori": (lambda imm: imm & WORD_MASK, lambda a, i: a | i),
    "xori": (lambda imm: imm & WORD_MASK, lambda a, i: a ^ i),
    "sltiu": (lambda imm: imm & WORD_MASK, lambda a, i: int(a < i)),
    "slti": (lambda imm: imm, lambda a, i: int(to_signed(a) < i)),
    "slli": (lambda imm: imm & 31, lambda a, i: (a << i) & WORD_MASK),
    "srli": (lambda imm: imm & 31, lambda a, i: a >> i),
    "srai": (lambda imm: imm & 31, lambda a, i: (to_signed(a) >> i) & WORD_MASK),
}

# -- handler ids ---------------------------------------------------------------
# Small contiguous ints; the hot loop's dispatch ladder tests them roughly in
# descending dynamic frequency.
K_ADDI = 0    # (k, rd, rs1, raw_imm)                inline add-immediate
K_ALU_RR = 1  # (k, rd, rs1, rs2, fn)                fn from ALU_REG_IMPLS
K_ALU_RI = 2  # (k, rd, rs1, prepared_imm, fn)       fn from _ALU_IMM_DECODED
K_ADD = 3     # (k, rd, rs1, rs2)                    inline register add
K_LI = 4      # (k, rd, masked_value)                li and lui
K_MV = 5      # (k, rd, rs1)
K_LW = 6      # (k, rd, offset, base)
K_SW = 7      # (k, rs_value, offset, base)
K_BR = 8      # (k, rs1, rs2, target, fn)            fn from BRANCH_IMPLS
K_BEQZ = 9    # (k, rs1, target)
K_BNEZ = 10   # (k, rs1, target)
K_J = 11      # (k, target)
K_CALL = 12   # (k, target, link)                    link == pc + 1
K_JAL = 13    # (k, rd, target, link)
K_JALR = 14   # (k, rd, base, offset, link)
K_ECALL = 15  # (k,)
K_NOP = 16    # (k,)
K_BAD = 17    # (k, is_emulation_error, message, counted)  raises when executed

#: Kinds whose execution count folds into ``TraceStats`` memory/branch/call
#: counters (see ``Machine._fold_stats``).
CONDITIONAL_KINDS = frozenset({K_BR, K_BEQZ, K_BNEZ})

_ALU_RR_OPCODES = frozenset(ALU_REG_IMPLS)
_ALU_RI_OPCODES = frozenset(ALU_IMM_IMPLS)
_BRANCH_OPCODES = frozenset(BRANCH_IMPLS)


class DecodeError(Exception):
    """Raised when a program cannot be lowered to the decoded form."""


@dataclass
class DecodedProgram:
    """An :class:`AssemblyProgram` lowered for table dispatch.

    Everything here is static (no run state), so one decoded program is
    shared by any number of machines and runs.
    """

    #: Pre-decoded instruction tuples, indexed by flat pc.
    code: list
    #: Function name -> flat entry index.
    entries: dict
    #: Label name -> flat target index.
    labels: dict
    #: Per-pc opcode string / instruction class (observer + stats folding).
    opcodes: list
    classes: list
    #: Per-pc observer metadata: destination register name and source names,
    #: exactly as the reference interpreter reports them.
    dests: list
    sources: list
    #: Control transfers whose label / callee did not resolve statically
    #: (pc -> name).  They fault at execution time — conditional branches
    #: only when taken — reproducing the reference interpreter's pre-fault
    #: side effects (counted instruction, branch/call counters, jal link).
    unresolved: dict = field(default_factory=dict)
    #: Register name -> slot in the list-based register file (>= the 32 ABI
    #: registers; unknown names seen at decode time get fresh slots).
    slots: dict = field(default_factory=lambda: dict(REGISTER_NUMBERS))

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def __len__(self) -> int:
        return len(self.code)


def _flatten(program: AssemblyProgram):
    """Concatenate all function bodies; collect entry and label indices."""
    instructions: list[MachineInstr] = []
    labels: dict[str, int] = {}
    entries: dict[str, int] = {}
    for name, asm in program.functions.items():
        entries[name] = len(instructions)
        for item in asm.body:
            if isinstance(item, Label):
                labels[item.name] = len(instructions)
            else:
                instructions.append(item)
    return instructions, labels, entries


def decode_program(program: AssemblyProgram) -> DecodedProgram:
    """Lower ``program`` to its decoded form, caching the result on the program.

    The cache makes "decode once per process" automatic wherever the same
    ``AssemblyProgram`` object is replayed repeatedly (experiment engine
    re-measurements, CLI runs, benchmark harness reruns).  Mutating a
    program's functions after its first emulation is not supported — recompile
    instead (the compilation pipeline always produces fresh programs).
    """
    cached = getattr(program, "_decoded_cache", None)
    if cached is not None:
        return cached
    decoded = _decode(program)
    try:
        program._decoded_cache = decoded
    except (AttributeError, TypeError):  # frozen/slotted program: still works
        pass
    return decoded


def _decode(program: AssemblyProgram) -> DecodedProgram:
    instructions, labels, entries = _flatten(program)
    slots = dict(REGISTER_NUMBERS)

    def intern(name) -> int:
        if not isinstance(name, str):
            raise DecodeError(f"expected register name, got {name!r}")
        slot = slots.get(name)
        if slot is None:
            # Mirror the reference interpreter: any unknown name is simply a
            # fresh, zero-initialised register.
            slot = slots[name] = len(slots)
        return slot

    code: list = []
    opcodes: list = []
    classes: list = []
    dests: list = []
    sources: list = []
    unresolved: dict[int, str] = {}

    for pc, instr in enumerate(instructions):
        op = instr.opcode
        ops = instr.operands
        opcodes.append(op)
        classes.append(OPCODE_CLASS.get(op))
        try:
            decoded, dest, srcs = _decode_instr(op, ops, pc, labels, entries,
                                                intern, unresolved)
        except Exception as exc:
            # Mirror the reference's laziness for malformed operands too: it
            # only faults when the instruction executes, so malformed dead
            # code must not fail at decode time.  (The exception message may
            # differ from the reference's raw unpack error.)
            decoded = _bad(f"malformed instruction {str(instr)!r}: {exc}",
                           emulation_error=False)
            dest, srcs = None, []

        code.append(decoded)
        dests.append(dest)
        sources.append(srcs)

    return DecodedProgram(code=code, entries=entries, labels=labels,
                          opcodes=opcodes, classes=classes, dests=dests,
                          sources=sources, unresolved=unresolved, slots=slots)


def _decode_instr(op, ops, pc, labels, entries, intern, unresolved):
    """Lower one instruction; returns ``(decoded_tuple, dest_name, sources)``."""
    dest: Optional[str] = None
    srcs: list[str] = []

    if op in _ALU_RR_OPCODES:
        dest, rs1, rs2 = ops
        srcs = [rs1, rs2]
        rd_s, rs1_s, rs2_s = intern(dest), intern(rs1), intern(rs2)
        if op == "add":
            decoded = (K_ADD, rd_s, rs1_s, rs2_s)
        else:
            decoded = (K_ALU_RR, rd_s, rs1_s, rs2_s, ALU_REG_IMPLS[op])
    elif op == "addi":
        dest, rs1, imm = ops
        srcs = [rs1]
        decoded = (K_ADDI, intern(dest), intern(rs1), imm)
    elif op in _ALU_RI_OPCODES:
        dest, rs1, imm = ops
        srcs = [rs1]
        prepare, apply = _ALU_IMM_DECODED[op]
        decoded = (K_ALU_RI, intern(dest), intern(rs1), prepare(imm), apply)
    elif op == "li":
        dest = ops[0]
        decoded = (K_LI, intern(dest), ops[1] & WORD_MASK)
    elif op == "lui":
        dest = ops[0]
        decoded = (K_LI, intern(dest), (ops[1] << 12) & WORD_MASK)
    elif op == "mv":
        dest, rs1 = ops
        srcs = [rs1]
        decoded = (K_MV, intern(dest), intern(rs1))
    elif op == "lw":
        dest, offset, base = ops
        srcs = [base]
        decoded = (K_LW, intern(dest), offset, intern(base))
    elif op == "sw":
        value_reg, offset, base = ops
        srcs = [value_reg, base]
        decoded = (K_SW, intern(value_reg), offset, intern(base))
    elif op in _BRANCH_OPCODES:
        rs1, rs2, label = ops
        srcs = [rs1, rs2]
        target = labels.get(label, -1)
        if target < 0:
            unresolved[pc] = label
        decoded = (K_BR, intern(rs1), intern(rs2), target, BRANCH_IMPLS[op])
    elif op in ("beqz", "bnez"):
        rs1, label = ops
        srcs = [rs1]
        target = labels.get(label, -1)
        if target < 0:
            unresolved[pc] = label
        decoded = (K_BEQZ if op == "beqz" else K_BNEZ, intern(rs1), target)
    elif op == "j":
        label = ops[0]
        target = labels.get(label, -1)
        if target < 0:
            # Fault lazily at execution so the reference's pre-fault side
            # effects (the instruction and its taken-branch count) match.
            unresolved[pc] = label
        decoded = (K_J, target)
    elif op == "call":
        dest = "ra"
        target = entries.get(ops[0], -1)
        if target < 0:
            unresolved[pc] = ops[0]
        decoded = (K_CALL, target, pc + 1)
    elif op == "jal":
        dest, label = ops
        target = labels.get(label, -1)
        if target < 0:
            unresolved[pc] = label
        decoded = (K_JAL, intern(dest), target, pc + 1)
    elif op == "jalr":
        dest, base, offset = ops
        srcs = [base]
        decoded = (K_JALR, intern(dest), intern(base), offset, pc + 1)
    elif op == "ecall":
        dest = "a0"
        srcs = ["a0", "a1", "a2", "a7"]
        decoded = (K_ECALL,)
    elif op == "nop":
        decoded = (K_NOP,)
    elif op == "ebreak":
        decoded = _bad("guest executed ebreak (unreachable code)")
    elif op in OPCODE_CLASS:
        # Classified but not implemented by the emulator (lb, auipc, ...):
        # the reference counts the instruction, then faults.
        decoded = _bad(f"unknown opcode: {op}")
    else:
        # Entirely unknown opcode: the reference faults inside classify()
        # *before* recording the instruction, hence counted=False.
        decoded = _bad(f"unknown opcode: {op}", counted=False,
                       emulation_error=False)

    return decoded, dest, srcs


def _bad(message: str, counted: bool = True,
         emulation_error: bool = True) -> tuple:
    """A ``K_BAD`` tuple: faults when executed.

    ``emulation_error`` selects :class:`~repro.emulator.machine.EmulationError`
    over :class:`ValueError` (the reference raises the latter, from
    ``classify``, for opcodes no class knows — without counting them first,
    hence ``counted``).
    """
    return (K_BAD, emulation_error, message, counted)
