"""The RV32IM emulator: pre-decoded, table-dispatched guest replay.

Executes an :class:`~repro.backend.isa.AssemblyProgram`, records a
:class:`~repro.emulator.trace.TraceStats` summary, and feeds optional
observers (e.g. the x86 timing model) one event per executed instruction.
This mirrors the role of the zkVM *executor*: replay the guest and produce
the execution trace that the proving cost models consume.

Every figure, table and autotuner generation in this reproduction bottoms out
here, so the hot loop is engineered for interpreter throughput:

* the program is lowered once by :mod:`~repro.emulator.decoder` into a flat
  stream of pre-decoded tuples (integer handler ids, register slots, resolved
  targets, bound ALU/branch callables) shared across machines and runs;
* :meth:`Machine.run` picks an **observer-free fast path** when no observers
  are attached, and an observed path (same decoded stream, plus per-event
  metadata) when there are;
* per-instruction opcode/class statistics are deferred: the loop bumps one
  flat integer counter per static instruction and the dict-shaped
  :class:`TraceStats` fields are folded once at halt;
* the per-segment paging flush runs off a countdown instead of evaluating
  ``instructions % segment_size`` on every instruction, and partial trailing
  segments (run lengths that are not a multiple of ``segment_size``) are
  flushed exactly once at halt.

The original seed interpreter survives verbatim as
:class:`~repro.emulator.reference.ReferenceMachine`; the differential tests
assert both produce identical traces, outputs and observer event streams.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol

from ..backend.isa import AssemblyProgram
from ..backend.lowering import HOST_CALL_IDS, STACK_TOP
from ..zkvm.precompiles import HOST_CALL_ARITY, interpret_host_call
from .decoder import (
    CONDITIONAL_KINDS, DecodedProgram, K_ADD, K_ADDI, K_ALU_RI, K_ALU_RR,
    K_BAD, K_BEQZ, K_BNEZ, K_BR, K_CALL, K_ECALL, K_J, K_JAL, K_JALR, K_LI,
    K_LW, K_MV, K_NOP, K_SW, RETURN_SENTINEL, WORD_MASK, decode_program,
    to_signed,
)
from .trace import PAGE_SIZE, TraceStats

#: Reverse host-call table: ecall id -> name.  The arity of each call lives in
#: :data:`~repro.zkvm.precompiles.HOST_CALL_ARITY` right alongside (imported
#: above) so the ecall handler never rebuilds either mapping.
HOST_CALL_NAMES = {v: k for k, v in HOST_CALL_IDS.items()}

#: Pages are 1 KiB; the hot loop computes page numbers with a shift.
_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
assert (1 << _PAGE_SHIFT) == PAGE_SIZE, "PAGE_SIZE must be a power of two"

class EmulationError(Exception):
    """Raised on invalid guest behaviour (unknown opcode, bad call target, ...)."""


class Observer(Protocol):
    """Per-instruction event consumer (used by the CPU timing model)."""

    def on_instruction(self, opcode: str, instruction_class: str,
                       dest: Optional[str], sources: list[str],
                       memory_address: Optional[int], is_store: bool,
                       branch_taken: Optional[bool], pc: int) -> None: ...


class Machine:
    """A single-hart RV32IM machine with a flat word-addressed memory.

    The register file is a plain list indexed by the decoder's register
    slots (``zero`` is slot 0 and always reads 0); :meth:`get` / :meth:`set`
    translate ABI names for host calls and external callers.
    """

    def __init__(self, program: AssemblyProgram, max_instructions: int = 50_000_000,
                 observers: Iterable[Observer] = (), segment_size: int = 1 << 16,
                 input_values: Optional[list[int]] = None):
        self.program = program
        self.decoded: DecodedProgram = decode_program(program)
        self.max_instructions = max_instructions
        self.observers = list(observers)
        self.segment_size = segment_size
        self.input_values = input_values
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        """(Re)initialise everything one ``run()`` mutates.

        Called from ``__init__`` and again at the top of :meth:`run`, so a
        second ``run()`` on the same instance starts from exactly the state a
        fresh machine would: no leftover memory writes, per-pc counters,
        segment page sets or segment-countdown phase from the previous run.
        """
        self.registers: List[int] = [0] * self.decoded.num_slots
        self.memory: dict[int, int] = dict(self.program.globals_init)
        self.stats = TraceStats()
        self.output: list[int] = []
        # Per-segment paging bookkeeping.
        self.page_in_events = 0
        self.page_out_events = 0
        self._segment_pages_read: set[int] = set()
        self._segment_pages_written: set[int] = set()
        # Deferred statistics: executions (and taken branches) per static
        # instruction, folded into TraceStats dicts once at halt.
        size = len(self.decoded.code)
        self._exec_counts: List[int] = [0] * size
        self._taken_counts: List[int] = [0] * size
        self._executed = 0
        self._extra_registers: dict[str, int] = {}
        self._ran = False

    # -- memory interface shared with the host-call implementations ----------
    def _read_word(self, address: int) -> int:
        return self.memory.get(address & WORD_MASK & ~3, 0)

    def _write_word(self, address: int, value: int) -> None:
        self.memory[address & WORD_MASK & ~3] = value & WORD_MASK

    # -- register access (name-based, for host calls and external callers) ----
    def get(self, register: str) -> int:
        if register == "zero":
            return 0
        slot = self.decoded.slots.get(register)
        if slot is None:
            return self._extra_registers.get(register, 0)
        return self.registers[slot]

    def set(self, register: str, value: int) -> None:
        if register == "zero":
            return
        slot = self.decoded.slots.get(register)
        if slot is None:
            self._extra_registers[register] = value & WORD_MASK
        else:
            self.registers[slot] = value & WORD_MASK

    # -- main loop ------------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[list[int]] = None) -> TraceStats:
        decoded = self.decoded
        if entry not in decoded.entries:
            raise EmulationError(f"no such function: {entry}")
        if self._ran:
            # Re-running one instance must behave like a fresh machine: no
            # carried-over memory, counters, segment page sets or countdown.
            self._reset_run_state()
        self._ran = True
        regs = self.registers
        for index, value in enumerate((args or [])[:8]):
            regs[10 + index] = value & WORD_MASK            # a0..a7
        regs[2] = STACK_TOP                                 # sp
        regs[1] = RETURN_SENTINEL                           # ra
        pc = decoded.entries[entry]
        try:
            if self.observers:
                self._run_observed(pc)
            else:
                self._run_fast(pc)
        finally:
            # Fold the flat counters into TraceStats even when the guest
            # faulted, so partial traces stay inspectable (as they were when
            # the stats dicts were updated per instruction).
            self._fold_stats()
        self._flush_segment()
        stats = self.stats
        stats.return_value = to_signed(regs[10])
        stats.output = list(self.output)
        return stats

    # -- the observer-free fast path ------------------------------------------
    def _run_fast(self, pc: int) -> None:
        decoded = self.decoded
        code = decoded.code
        regs = self.registers
        memory = self.memory
        mem_get = memory.get
        pac = self.stats.page_access_counts
        pac_get = pac.get
        seg_read_add = self._segment_pages_read.add
        seg_write_add = self._segment_pages_written.add
        ec = self._exec_counts
        tc = self._taken_counts
        seg_size = self.segment_size
        limit = self.max_instructions
        executed = self._executed
        seg_left = seg_size - executed % seg_size
        M = WORD_MASK
        SENTINEL = RETURN_SENTINEL
        # Handler ids as locals: the ladder below tests them in rough
        # descending order of dynamic frequency.
        ADDI, ADD, ALU_RR, ALU_RI, LW, SW, BR, MV, LI, BEQZ, BNEZ, J, CALL, \
            JAL, JALR, ECALL, NOP, BAD = (
                K_ADDI, K_ADD, K_ALU_RR, K_ALU_RI, K_LW, K_SW, K_BR, K_MV,
                K_LI, K_BEQZ, K_BNEZ, K_J, K_CALL, K_JAL, K_JALR, K_ECALL,
                K_NOP, K_BAD)

        try:
            while pc != SENTINEL:
                ins = code[pc]
                if executed >= limit:
                    raise EmulationError(f"instruction limit exceeded ({limit})")
                ec[pc] += 1
                executed += 1
                k = ins[0]
                if k == ADDI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + ins[3]) & M
                    pc += 1
                elif k == ADD:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + regs[ins[3]]) & M
                    pc += 1
                elif k == ALU_RR:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], regs[ins[3]])
                    pc += 1
                elif k == ALU_RI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], ins[3])
                    pc += 1
                elif k == LW:
                    address = (regs[ins[3]] + ins[2]) & M
                    page = address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_read_add(page)
                    rd = ins[1]
                    if rd:
                        regs[rd] = mem_get(address & 0xFFFFFFFC, 0) & M
                    pc += 1
                elif k == SW:
                    address = (regs[ins[3]] + ins[2]) & M
                    page = address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_write_add(page)
                    memory[address & 0xFFFFFFFC] = regs[ins[1]]
                    pc += 1
                elif k == BR:
                    if ins[4](regs[ins[1]], regs[ins[2]]):
                        tc[pc] += 1
                        target = ins[3]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == MV:
                    rd = ins[1]
                    if rd:
                        regs[rd] = regs[ins[2]]
                    pc += 1
                elif k == LI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[2]
                    pc += 1
                elif k == BEQZ:
                    if regs[ins[1]] == 0:
                        tc[pc] += 1
                        target = ins[2]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == BNEZ:
                    if regs[ins[1]] != 0:
                        tc[pc] += 1
                        target = ins[2]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == J:
                    target = ins[1]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == CALL:
                    target = ins[1]
                    if target < 0:   # faults before the link write (ref order)
                        raise EmulationError(
                            f"call to unknown function: {decoded.unresolved[pc]}")
                    regs[1] = ins[2]                        # ra = link
                    pc = target
                elif k == JAL:
                    rd = ins[1]
                    if rd:           # link is written before the fault check,
                        regs[rd] = ins[3]                   # as in the reference
                    target = ins[2]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == JALR:
                    target = (regs[ins[2]] + ins[3]) & M
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4]
                    pc = target
                elif k == ECALL:
                    self._ecall()
                    pc += 1
                elif k == NOP:
                    pc += 1
                elif k == BAD:
                    if not ins[3]:
                        ec[pc] -= 1
                        executed -= 1
                    raise (EmulationError(ins[2]) if ins[1]
                           else ValueError(ins[2]))
                else:  # pragma: no cover - decoder emits only known kinds
                    raise EmulationError(f"unknown handler id: {k}")

                seg_left -= 1
                if not seg_left:
                    seg_left = seg_size
                    self._flush_segment()
        except IndexError:
            if not 0 <= pc < len(code):
                raise EmulationError(
                    f"program counter out of range: {pc}") from None
            raise
        finally:
            self._executed = executed

    # -- the observed path -----------------------------------------------------
    def _run_observed(self, pc: int) -> None:
        """Same decoded dispatch, plus one event per instruction to observers.

        Events carry exactly what the reference interpreter reported: opcode,
        instruction class, destination/source register *names*, the effective
        memory address for loads/stores, and the branch outcome.
        """
        decoded = self.decoded
        code = decoded.code
        opcodes = decoded.opcodes
        classes = decoded.classes
        dests = decoded.dests
        sources = decoded.sources
        regs = self.registers
        memory = self.memory
        mem_get = memory.get
        pac = self.stats.page_access_counts
        pac_get = pac.get
        seg_read_add = self._segment_pages_read.add
        seg_write_add = self._segment_pages_written.add
        ec = self._exec_counts
        tc = self._taken_counts
        seg_size = self.segment_size
        limit = self.max_instructions
        executed = self._executed
        seg_left = seg_size - executed % seg_size
        M = WORD_MASK
        SENTINEL = RETURN_SENTINEL
        notifiers = tuple(observer.on_instruction for observer in self.observers)

        try:
            while pc != SENTINEL:
                ins = code[pc]
                if executed >= limit:
                    raise EmulationError(f"instruction limit exceeded ({limit})")
                ec[pc] += 1
                executed += 1
                current = pc
                memory_address: Optional[int] = None
                is_store = False
                branch_taken: Optional[bool] = None
                k = ins[0]
                if k == K_ADDI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + ins[3]) & M
                    pc += 1
                elif k == K_ADD:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + regs[ins[3]]) & M
                    pc += 1
                elif k == K_ALU_RR:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], regs[ins[3]])
                    pc += 1
                elif k == K_ALU_RI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], ins[3])
                    pc += 1
                elif k == K_LW:
                    memory_address = (regs[ins[3]] + ins[2]) & M
                    page = memory_address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_read_add(page)
                    rd = ins[1]
                    if rd:
                        regs[rd] = mem_get(memory_address & 0xFFFFFFFC, 0) & M
                    pc += 1
                elif k == K_SW:
                    memory_address = (regs[ins[3]] + ins[2]) & M
                    page = memory_address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_write_add(page)
                    memory[memory_address & 0xFFFFFFFC] = regs[ins[1]]
                    is_store = True
                    pc += 1
                elif k == K_BR:
                    branch_taken = ins[4](regs[ins[1]], regs[ins[2]])
                    if branch_taken:
                        tc[pc] += 1
                        target = ins[3]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == K_MV:
                    rd = ins[1]
                    if rd:
                        regs[rd] = regs[ins[2]]
                    pc += 1
                elif k == K_LI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[2]
                    pc += 1
                elif k in (K_BEQZ, K_BNEZ):
                    value = regs[ins[1]]
                    branch_taken = (value == 0) if k == K_BEQZ else (value != 0)
                    if branch_taken:
                        tc[pc] += 1
                        target = ins[2]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == K_J:
                    branch_taken = True
                    target = ins[1]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == K_CALL:
                    target = ins[1]
                    if target < 0:   # faults before the link write (ref order)
                        raise EmulationError(
                            f"call to unknown function: {decoded.unresolved[pc]}")
                    regs[1] = ins[2]
                    pc = target
                elif k == K_JAL:
                    rd = ins[1]
                    if rd:           # link is written before the fault check,
                        regs[rd] = ins[3]                   # as in the reference
                    target = ins[2]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == K_JALR:
                    target = (regs[ins[2]] + ins[3]) & M
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4]
                    pc = target
                elif k == K_ECALL:
                    self._ecall()
                    pc += 1
                elif k == K_NOP:
                    pc += 1
                elif k == K_BAD:
                    if not ins[3]:
                        ec[pc] -= 1
                        executed -= 1
                    raise (EmulationError(ins[2]) if ins[1]
                           else ValueError(ins[2]))
                else:  # pragma: no cover - decoder emits only known kinds
                    raise EmulationError(f"unknown handler id: {k}")

                for notify in notifiers:
                    notify(opcodes[current], classes[current], dests[current],
                           sources[current], memory_address, is_store,
                           branch_taken, current)

                seg_left -= 1
                if not seg_left:
                    seg_left = seg_size
                    self._flush_segment()
        except IndexError:
            if not 0 <= pc < len(code):
                raise EmulationError(
                    f"program counter out of range: {pc}") from None
            raise
        finally:
            self._executed = executed

    # -- statistics ------------------------------------------------------------
    def _fold_stats(self) -> None:
        """Fold the flat per-instruction counters into the TraceStats dicts.

        Runs once at halt (or fault) instead of updating two dicts and a
        handful of scalars on every executed instruction.  The fold rebuilds
        the dicts from the counter arrays, so re-folding is idempotent.
        """
        decoded = self.decoded
        code = decoded.code
        opcodes = decoded.opcodes
        classes = decoded.classes
        tc = self._taken_counts
        stats = self.stats
        opcode_counts: dict[str, int] = {}
        class_counts: dict[str, int] = {}
        instructions = loads = stores = calls = 0
        taken = not_taken = 0
        for index, count in enumerate(self._exec_counts):
            if not count:
                continue
            instructions += count
            opcode = opcodes[index]
            opcode_counts[opcode] = opcode_counts.get(opcode, 0) + count
            cls = classes[index]
            class_counts[cls] = class_counts.get(cls, 0) + count
            k = code[index][0]
            if k == K_LW:
                loads += count
            elif k == K_SW:
                stores += count
            elif k == K_CALL:
                calls += count
            elif k == K_J:
                taken += count
            elif k in CONDITIONAL_KINDS:
                t = tc[index]
                taken += t
                not_taken += count - t
        stats.instructions = instructions
        stats.opcode_counts = opcode_counts
        stats.class_counts = class_counts
        stats.loads = loads
        stats.stores = stores
        stats.calls = calls
        stats.branches_taken = taken
        stats.branches_not_taken = not_taken
        # Pages touched in the still-open segment belong to the whole-run sets
        # too (the flush below only counts per-segment paging events).
        stats.pages_read |= self._segment_pages_read
        stats.pages_written |= self._segment_pages_written

    def _flush_segment(self) -> None:
        seg_read = self._segment_pages_read
        seg_written = self._segment_pages_written
        stats = self.stats
        stats.pages_read |= seg_read
        stats.pages_written |= seg_written
        self.page_in_events += len(seg_read | seg_written)
        self.page_out_events += len(seg_written)
        seg_read.clear()
        seg_written.clear()

    # -- host calls ------------------------------------------------------------
    def _ecall(self) -> None:
        regs = self.registers
        call_id = regs[17]                                  # a7
        name = HOST_CALL_NAMES.get(call_id)
        if name is None:
            raise EmulationError(f"unknown ecall id: {call_id}")
        host_calls = self.stats.host_calls
        host_calls[name] = host_calls.get(name, 0) + 1
        arity = HOST_CALL_ARITY.get(name, 1)
        result = interpret_host_call(
            name, [regs[10], regs[11], regs[12], regs[13]][:arity], self)
        regs[10] = result & WORD_MASK                       # a0


def run_program(program: AssemblyProgram, entry: str = "main",
                args: Optional[list[int]] = None,
                observers: Iterable[Observer] = (),
                max_instructions: int = 50_000_000,
                input_values: Optional[list[int]] = None,
                translate: bool = False) -> TraceStats:
    """Convenience wrapper: execute ``program`` and return its trace statistics.

    With ``translate=True`` the superblock-translating engine
    (:class:`~repro.emulator.translate.TranslatedMachine`) replays the
    program instead; the trace is byte-for-byte identical either way.
    """
    if translate:
        from .translate import TranslatedMachine
        machine_cls = TranslatedMachine
    else:
        machine_cls = Machine
    machine = machine_cls(program, max_instructions=max_instructions,
                          observers=observers, input_values=input_values)
    return machine.run(entry, args)
