"""Batched lockstep guest execution: N lanes of one decoded program.

The fast :class:`~repro.emulator.machine.Machine` replays one guest at a
time; every downstream consumer that wants throughput (autotuner
generations, fuzz shards, figure sweeps) runs the *same program* many times
with different inputs or argument vectors.  :class:`BatchedMachine` executes
N such runs ("lanes") in lockstep through NumPy structure-of-arrays state:

* the register file is one ``(num_slots, N)`` uint32 array — one row per
  register slot, one column per lane — so an ``add`` for a whole group of
  lanes is a single vectorized operation;
* memory is a shared page table ``{page -> (N, 256) uint32}`` (1 KiB pages,
  word-indexed), so loads/stores over lanes that share a page are one NumPy
  gather/scatter;
* diverging PCs are handled by per-PC lane *grouping*: lanes are bucketed by
  their current pc, the scheduler repeatedly picks the bucket with the most
  live lanes and runs it straight-line until the group splits (a mixed
  branch outcome, divergent ``jalr`` targets, a halt or a fault), then
  re-buckets the fragments — groups arriving at the same pc merge again.

Statistics are collected so that every lane's :class:`TraceStats` matches a
single-stream :class:`Machine` run byte-for-byte: per-pc execution counters
live in a ``(code, N)`` array updated per *group* (a dissolved group applies
its shared path counts to all member lanes at once), and the per-segment
paging flush runs off per-lane countdowns exactly like the scalar machine's.
Host calls and faults drop to per-lane scalar handling — they are rare, and
scalar handling is what makes the observable semantics (fault ordering,
pre-fault side effects, per-lane output streams) line up with ``machine.py``.

NumPy is an optional dependency of this module only: importing the package
works without it, and :func:`require_numpy` raises a clear error when batched
execution is requested on an interpreter without NumPy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # gated: the rest of the emulator package must work without numpy
    import numpy as np
except ImportError:  # pragma: no cover - CI images ship numpy via scipy
    np = None  # type: ignore[assignment]

from ..backend.isa import AssemblyProgram
from ..backend.lowering import STACK_TOP
from ..zkvm.precompiles import HOST_CALL_ARITY, interpret_host_call
from .decoder import (
    CONDITIONAL_KINDS, K_ADD, K_ADDI, K_ALU_RI, K_ALU_RR, K_BAD, K_BEQZ,
    K_BNEZ, K_BR, K_CALL, K_ECALL, K_J, K_JAL, K_JALR, K_LI, K_LW, K_MV,
    K_NOP, K_SW, RETURN_SENTINEL, WORD_MASK, decode_program, to_signed,
)
from .machine import HOST_CALL_NAMES, EmulationError
from .trace import PAGE_SIZE, TraceStats

_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
_WORDS_PER_PAGE = PAGE_SIZE // 4


def numpy_available() -> bool:
    """True when the optional NumPy dependency is importable."""
    return np is not None


def require_numpy() -> None:
    """Raise a clear error when batched execution is requested without NumPy."""
    if np is None:
        raise RuntimeError(
            "batched emulation requires numpy, which is not installed; "
            "use the single-stream Machine instead")


# -- vectorized operator tables ------------------------------------------------
# Built lazily (first batched decode) so the module imports without numpy.
# Each entry mirrors one scalar impl in decoder.ALU_REG_IMPLS /
# _ALU_IMM_DECODED / BRANCH_IMPLS over uint32 lane vectors: uint32 arithmetic
# wraps mod 2^32 natively, signed comparisons/shifts go through int32 views,
# and div/rem widen to int64 with the divisor-zero cases patched via where().
_TABLES = None


def _build_tables():
    U32, I32, I64 = np.uint32, np.int32, np.int64
    SHIFT_MASK = U32(31)
    M64 = I64(WORD_MASK)

    def _sra(a, b):
        return (a.view(I32) >> (b & SHIFT_MASK).view(I32)).view(U32)

    def _div(a, b):
        sa = a.view(I32).astype(I64)
        sb = b.view(I32).astype(I64)
        zero = sb == 0
        q = np.abs(sa) // np.abs(np.where(zero, 1, sb))
        q = np.where((sa < 0) != (sb < 0), -q, q) & M64
        return np.where(zero, M64, q).astype(U32)

    def _rem(a, b):
        sa = a.view(I32).astype(I64)
        sb = b.view(I32).astype(I64)
        zero = sb == 0
        r = np.abs(sa) % np.abs(np.where(zero, 1, sb))
        r = np.where(sa < 0, -r, r) & M64
        return np.where(zero, a.astype(I64), r).astype(U32)

    def _divu(a, b):
        zero = b == 0
        return np.where(zero, U32(WORD_MASK), a // np.where(zero, U32(1), b))

    def _remu(a, b):
        zero = b == 0
        return np.where(zero, a, a % np.where(zero, U32(1), b))

    alu_rr = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "sll": lambda a, b: a << (b & SHIFT_MASK),
        "srl": lambda a, b: a >> (b & SHIFT_MASK),
        "sra": _sra,
        "slt": lambda a, b: (a.view(I32) < b.view(I32)).astype(U32),
        "sltu": lambda a, b: (a < b).astype(U32),
        "mul": lambda a, b: a * b,
        "div": _div,
        "divu": _divu,
        "rem": _rem,
        "remu": _remu,
    }

    # Immediate ops receive the decoder's *prepared* immediate (masked for
    # logical ops, &31 for shifts, raw for slti); each maker returns the
    # (vector-ready immediate, vector fn) pair for the batched tuple.
    def _ri_slti(prepared):
        # to_signed(a) is always within int32, so out-of-range immediates
        # make the comparison a constant.
        if prepared >= 1 << 31:
            return None, lambda a, i: np.ones_like(a)
        if prepared < -(1 << 31):
            return None, lambda a, i: np.zeros_like(a)
        return I32(prepared), lambda a, i: (a.view(I32) < i).astype(U32)

    alu_ri_makers = {
        "andi": lambda p: (U32(p), lambda a, i: a & i),
        "ori": lambda p: (U32(p), lambda a, i: a | i),
        "xori": lambda p: (U32(p), lambda a, i: a ^ i),
        "sltiu": lambda p: (U32(p), lambda a, i: (a < i).astype(U32)),
        "slti": _ri_slti,
        "slli": lambda p: (U32(p), lambda a, i: a << i),
        "srli": lambda p: (U32(p), lambda a, i: a >> i),
        "srai": lambda p: (I32(p), lambda a, i: (a.view(I32) >> i).view(U32)),
    }

    branch = {
        "beq": lambda a, b: a == b,
        "bne": lambda a, b: a != b,
        "blt": lambda a, b: a.view(I32) < b.view(I32),
        "bge": lambda a, b: a.view(I32) >= b.view(I32),
        "bltu": lambda a, b: a < b,
        "bgeu": lambda a, b: a >= b,
    }
    return alu_rr, alu_ri_makers, branch


def _batch_decode(decoded):
    """Re-lower a :class:`DecodedProgram`'s tuples for vector dispatch.

    Immediates and offsets are pre-masked to uint32 scalars (so uint32 lane
    arithmetic wraps exactly like the scalar ``& WORD_MASK``), and the bound
    scalar ALU/branch callables are swapped for their vector twins.  Cached on
    the decoded program — shared by every BatchedMachine for that program.
    """
    cached = getattr(decoded, "_batched_cache", None)
    if cached is not None:
        return cached
    global _TABLES
    if _TABLES is None:
        _TABLES = _build_tables()
    alu_rr, alu_ri_makers, branch = _TABLES
    U32 = np.uint32
    M = WORD_MASK

    code = []
    for pc, ins in enumerate(decoded.code):
        k = ins[0]
        op = decoded.opcodes[pc]
        if k == K_ADDI:
            t = (k, ins[1], ins[2], U32(ins[3] & M))
        elif k == K_ALU_RR:
            t = (k, ins[1], ins[2], ins[3], alu_rr[op])
        elif k == K_ALU_RI:
            imm, fn = alu_ri_makers[op](ins[3])
            t = (k, ins[1], ins[2], imm, fn)
        elif k == K_LI:
            t = (k, ins[1], U32(ins[2]))
        elif k == K_LW:
            t = (k, ins[1], U32(ins[2] & M), ins[3])
        elif k == K_SW:
            t = (k, ins[1], U32(ins[2] & M), ins[3])
        elif k == K_BR:
            t = (k, ins[1], ins[2], ins[3], branch[op])
        elif k == K_JALR:
            t = (k, ins[1], ins[2], U32(ins[3] & M), ins[4])
        else:  # K_ADD/K_MV/K_BEQZ/K_BNEZ/K_J/K_CALL/K_JAL/K_ECALL/K_NOP/K_BAD
            t = ins
        code.append(t)
    try:
        decoded._batched_cache = code
    except (AttributeError, TypeError):  # pragma: no cover - slotted subclass
        pass
    return code


class _LaneHost:
    """One lane's :class:`~repro.zkvm.precompiles.GuestMemory` view.

    Host calls see exactly what they see on the scalar machine: word-granular
    memory access (uncounted by the paging stats, as in ``Machine._read_word``),
    the lane's output stream, and the lane's input vector.
    """

    __slots__ = ("_machine", "_lane", "output", "input_values")

    def __init__(self, machine: "BatchedMachine", lane: int):
        self._machine = machine
        self._lane = lane
        self.output = machine._outputs[lane]
        self.input_values = machine._lane_inputs[lane]

    def _read_word(self, address: int) -> int:
        machine = self._machine
        address &= WORD_MASK & ~3
        page = machine._pages.get(address >> _PAGE_SHIFT)
        if page is None:
            return 0
        return int(page[self._lane, (address >> 2) & (_WORDS_PER_PAGE - 1)])

    def _write_word(self, address: int, value: int) -> None:
        machine = self._machine
        address &= WORD_MASK & ~3
        page = machine._page(address >> _PAGE_SHIFT)
        page[self._lane, (address >> 2) & (_WORDS_PER_PAGE - 1)] = value & WORD_MASK


class BatchedMachine:
    """N lockstep lanes of one program through structure-of-arrays state.

    Lanes are fully independent guests — same decoded code, private registers
    / memory / stats columns — so any lane-grouping schedule is semantically
    equivalent to N scalar runs; grouping only decides how much of the work
    is vectorized.  ``run()`` returns one :class:`TraceStats` per lane.

    A lane that faults (bad opcode, instruction limit, unknown label...)
    records the exception in :attr:`lane_errors` and a partial, folded
    TraceStats — exactly the state a scalar ``Machine`` leaves behind — while
    the other lanes run to completion.  By default ``run()`` re-raises the
    first faulted lane's exception at the end; pass ``capture_faults=True``
    to get the per-lane errors instead.
    """

    def __init__(self, program: AssemblyProgram, num_lanes: int,
                 max_instructions: int = 50_000_000, segment_size: int = 1 << 16,
                 input_values: Optional[Sequence[int]] = None,
                 lane_inputs: Optional[Sequence[Optional[Sequence[int]]]] = None,
                 capture_faults: bool = False):
        require_numpy()
        if num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        if lane_inputs is not None and len(lane_inputs) != num_lanes:
            raise ValueError("lane_inputs must have one entry per lane")
        self.program = program
        self.decoded = decode_program(program)
        self.num_lanes = num_lanes
        self.max_instructions = max_instructions
        self.segment_size = segment_size
        self.capture_faults = capture_faults
        self._bcode = _batch_decode(self.decoded)
        self._input_spec = (list(lane_inputs) if lane_inputs is not None
                            else [input_values] * num_lanes)
        self._reset_run_state()

    # -- state ----------------------------------------------------------------
    def _reset_run_state(self) -> None:
        N = self.num_lanes
        decoded = self.decoded
        self._regs = np.zeros((decoded.num_slots, N), np.uint32)
        #: page -> (N, words_per_page) uint32 lane-major data.
        self._pages: dict = {}
        #: page -> (access counts, seg read, seg written, ever read, ever
        #: written) per-lane rows, created together on first touch.
        self._pstats: dict = {}
        for address, value in self.program.globals_init.items():
            address &= WORD_MASK & ~3
            page = self._page(address >> _PAGE_SHIFT)
            page[:, (address >> 2) & (_WORDS_PER_PAGE - 1)] = value & WORD_MASK
        self._ec = np.zeros((len(decoded.code), N), np.int64)
        self._tc: dict = {}  # branch pc -> (N,) taken counts, lazily
        self._seg_left = np.full(N, self.segment_size, np.int64)
        self._limit_left = np.full(N, self.max_instructions, np.int64)
        self._executed = np.zeros(N, np.int64)
        self._page_in = np.zeros(N, np.int64)
        self._page_out = np.zeros(N, np.int64)
        self._outputs: List[list] = [[] for _ in range(N)]
        self._host_calls: List[dict] = [{} for _ in range(N)]
        self._lane_inputs = [None if iv is None else list(iv)
                             for iv in self._input_spec]
        self._stats: List[Optional[TraceStats]] = [None] * N
        self._errors: List[Optional[BaseException]] = [None] * N
        self._buckets: dict = {}
        self._rows = np.arange(N, dtype=np.int64)
        self.lane_page_in_events: List[int] = [0] * N
        self.lane_page_out_events: List[int] = [0] * N
        self._ran = False

    def _page(self, page_num: int):
        page = self._pages.get(page_num)
        if page is None:
            page = self._pages[page_num] = np.zeros(
                (self.num_lanes, _WORDS_PER_PAGE), np.uint32)
        return page

    def _page_stats(self, page_num: int):
        rows = self._pstats.get(page_num)
        if rows is None:
            N = self.num_lanes
            rows = self._pstats[page_num] = (
                np.zeros(N, np.int64),                  # access counts
                np.zeros(N, bool), np.zeros(N, bool),   # segment read/written
                np.zeros(N, bool), np.zeros(N, bool),   # ever read/written
            )
        return rows

    def _tc_row(self, pc: int):
        row = self._tc.get(pc)
        if row is None:
            row = self._tc[pc] = np.zeros(self.num_lanes, np.int64)
        return row

    # -- the lane-group scheduler ---------------------------------------------
    def run(self, entry: str = "main", args: Optional[Sequence[int]] = None,
            lane_args: Optional[Sequence[Optional[Sequence[int]]]] = None
            ) -> List[TraceStats]:
        """Execute every lane to halt (or fault); one TraceStats per lane.

        ``args`` seeds a0..a7 identically on all lanes; ``lane_args`` gives
        each lane its own argument vector (and overrides ``args``).
        """
        decoded = self.decoded
        if entry not in decoded.entries:
            raise EmulationError(f"no such function: {entry}")
        if lane_args is not None and len(lane_args) != self.num_lanes:
            raise ValueError("lane_args must have one entry per lane")
        if self._ran:
            self._reset_run_state()
        self._ran = True
        regs = self._regs
        if lane_args is not None:
            for lane, vector in enumerate(lane_args):
                for index, value in enumerate((vector or [])[:8]):
                    regs[10 + index, lane] = value & WORD_MASK
        elif args:
            for index, value in enumerate(args[:8]):
                regs[10 + index, :] = value & WORD_MASK
        regs[2, :] = STACK_TOP
        regs[1, :] = np.uint32(RETURN_SENTINEL)

        buckets = self._buckets
        buckets[decoded.entries[entry]] = self._rows.copy()
        while buckets:
            # Largest group first (ties: lowest pc, for determinism).
            pc = min(buckets, key=lambda p: (-buckets[p].size, p))
            self._run_group(pc, buckets.pop(pc))

        self.lane_page_in_events = [int(v) for v in self._page_in]
        self.lane_page_out_events = [int(v) for v in self._page_out]
        self.lane_errors = list(self._errors)
        self.lane_stats = list(self._stats)
        if not self.capture_faults:
            for error in self._errors:
                if error is not None:
                    raise error
        return list(self._stats)

    def _run_group(self, pc: int, lanes) -> None:
        """Run one pc-group straight-line until it splits, halts or faults.

        Shared bookkeeping (the path's per-pc counts, the step total, the
        segment/limit countdown minimums) is kept in plain Python scalars and
        applied to the member lanes' arrays only when the group dissolves —
        the straight-line hot loop does a handful of NumPy vector ops and two
        dict updates per instruction, regardless of lane count.
        """
        decoded = self.decoded
        code = self._bcode
        code_len = len(code)
        regs = self._regs
        n = lanes.size
        full = n == self.num_lanes
        # Register rows are indexed with a plain slice when the group is all
        # lanes (a lane only leaves the full group by retiring or faulting,
        # and dead lanes' registers are never read again — their stats are
        # folded at retirement).  Memory/stat updates always use lane arrays.
        idx = slice(None) if full else lanes
        rows = self._rows if full else lanes
        path: dict = {}
        taken: dict = {}
        steps = 0
        seg_size = self.segment_size
        seg_left = self._seg_left
        # Countdowns relative to group entry; per-lane values are written
        # back by _dissolve.
        seg_rel = int(seg_left[lanes].min())
        lim_rel = int(self._limit_left[lanes].min())
        SENTINEL = RETURN_SENTINEL
        ADDI, ADD, ALU_RR, ALU_RI, LW, SW, BR, MV, LI, BEQZ, BNEZ, J, CALL, \
            JAL, JALR, ECALL, NOP, BAD = (
                K_ADDI, K_ADD, K_ALU_RR, K_ALU_RI, K_LW, K_SW, K_BR, K_MV,
                K_LI, K_BEQZ, K_BNEZ, K_J, K_CALL, K_JAL, K_JALR, K_ECALL,
                K_NOP, K_BAD)

        while True:
            if not 0 <= pc < code_len:
                self._dissolve(lanes, path, taken, steps)
                self._fault_lanes(lanes, EmulationError(
                    f"program counter out of range: {pc}"))
                return
            if lim_rel <= 0:
                # At least one lane is out of budget; fault those, re-bucket
                # the rest (the limit check precedes execution, as in the
                # scalar machine).
                self._dissolve(lanes, path, taken, steps)
                left = self._limit_left[lanes]
                exhausted = lanes[left <= 0]
                rest = lanes[left > 0]
                self._fault_lanes(exhausted, EmulationError(
                    f"instruction limit exceeded ({self.max_instructions})"))
                if rest.size:
                    self._settle_segments(rest)
                    self._enqueue(pc, rest)
                return
            ins = code[pc]
            k = ins[0]
            path[pc] = path.get(pc, 0) + 1
            steps += 1
            lim_rel -= 1
            if k == ADDI:
                rd = ins[1]
                if rd:
                    # Full groups write through out= (one ufunc call, no
                    # temporary); rows never overlap hazardously (the ufunc
                    # is elementwise over same-shape operands).
                    if full:
                        np.add(regs[ins[2]], ins[3], out=regs[rd])
                    else:
                        regs[rd][lanes] = regs[ins[2]][lanes] + ins[3]
                pc += 1
            elif k == ADD:
                rd = ins[1]
                if rd:
                    if full:
                        np.add(regs[ins[2]], regs[ins[3]], out=regs[rd])
                    else:
                        regs[rd][lanes] = regs[ins[2]][lanes] + regs[ins[3]][lanes]
                pc += 1
            elif k == ALU_RR:
                rd = ins[1]
                if rd:
                    regs[rd][idx] = ins[4](regs[ins[2]][idx], regs[ins[3]][idx])
                pc += 1
            elif k == ALU_RI:
                rd = ins[1]
                if rd:
                    regs[rd][idx] = ins[4](regs[ins[2]][idx], ins[3])
                pc += 1
            elif k == LW:
                addresses = regs[ins[3]][idx] + ins[2]
                pages = addresses >> _PAGE_SHIFT
                first = pages[0]
                rd = ins[1]
                if (pages == first).all():
                    counts, seg_read = self._page_stats(int(first))[:2]
                    counts[idx] += 1
                    seg_read[idx] = True
                    if rd:
                        page = self._page(int(first))
                        regs[rd][idx] = page[
                            rows, (addresses >> 2) & (_WORDS_PER_PAGE - 1)]
                else:
                    self._access_multi(rows, addresses, pages, rd, idx, False)
                pc += 1
            elif k == SW:
                addresses = regs[ins[3]][idx] + ins[2]
                pages = addresses >> _PAGE_SHIFT
                first = pages[0]
                if (pages == first).all():
                    counts, _, seg_written = self._page_stats(int(first))[:3]
                    counts[idx] += 1
                    seg_written[idx] = True
                    page = self._page(int(first))
                    page[rows, (addresses >> 2) & (_WORDS_PER_PAGE - 1)] = \
                        regs[ins[1]][idx]
                else:
                    self._access_multi(rows, addresses, pages, ins[1], idx, True)
                pc += 1
            elif k == BR or k == BEQZ or k == BNEZ:
                if k == BR:
                    outcome = ins[4](regs[ins[1]][idx], regs[ins[2]][idx])
                    target = ins[3]
                else:
                    values = regs[ins[1]][idx]
                    outcome = (values == 0) if k == BEQZ else (values != 0)
                    target = ins[2]
                num_taken = int(np.count_nonzero(outcome))
                if num_taken == 0:
                    pc += 1
                elif num_taken == n:
                    taken[pc] = taken.get(pc, 0) + 1
                    if target < 0:
                        self._dissolve(lanes, path, taken, steps)
                        self._fault_lanes(lanes, EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}"))
                        return
                    pc = target
                else:
                    # Mixed outcome: the group splits here.  The branch
                    # itself was executed by every lane (already in `path`);
                    # only the taken side's tc and the two futures differ.
                    self._dissolve(lanes, path, taken, steps)
                    taken_lanes = rows[outcome]
                    fall_lanes = rows[~outcome]
                    self._tc_row(pc)[taken_lanes] += 1
                    self._settle_segments(fall_lanes)
                    self._enqueue(pc + 1, fall_lanes)
                    if target < 0:
                        self._fault_lanes(taken_lanes, EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}"))
                    else:
                        self._settle_segments(taken_lanes)
                        self._enqueue(target, taken_lanes)
                    return
            elif k == MV:
                rd = ins[1]
                if rd:
                    if full:
                        np.copyto(regs[rd], regs[ins[2]])
                    else:
                        regs[rd][lanes] = regs[ins[2]][lanes]
                pc += 1
            elif k == LI:
                rd = ins[1]
                if rd:
                    if full:
                        regs[rd].fill(ins[2])
                    else:
                        regs[rd][lanes] = ins[2]
                pc += 1
            elif k == J:
                target = ins[1]
                if target < 0:
                    self._dissolve(lanes, path, taken, steps)
                    self._fault_lanes(lanes, EmulationError(
                        f"unknown label: {decoded.unresolved[pc]}"))
                    return
                pc = target
            elif k == CALL:
                target = ins[1]
                if target < 0:  # faults before the link write (ref order)
                    self._dissolve(lanes, path, taken, steps)
                    self._fault_lanes(lanes, EmulationError(
                        f"call to unknown function: {decoded.unresolved[pc]}"))
                    return
                if full:
                    regs[1].fill(ins[2])
                else:
                    regs[1][lanes] = ins[2]
                pc = target
            elif k == JAL:
                rd = ins[1]
                if rd:  # link is written before the fault check
                    if full:
                        regs[rd].fill(ins[3])
                    else:
                        regs[rd][lanes] = ins[3]
                target = ins[2]
                if target < 0:
                    self._dissolve(lanes, path, taken, steps)
                    self._fault_lanes(lanes, EmulationError(
                        f"unknown label: {decoded.unresolved[pc]}"))
                    return
                pc = target
            elif k == JALR:
                targets = regs[ins[2]][idx] + ins[3]
                rd = ins[1]
                if rd:
                    if full:
                        regs[rd].fill(ins[4])
                    else:
                        regs[rd][lanes] = ins[4]
                first = targets[0]
                if (targets == first).all():
                    target = int(first)
                    if target == SENTINEL:
                        self._dissolve(lanes, path, taken, steps)
                        self._settle_segments(lanes)
                        self._retire_lanes(lanes)
                        return
                    pc = target  # range-checked at the top of the loop
                else:
                    self._dissolve(lanes, path, taken, steps)
                    for target in np.unique(targets):
                        group = rows[targets == target]
                        self._settle_segments(group)
                        target = int(target)
                        if target == SENTINEL:
                            self._retire_lanes(group)
                        else:
                            self._enqueue(target, group)
                    return
            elif k == ECALL:
                results, ok, errors = self._ecall_group(rows, idx)
                if errors is None:
                    regs[10][idx] = results
                    pc += 1
                else:
                    self._dissolve(lanes, path, taken, steps)
                    for lane, error in errors:
                        self._fault_lanes(
                            np.array([lane], dtype=np.int64), error)
                    survivors = rows[ok]
                    if survivors.size:
                        regs[10][survivors] = results[ok]
                        self._settle_segments(survivors)
                        self._enqueue(pc + 1, survivors)
                    return
            elif k == NOP:
                pc += 1
            elif k == BAD:
                if not ins[3]:  # the reference never counted this opcode
                    path[pc] -= 1
                    steps -= 1
                self._dissolve(lanes, path, taken, steps)
                self._fault_lanes(lanes, EmulationError(ins[2]) if ins[1]
                                  else ValueError(ins[2]))
                return
            else:  # pragma: no cover - decoder emits only known kinds
                raise EmulationError(f"unknown handler id: {k}")

            seg_rel -= 1
            if seg_rel == 0:
                # The earliest lane's segment countdown just hit zero: flush
                # exactly the lanes that are due and push their next deadline
                # one segment out (relative values stay anchored to group
                # entry until _dissolve writes them back).
                current = seg_left[lanes] - steps
                due = lanes[current == 0]
                self._flush_lanes(due)
                seg_left[due] += seg_size
                seg_rel = int((seg_left[lanes] - steps).min())

    # -- group bookkeeping ----------------------------------------------------
    def _dissolve(self, lanes, path: dict, taken: dict, steps: int) -> None:
        """Write a dissolving group's shared counters back per lane."""
        if not steps:
            return
        self._executed[lanes] += steps
        self._limit_left[lanes] -= steps
        self._seg_left[lanes] -= steps
        ec = self._ec
        for pc, count in path.items():
            ec[pc][lanes] += count
        for pc, count in taken.items():
            self._tc_row(pc)[lanes] += count

    def _settle_segments(self, lanes) -> None:
        """Flush lanes whose countdown expired on a group's final instruction.

        The straight-line loop flushes due lanes after every *completed*
        instruction; when a group dissolves on the instruction that emptied a
        countdown (a split branch, a divergent jalr, the final ret), that
        flush is still owed.  Faulting lanes are never settled — the scalar
        machine's faulting instruction doesn't reach its countdown either.
        """
        if not lanes.size:
            return
        due = lanes[self._seg_left[lanes] == 0]
        if due.size:
            self._flush_lanes(due)
            self._seg_left[due] = self.segment_size

    def _flush_lanes(self, lanes) -> None:
        """Per-segment paging flush for the given lanes (cf. _flush_segment)."""
        if not lanes.size:
            return
        page_in = self._page_in
        page_out = self._page_out
        for _, seg_read, seg_written, ever_read, ever_written \
                in self._pstats.values():
            read = seg_read[lanes]
            written = seg_written[lanes]
            touched = read | written
            if not touched.any():
                continue
            page_in[lanes] += touched
            page_out[lanes] += written
            ever_read[lanes] |= read
            ever_written[lanes] |= written
            seg_read[lanes] = False
            seg_written[lanes] = False

    def _enqueue(self, pc: int, lanes) -> None:
        if not lanes.size:
            return
        existing = self._buckets.get(pc)
        self._buckets[pc] = (lanes if existing is None
                             else np.concatenate((existing, lanes)))

    # -- memory (multi-page slow path) ----------------------------------------
    def _access_multi(self, rows, addresses, pages, reg, idx, is_store) -> None:
        """Load/store for a group whose lanes hit different pages."""
        columns = (addresses >> 2) & (_WORDS_PER_PAGE - 1)
        if is_store:
            values = self._regs[reg][idx]
        else:
            values = np.zeros(len(addresses), np.uint32)
        for page_num in np.unique(pages):
            mask = pages == page_num
            group = rows[mask]
            page_num = int(page_num)
            stats = self._page_stats(page_num)
            stats[0][group] += 1
            page = self._page(page_num)
            if is_store:
                stats[2][group] = True
                page[group, columns[mask]] = values[mask]
            else:
                stats[1][group] = True
                values[mask] = page[group, columns[mask]]
        if not is_store and reg:
            self._regs[reg][idx] = values

    # -- host calls ------------------------------------------------------------
    def _ecall_group(self, rows, idx):
        """Per-lane host-call dispatch (scalar: host calls are rare and
        side-effectful).  Returns (results, ok mask, None) on full success,
        or (results, ok mask, [(lane, error), ...]) when some lanes faulted."""
        regs = self._regs
        ids = regs[17][idx]                                  # a7
        a0 = regs[10][idx]
        a1 = regs[11][idx]
        a2 = regs[12][idx]
        a3 = regs[13][idx]
        count = len(ids)
        results = np.zeros(count, np.uint32)
        ok = np.ones(count, bool)
        errors = []
        for i in range(count):
            lane = int(rows[i])
            call_id = int(ids[i])
            name = HOST_CALL_NAMES.get(call_id)
            if name is None:
                ok[i] = False
                errors.append((lane, EmulationError(
                    f"unknown ecall id: {call_id}")))
                continue
            host_calls = self._host_calls[lane]
            host_calls[name] = host_calls.get(name, 0) + 1
            arity = HOST_CALL_ARITY.get(name, 1)
            arguments = [int(a0[i]), int(a1[i]), int(a2[i]), int(a3[i])][:arity]
            try:
                results[i] = interpret_host_call(
                    name, arguments, _LaneHost(self, lane)) & WORD_MASK
            except Exception as exc:
                ok[i] = False
                errors.append((lane, exc))
        return results, ok, (errors if errors else None)

    # -- retirement -------------------------------------------------------------
    def _retire_lanes(self, lanes) -> None:
        """Fold and finalize normally-halted lanes (mirrors Machine.run)."""
        regs = self._regs
        for lane in lanes.tolist():
            stats = self._fold_lane(lane)
            stats.return_value = to_signed(int(regs[10, lane]))
            stats.output = list(self._outputs[lane])
            self._stats[lane] = stats
        # The final flush counts the open partial segment's paging events,
        # exactly like the scalar machine's halt-time _flush_segment.
        self._flush_lanes(lanes)

    def _fault_lanes(self, lanes, error: BaseException) -> None:
        """Record a fault: partial folded stats, no final segment flush."""
        for lane in lanes.tolist():
            self._errors[lane] = error
            self._stats[lane] = self._fold_lane(lane)

    def _fold_lane(self, lane: int) -> TraceStats:
        """One lane's column counters folded into a TraceStats (cf. _fold_stats)."""
        decoded = self.decoded
        code = decoded.code
        opcodes = decoded.opcodes
        classes = decoded.classes
        column = self._ec[:, lane]
        stats = TraceStats()
        opcode_counts: dict = {}
        class_counts: dict = {}
        instructions = loads = stores = calls = 0
        taken = not_taken = 0
        for pc in np.nonzero(column)[0].tolist():
            count = int(column[pc])
            instructions += count
            opcode = opcodes[pc]
            opcode_counts[opcode] = opcode_counts.get(opcode, 0) + count
            cls = classes[pc]
            class_counts[cls] = class_counts.get(cls, 0) + count
            k = code[pc][0]
            if k == K_LW:
                loads += count
            elif k == K_SW:
                stores += count
            elif k == K_CALL:
                calls += count
            elif k == K_J:
                taken += count
            elif k in CONDITIONAL_KINDS:
                row = self._tc.get(pc)
                branch_taken = int(row[lane]) if row is not None else 0
                taken += branch_taken
                not_taken += count - branch_taken
        stats.instructions = instructions
        stats.opcode_counts = opcode_counts
        stats.class_counts = class_counts
        stats.loads = loads
        stats.stores = stores
        stats.calls = calls
        stats.branches_taken = taken
        stats.branches_not_taken = not_taken
        stats.host_calls = self._host_calls[lane]
        pages_read = set()
        pages_written = set()
        access_counts: dict = {}
        for page_num, (counts, seg_read, seg_written, ever_read,
                       ever_written) in self._pstats.items():
            # Pages in the still-open segment belong to the whole-run sets
            # too, as in the scalar fold.
            if ever_read[lane] or seg_read[lane]:
                pages_read.add(page_num)
            if ever_written[lane] or seg_written[lane]:
                pages_written.add(page_num)
            count = int(counts[lane])
            if count:
                access_counts[page_num] = count
        stats.pages_read = pages_read
        stats.pages_written = pages_written
        stats.page_access_counts = access_counts
        return stats

    # -- introspection -----------------------------------------------------------
    def lane_memory_words(self, lane: int) -> dict:
        """One lane's memory as a word-address dict of its nonzero words."""
        words: dict = {}
        for page_num, page in self._pages.items():
            row = page[lane]
            base = page_num << _PAGE_SHIFT
            for slot in np.nonzero(row)[0].tolist():
                words[base + (slot << 2)] = int(row[slot])
        return words

    def lane_memory_matches(self, lane: int, memory: dict) -> bool:
        """True iff a lane's memory is value-equivalent to a scalar machine's.

        The scalar machine's dict may hold explicit zeros (and its
        ``globals_init`` keys verbatim) while the batched page table only
        distinguishes nonzero words, so equality is checked as value
        functions: every word readable from one side reads the same from the
        other, with absent words reading 0.
        """
        mine = self.lane_memory_words(lane)
        for address, value in memory.items():
            if mine.pop(address, 0) != (value & WORD_MASK):
                return False
        return not mine  # leftovers are nonzero words the scalar side lacks


def run_batched(program: AssemblyProgram, entry: str = "main",
                lane_args: Optional[Sequence[Optional[Sequence[int]]]] = None,
                num_lanes: Optional[int] = None,
                args: Optional[Sequence[int]] = None,
                max_instructions: int = 50_000_000,
                segment_size: int = 1 << 16,
                input_values: Optional[Sequence[int]] = None,
                lane_inputs: Optional[Sequence[Optional[Sequence[int]]]] = None,
                ) -> List[TraceStats]:
    """Convenience wrapper: run ``program`` across N lanes, one stats per lane.

    The lane count is taken from ``num_lanes``, or inferred from the length
    of ``lane_args`` / ``lane_inputs``.
    """
    if num_lanes is None:
        if lane_args is not None:
            num_lanes = len(lane_args)
        elif lane_inputs is not None:
            num_lanes = len(lane_inputs)
        else:
            raise ValueError("num_lanes is required without lane_args/lane_inputs")
    machine = BatchedMachine(program, num_lanes,
                             max_instructions=max_instructions,
                             segment_size=segment_size,
                             input_values=input_values, lane_inputs=lane_inputs)
    return machine.run(entry, args=args, lane_args=lane_args)
