"""The reference RV32IM interpreter (the original seed semantics).

This is the straightforward opcode-string interpreter the reproduction
shipped with: a dict-based register file, per-instruction ``classify()`` and
dict-counter updates, and re-dispatch on opcode strings every step.  The
production :class:`~repro.emulator.machine.Machine` replaced it with a
pre-decoded table-dispatch hot loop; this implementation is kept verbatim as
the executable specification the differential tests (and the emulator
benchmark) compare against.  Do not optimize it — its value is that it is
obviously faithful to the original step semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..backend.isa import AssemblyProgram, Label, MachineInstr, classify
from ..backend.lowering import STACK_TOP
from ..zkvm.precompiles import HOST_CALL_ARITY, interpret_host_call
from .machine import EmulationError, HOST_CALL_NAMES, Observer
from .trace import PAGE_SIZE, TraceStats

WORD_MASK = 0xFFFFFFFF
RETURN_SENTINEL = 0xFFFF_FFF0


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass
class _FlatProgram:
    """All functions concatenated into one indexable instruction stream."""

    instructions: list
    labels: dict
    entries: dict

    @classmethod
    def build(cls, program: AssemblyProgram) -> "_FlatProgram":
        instructions: list[MachineInstr] = []
        labels: dict[str, int] = {}
        entries: dict[str, int] = {}
        for name, asm in program.functions.items():
            entries[name] = len(instructions)
            for item in asm.body:
                if isinstance(item, Label):
                    labels[item.name] = len(instructions)
                else:
                    instructions.append(item)
        return cls(instructions, labels, entries)


class ReferenceMachine:
    """A single-hart RV32IM machine with a flat word-addressed memory.

    Interprets one :class:`MachineInstr` at a time, exactly as the seed
    emulator did.  API-compatible with :class:`~repro.emulator.machine.Machine`
    for everything the harness uses (``run``, ``stats``, ``output``,
    ``page_in_events`` / ``page_out_events``, the host-call memory interface).
    """

    def __init__(self, program: AssemblyProgram, max_instructions: int = 50_000_000,
                 observers: Iterable[Observer] = (), segment_size: int = 1 << 16,
                 input_values: Optional[list[int]] = None):
        self.program = program
        self.flat = _FlatProgram.build(program)
        self.max_instructions = max_instructions
        self.observers = list(observers)
        self.segment_size = segment_size
        self.input_values = input_values
        self._ran = False
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        """(Re-)initialise all per-run mutable state.

        Called from ``__init__`` and again from ``run()`` when the machine is
        reused, so a second ``run()`` behaves exactly like a fresh machine
        instead of accumulating statistics, memory and segment countdowns.
        """
        self.registers: dict[str, int] = {name: 0 for name in
                                          ("zero", "ra", "sp", "gp", "tp")}
        self.memory: dict[int, int] = dict(self.program.globals_init)
        self.stats = TraceStats()
        self.output: list[int] = []
        # Per-segment paging bookkeeping.
        self.page_in_events = 0
        self.page_out_events = 0
        self._segment_pages_read: set[int] = set()
        self._segment_pages_written: set[int] = set()

    # -- memory interface shared with the host-call implementations ----------
    def _read_word(self, address: int) -> int:
        return self.memory.get(address & WORD_MASK & ~3, 0)

    def _write_word(self, address: int, value: int) -> None:
        self.memory[address & WORD_MASK & ~3] = value & WORD_MASK

    # -- register access -----------------------------------------------------
    def get(self, register: str) -> int:
        if register == "zero":
            return 0
        return self.registers.get(register, 0)

    def set(self, register: str, value: int) -> None:
        if register != "zero":
            self.registers[register] = value & WORD_MASK

    # -- main loop ------------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[list[int]] = None) -> TraceStats:
        if entry not in self.flat.entries:
            raise EmulationError(f"no such function: {entry}")
        if self._ran:
            self._reset_run_state()
        self._ran = True
        args = args or []
        for index, value in enumerate(args[:8]):
            self.set(f"a{index}", value)
        self.set("sp", STACK_TOP)
        self.set("ra", RETURN_SENTINEL)
        pc = self.flat.entries[entry]
        instructions = self.flat.instructions
        stats = self.stats

        while True:
            if pc == RETURN_SENTINEL:
                break
            if pc < 0 or pc >= len(instructions):
                raise EmulationError(f"program counter out of range: {pc}")
            if stats.instructions >= self.max_instructions:
                raise EmulationError("instruction limit exceeded "
                                     f"({self.max_instructions})")
            instr = instructions[pc]
            pc = self._step(instr, pc)
            # Segment bookkeeping for the paging model.
            if stats.instructions % self.segment_size == 0:
                self._flush_segment()

        self._flush_segment()
        stats.return_value = _to_signed(self.get("a0"))
        stats.output = list(self.output)
        return stats

    def _flush_segment(self) -> None:
        self.page_in_events += len(self._segment_pages_read | self._segment_pages_written)
        self.page_out_events += len(self._segment_pages_written)
        self._segment_pages_read.clear()
        self._segment_pages_written.clear()

    def _touch_page(self, address: int, is_write: bool) -> None:
        page = address // PAGE_SIZE
        if is_write:
            self._segment_pages_written.add(page)
        else:
            self._segment_pages_read.add(page)

    # -- single instruction ----------------------------------------------------
    def _step(self, instr: MachineInstr, pc: int) -> int:
        opcode = instr.opcode
        ops = instr.operands
        stats = self.stats
        instruction_class = classify(opcode)
        stats.record_instruction(opcode, instruction_class)

        memory_address: Optional[int] = None
        is_store = False
        branch_taken: Optional[bool] = None
        dest: Optional[str] = None
        sources: list[str] = []
        next_pc = pc + 1

        get, set_ = self.get, self.set

        if opcode in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
                      "slt", "sltu", "mul", "div", "divu", "rem", "remu"):
            dest, rs1, rs2 = ops
            sources = [rs1, rs2]
            set_(dest, _ALU_OPS[opcode](get(rs1), get(rs2)))
        elif opcode in ("addi", "andi", "ori", "xori", "slli", "srli", "srai",
                        "slti", "sltiu"):
            dest, rs1, imm = ops
            sources = [rs1]
            set_(dest, _ALU_IMM_OPS[opcode](get(rs1), imm))
        elif opcode == "li":
            dest = ops[0]
            set_(dest, ops[1] & WORD_MASK)
        elif opcode == "lui":
            dest = ops[0]
            set_(dest, (ops[1] << 12) & WORD_MASK)
        elif opcode == "mv":
            dest, rs1 = ops
            sources = [rs1]
            set_(dest, get(rs1))
        elif opcode == "lw":
            dest, offset, base = ops
            sources = [base]
            memory_address = (get(base) + offset) & WORD_MASK
            set_(dest, self._read_word(memory_address))
            stats.record_memory(memory_address, False)
            self._touch_page(memory_address, False)
        elif opcode == "sw":
            value_reg, offset, base = ops
            sources = [value_reg, base]
            memory_address = (get(base) + offset) & WORD_MASK
            self._write_word(memory_address, get(value_reg))
            stats.record_memory(memory_address, True)
            self._touch_page(memory_address, True)
            is_store = True
        elif opcode in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            rs1, rs2, label = ops
            sources = [rs1, rs2]
            taken = _BRANCH_OPS[opcode](get(rs1), get(rs2))
            branch_taken = taken
            if taken:
                stats.branches_taken += 1
                next_pc = self._label_target(label)
            else:
                stats.branches_not_taken += 1
        elif opcode in ("beqz", "bnez"):
            rs1, label = ops
            sources = [rs1]
            value = get(rs1)
            taken = (value == 0) if opcode == "beqz" else (value != 0)
            branch_taken = taken
            if taken:
                stats.branches_taken += 1
                next_pc = self._label_target(label)
            else:
                stats.branches_not_taken += 1
        elif opcode == "j":
            branch_taken = True
            stats.branches_taken += 1
            next_pc = self._label_target(ops[0])
        elif opcode == "call":
            stats.calls += 1
            target = ops[0]
            if target not in self.flat.entries:
                raise EmulationError(f"call to unknown function: {target}")
            set_("ra", pc + 1)
            dest = "ra"
            next_pc = self.flat.entries[target]
        elif opcode == "jalr":
            dest, base, offset = ops
            sources = [base]
            target = (get(base) + offset) & WORD_MASK
            set_(dest, pc + 1)
            next_pc = target
        elif opcode == "jal":
            dest, label = ops
            set_(dest, pc + 1)
            next_pc = self._label_target(label)
        elif opcode == "ecall":
            self._handle_ecall()
            dest = "a0"
            sources = ["a0", "a1", "a2", "a7"]
        elif opcode == "ebreak":
            raise EmulationError("guest executed ebreak (unreachable code)")
        elif opcode == "nop":
            pass
        else:
            raise EmulationError(f"unknown opcode: {opcode}")

        for observer in self.observers:
            observer.on_instruction(opcode, instruction_class, dest, sources,
                                    memory_address, is_store, branch_taken, pc)
        return next_pc

    def _label_target(self, label: str) -> int:
        target = self.flat.labels.get(label)
        if target is None:
            raise EmulationError(f"unknown label: {label}")
        return target

    def _handle_ecall(self) -> None:
        call_id = self.get("a7")
        name = HOST_CALL_NAMES.get(call_id)
        if name is None:
            raise EmulationError(f"unknown ecall id: {call_id}")
        self.stats.host_calls[name] = self.stats.host_calls.get(name, 0) + 1
        args = [_to_signed(self.get(f"a{i}")) & WORD_MASK for i in range(4)]
        arity = HOST_CALL_ARITY.get(name, 1)
        result = interpret_host_call(name, args[:arity], self)
        self.set("a0", result)


# -- scalar helpers (the seed's tables, kept verbatim and independent of the
# decoder's shared implementations so this oracle cannot drift with them) ------
def _div(a: int, b: int) -> int:
    sa, sb = _to_signed(a), _to_signed(b)
    if sb == 0:
        return WORD_MASK
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & WORD_MASK


def _rem(a: int, b: int) -> int:
    sa, sb = _to_signed(a), _to_signed(b)
    if sb == 0:
        return a
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return remainder & WORD_MASK


_ALU_OPS = {
    "add": lambda a, b: (a + b) & WORD_MASK,
    "sub": lambda a, b: (a - b) & WORD_MASK,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & WORD_MASK,
    "srl": lambda a, b: (a >> (b & 31)) & WORD_MASK,
    "sra": lambda a, b: (_to_signed(a) >> (b & 31)) & WORD_MASK,
    "slt": lambda a, b: int(_to_signed(a) < _to_signed(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: (a * b) & WORD_MASK,
    "div": _div,
    "divu": lambda a, b: (a // b) & WORD_MASK if b else WORD_MASK,
    "rem": _rem,
    "remu": lambda a, b: (a % b) & WORD_MASK if b else a,
}

_ALU_IMM_OPS = {
    "addi": lambda a, imm: (a + imm) & WORD_MASK,
    "andi": lambda a, imm: a & (imm & WORD_MASK),
    "ori": lambda a, imm: a | (imm & WORD_MASK),
    "xori": lambda a, imm: a ^ (imm & WORD_MASK),
    "slli": lambda a, imm: (a << (imm & 31)) & WORD_MASK,
    "srli": lambda a, imm: (a >> (imm & 31)) & WORD_MASK,
    "srai": lambda a, imm: (_to_signed(a) >> (imm & 31)) & WORD_MASK,
    "slti": lambda a, imm: int(_to_signed(a) < imm),
    "sltiu": lambda a, imm: int(a < (imm & WORD_MASK)),
}

_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _to_signed(a) < _to_signed(b),
    "bge": lambda a, b: _to_signed(a) >= _to_signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


def run_program_reference(program: AssemblyProgram, entry: str = "main",
                          args: Optional[list[int]] = None,
                          observers: Iterable[Observer] = (),
                          max_instructions: int = 50_000_000,
                          input_values: Optional[list[int]] = None) -> TraceStats:
    """Execute ``program`` on the reference interpreter; return its trace."""
    machine = ReferenceMachine(program, max_instructions=max_instructions,
                               observers=observers, input_values=input_values)
    return machine.run(entry, args)
