"""RISC-V guest emulator: replays compiled guest programs and records the
execution trace statistics that the zkVM and CPU cost models consume.

Two interchangeable execution paths live here:

* :class:`Machine` — the production emulator: decode-once
  (:func:`decode_program`) and table dispatch over pre-decoded tuples;
* :class:`ReferenceMachine` — the original per-instruction interpreter, kept
  as the executable specification for differential testing;
* :class:`TranslatedMachine` — the superblock-translating engine: hot
  decoded regions compiled once into specialized Python closures, with the
  interpreter loop as the fallback for cold/irregular code and observers.
"""

from .batched import BatchedMachine, numpy_available, run_batched
from .decoder import DecodedProgram, decode_program
from .machine import EmulationError, Machine, run_program
from .reference import ReferenceMachine, run_program_reference
from .translate import (
    TranslatedMachine, TranslationCache, run_program_translated,
    translation_cache,
)
from .trace import PAGE_SIZE, TraceStats

__all__ = ["BatchedMachine", "DecodedProgram", "decode_program",
           "EmulationError", "Machine", "ReferenceMachine",
           "TranslatedMachine", "TranslationCache", "numpy_available",
           "run_batched", "run_program", "run_program_reference",
           "run_program_translated", "translation_cache",
           "PAGE_SIZE", "TraceStats"]
