"""RISC-V guest emulator: replays compiled guest programs and records the
execution trace statistics that the zkVM and CPU cost models consume."""

from .machine import EmulationError, Machine, run_program
from .trace import PAGE_SIZE, TraceStats

__all__ = ["EmulationError", "Machine", "run_program", "PAGE_SIZE", "TraceStats"]
