"""Ahead-of-time superblock translation for single-stream guest execution.

The table-dispatch loop in :class:`~repro.emulator.machine.Machine` pays the
full decode-tuple dance — list index, tuple unpack, a dispatch ladder, two
counter bumps, a segment countdown — for every dynamic instruction.  This
module removes that per-instruction tax for straight-line code by compiling
decoded *superblocks* into specialized Python closures once per program:

* :func:`form_region` walks the decoded tuple stream from an entry pc and
  forms a single-entry straight-line region, extended across statically
  resolved fall-throughs and direct jumps (``j``/``call``/``jal``), with
  conditional branches becoming in-block *side exits* and ``jalr`` a dynamic
  terminal exit.  Regions end before anything irregular: ``ecall``, faulting
  ``K_BAD`` tuples, unresolved control transfers, a pc already in the region
  (a cycle), or the region length cap.
* :func:`compile_region` lowers the region to Python source — register slots
  resolved to function locals, immediates and branch targets baked in as
  literals, ALU/branch semantics inlined as expressions (signed compares use
  the ``x ^ 0x80000000`` order-preserving trick), memory operations inlined
  against the paged store — and ``exec``-compiles it into one closure.  The
  closure takes the machine's run state as arguments (so one compiled block
  serves every machine and run), bumps exactly one per-*exit* counter, and
  returns ``(executed_count << 32) | next_pc`` packed in a single int.
* :class:`TranslatedMachine` dispatches superblock-to-superblock through a
  :class:`TranslationCache` keyed by entry pc (cached on the shared
  :class:`~repro.emulator.decoder.DecodedProgram`, so the code cache is
  reused across machines and re-runs), checking the instruction limit and
  the per-segment countdown **once per block** against the region's maximum
  length.  Anything the block path cannot serve byte-for-byte — irregular
  instructions, a segment or limit boundary inside the block's reach, an
  attached observer — falls back to the interpreter ladder, which is kept
  verbatim from :class:`Machine` so fault behaviour, paging and counting are
  identical down to the partial trace a mid-run fault leaves behind.

Per-pc execution statistics are recovered losslessly at halt: every exit
knows the pcs its path executed (and the conditional branch it took, if
any), so :meth:`TranslatedMachine._fold_stats` expands the per-exit counters
into the same flat per-pc arrays :class:`Machine` folds — the resulting
:class:`~repro.emulator.trace.TraceStats`, page events, memory and fault
behaviour are required (and differentially tested) to be byte-for-byte
identical to the interpreter's.
"""

from __future__ import annotations

from typing import Optional

from .decoder import (
    DecodedProgram, K_ADD, K_ADDI, K_ALU_RI, K_ALU_RR, K_BAD, K_BEQZ, K_BNEZ,
    K_BR, K_CALL, K_ECALL, K_J, K_JAL, K_JALR, K_LI, K_LW, K_MV, K_NOP, K_SW,
    RETURN_SENTINEL, WORD_MASK,
)
from .machine import _PAGE_SHIFT, EmulationError, Machine

#: Region length cap: bounds compile time per block and keeps the once-per-
#: block segment/limit pre-check from starving on small segment sizes.  Long
#: enough that fully unrolled hash-round bodies stay in one block (splitting
#: pays a register reload/writeback at every seam).
MAX_REGION_LENGTH = 256

#: Straight-line kinds a superblock can contain (side effects fully known at
#: translation time).
_STRAIGHT_KINDS = frozenset({
    K_ADDI, K_ADD, K_ALU_RR, K_ALU_RI, K_LI, K_MV, K_LW, K_SW, K_NOP,
})

#: Conditional-branch kinds (in-block side exits).
_BRANCH_KINDS = frozenset({K_BR, K_BEQZ, K_BNEZ})

#: Inline expression templates for register-register ALU opcodes.  ``{a}`` /
#: ``{b}`` are the operand locals; opcodes missing here (div/divu/rem/remu)
#: call the decoder's bound implementation instead.
_RR_EXPR = {
    "add": "({a} + {b}) & 0xFFFFFFFF",
    "sub": "({a} - {b}) & 0xFFFFFFFF",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "sll": "({a} << ({b} & 31)) & 0xFFFFFFFF",
    "srl": "{a} >> ({b} & 31)",
    "sra": "(({a} - 0x100000000 if {a} > 0x7FFFFFFF else {a}) >> ({b} & 31))"
           " & 0xFFFFFFFF",
    "slt": "1 if ({a} ^ 0x80000000) < ({b} ^ 0x80000000) else 0",
    "sltu": "1 if {a} < {b} else 0",
    "mul": "({a} * {b}) & 0xFFFFFFFF",
}

#: Inline expression templates over the *prepared* immediate ``{i}`` (exactly
#: the value the decoder baked into the tuple — see ``_ALU_IMM_DECODED``).
_RI_EXPR = {
    "andi": "{a} & {i}",
    "ori": "{a} | {i}",
    "xori": "{a} ^ {i}",
    "slli": "({a} << {i}) & 0xFFFFFFFF",
    "srli": "{a} >> {i}",
    "srai": "(({a} - 0x100000000 if {a} > 0x7FFFFFFF else {a}) >> {i})"
            " & 0xFFFFFFFF",
    "slti": "1 if ({a} - 0x100000000 if {a} > 0x7FFFFFFF else {a}) < {i}"
            " else 0",
    "sltiu": "1 if {a} < {i} else 0",
}

#: Inline predicates for conditional branches.
_BR_EXPR = {
    "beq": "{a} == {b}",
    "bne": "{a} != {b}",
    "blt": "({a} ^ 0x80000000) < ({b} ^ 0x80000000)",
    "bge": "({a} ^ 0x80000000) >= ({b} ^ 0x80000000)",
    "bltu": "{a} < {b}",
    "bgeu": "{a} >= {b}",
}


class SuperblockExit:
    """One way out of a compiled superblock.

    ``pcs`` are the decoded-stream indices the exit's path executed (in
    order), so folding ``count`` into the per-pc statistics is exact;
    ``taken_pc`` names the conditional branch this exit takes, if any.
    """

    __slots__ = ("slot", "pcs", "taken_pc")

    def __init__(self, slot: int, pcs: tuple, taken_pc: Optional[int]):
        self.slot = slot
        self.pcs = pcs
        self.taken_pc = taken_pc


class Superblock:
    """A compiled region: the closure plus the dispatch metadata."""

    __slots__ = ("entry", "fn", "max_len", "exits", "source")

    def __init__(self, entry: int, fn, max_len: int, exits: list, source: str):
        self.entry = entry
        self.fn = fn
        self.max_len = max_len
        self.exits = exits
        self.source = source


class Region:
    """A formed (not yet compiled) straight-line region."""

    __slots__ = ("entry", "pcs", "instrs", "final_pc", "dynamic_exit")

    def __init__(self, entry: int):
        self.entry = entry
        #: Decoded-stream indices in execution order.
        self.pcs: list = []
        #: The decoded tuples at those indices.
        self.instrs: list = []
        #: Statically known continuation pc of the fall-through exit
        #: (meaningless when ``dynamic_exit`` — the jalr computes it).
        self.final_pc: int = entry
        #: True when the region ends in a ``jalr`` (computed target).
        self.dynamic_exit: bool = False

    def __len__(self) -> int:
        return len(self.pcs)


def form_region(decoded: DecodedProgram, entry: int,
                max_length: int = MAX_REGION_LENGTH) -> Region:
    """Walk the decoded stream from ``entry`` and form a superblock region.

    The walk follows fall-throughs and statically resolved direct jumps
    (``j``/``call``/``jal``), treats resolved conditional branches as side
    exits (continuing on the not-taken path), and stops — *excluding* the
    stopping instruction — at anything irregular: ``ecall``, ``K_BAD``,
    unresolved targets, a revisited pc, or the length cap.  A ``jalr`` is
    included as the region's dynamic terminal exit.  The returned region may
    be empty (entry instruction itself is irregular).
    """
    code = decoded.code
    size = len(code)
    region = Region(entry)
    seen = set()
    pc = entry
    while len(region.pcs) < max_length and 0 <= pc < size and pc not in seen:
        ins = code[pc]
        k = ins[0]
        if k in _STRAIGHT_KINDS:
            seen.add(pc)
            region.pcs.append(pc)
            region.instrs.append(ins)
            pc += 1
        elif k in _BRANCH_KINDS:
            target = ins[3] if k == K_BR else ins[2]
            if target < 0:          # unresolved label: faults when taken
                break
            seen.add(pc)
            region.pcs.append(pc)
            region.instrs.append(ins)
            pc += 1
        elif k == K_J:
            if ins[1] < 0:
                break
            seen.add(pc)
            region.pcs.append(pc)
            region.instrs.append(ins)
            pc = ins[1]
        elif k == K_CALL:
            if ins[1] < 0:
                break
            seen.add(pc)
            region.pcs.append(pc)
            region.instrs.append(ins)
            pc = ins[1]
        elif k == K_JAL:
            if ins[2] < 0:
                break
            seen.add(pc)
            region.pcs.append(pc)
            region.instrs.append(ins)
            pc = ins[2]
        elif k == K_JALR:
            region.pcs.append(pc)
            region.instrs.append(ins)
            region.dynamic_exit = True
            break
        else:                        # ecall / bad / unknown: interpreter-only
            break
    region.final_pc = pc
    return region


def _instr_effects(ins) -> tuple:
    """``(reads, writes)`` register-slot tuples of one decoded tuple.

    Mirrors exactly what the interpreter ladder touches: an instruction whose
    destination is slot 0 (``zero``) is skipped entirely for ALU/LI/MV kinds,
    while loads still compute their address (and page bookkeeping) first.
    """
    k = ins[0]
    if k in (K_ADDI, K_ALU_RI, K_MV):
        return ((ins[2],), (ins[1],)) if ins[1] else ((), ())
    if k in (K_ADD, K_ALU_RR):
        return ((ins[2], ins[3]), (ins[1],)) if ins[1] else ((), ())
    if k == K_LI:
        return ((), (ins[1],))
    if k == K_LW:
        return ((ins[3],), (ins[1],) if ins[1] else ())
    if k == K_SW:
        return ((ins[1], ins[3]), ())
    if k == K_BR:
        return ((ins[1], ins[2]), ())
    if k in (K_BEQZ, K_BNEZ):
        return ((ins[1],), ())
    if k == K_CALL:
        return ((), (1,))
    if k == K_JAL:
        return ((), (ins[1],) if ins[1] else ())
    if k == K_JALR:
        return ((ins[2],), (ins[1],) if ins[1] else ())
    return ((), ())                                  # K_J, K_NOP


def compile_region(decoded: DecodedProgram, region: Region,
                   first_exit_slot: int,
                   masked_memory: bool = False) -> Superblock:
    """Lower ``region`` to Python source and ``exec``-compile the closure.

    Exit-counter slots are allocated contiguously from ``first_exit_slot``
    (the cache passes its current total), so one flat per-run counter array
    covers every block.

    Two shapes are generated.  *Prefix form* is a straight run of statements
    whose exits return packed constants.  *Loop form* is chosen when some
    exit re-enters the region at its own entry pc (a self back-edge — the
    common shape of every compiled loop): the body is wrapped in ``while
    True`` and back-edges ``continue`` in place of returning, with register
    locals staying live across iterations, as long as the ``fuel`` argument
    (min of segment room and instruction-limit room, pre-checked to be at
    least ``max_len`` by the dispatcher) still admits a worst-case iteration.
    In loop form every exit writes back the *full* written set — an early
    side exit on iteration N must flush registers that only later positions
    wrote on iteration N-1 — so all written slots are also pre-loaded, which
    keeps them bound on a first-iteration exit.
    """
    opcodes = decoded.opcodes
    entry = region.entry
    length = len(region)
    namespace: dict = {}
    exits: list = []
    needs_memget = False
    needs_pacget = False

    # Pre-pass: slots read before any write (these need a header load) and
    # the full ordered written set.
    reads_first: list = []
    written_full: list = []
    written_set: set = set()
    for ins in region.instrs:
        reads, writes = _instr_effects(ins)
        for slot in reads:
            # Slot 0 (``zero``) is never loaded: reads fold to the literal 0.
            if slot and slot not in written_set and slot not in reads_first:
                reads_first.append(slot)
        for slot in writes:
            if slot not in written_set:
                written_set.add(slot)
                written_full.append(slot)

    back_targets = set()
    for ins in region.instrs:
        k = ins[0]
        if k in _BRANCH_KINDS:
            back_targets.add(ins[3] if k == K_BR else ins[2])
    loop_form = (entry in back_targets
                 or (not region.dynamic_exit and region.final_pc == entry))
    bi = "        " if loop_form else "    "         # body indent
    lines: list = []           # function body (after register loads)
    loads: list = []           # `rN = regs[N]` header lines
    loaded: set = set()
    written: set = set()       # written so far (prefix-form writebacks)
    if loop_form:
        loaded = set(reads_first) | written_set
        for slot in reads_first + written_full:
            loads.append(f"    r{slot} = regs[{slot}]")

    # Redundancy elimination for the memory-op bookkeeping (the dominant
    # per-instruction cost).  Each access eagerly emits only its word-aligned
    # address local ``w = (base + off) & 0xFFFFFFFC`` (reused for repeated
    # (base-register *version*, offset) pairs; the page is just ``w >> 10``)
    # plus the load/store itself.  The page bookkeeping — per-page access
    # counts and the per-segment read/write page sets — is deferred to the
    # next *flush point*: any point control can leave the straight-line run
    # (a side exit's accesses-so-far must count even when the fall-through is
    # not taken; nothing can fault in between, and a block never straddles a
    # segment flush, so deferral is invisible).  At a flush, accesses are
    # grouped by base-register version; a group spanning several offsets
    # almost always lands on one page (stack frames, small array windows), so
    # the fast path is a single lowest-page == highest-page check (pages are
    # monotone in the offset, wraparound falls through) followed by one
    # merged count bump and one set add per kind, with the exact per-offset
    # bookkeeping as the rare else-branch.
    reg_gen: dict = {}         # slot -> version (bumped on every write)
    addr_cache: dict = {}      # (slot, version, offset) -> word-address local
    addr_seq = 0
    page_seq = 0
    #: (slot, version) -> {offset: [w local, access count, reads?, writes?]}
    mem_pending: dict = {}
    #: Store-to-load forwarding / redundant-load elimination.  Keyed like the
    #: address cache by (base slot, base version, byte offset); the value is
    #: ``(expression, version)`` — a register local (validity checked lazily
    #: against its current version) or the literal "0".  Two accesses with
    #: the same base version are statically distinct words iff their offsets
    #: differ by >= 4, so a store keeps exactly those entries and
    #: conservatively drops everything else (a different base version may
    #: alias anything).  Page bookkeeping is unaffected: forwarded loads
    #: still record their access.
    value_cache: dict = {}

    def read(slot: int) -> str:
        if slot == 0:
            # ``zero`` is architecturally 0 (no handler ever writes slot 0),
            # so reads fold to a literal and comparisons against it fold at
            # Python compile time.
            return "0"
        name = f"r{slot}"
        if slot not in loaded and slot not in written:
            loaded.add(slot)
            loads.append(f"    {name} = regs[{slot}]")
        return name

    def write(slot: int) -> str:
        written.add(slot)
        reg_gen[slot] = reg_gen.get(slot, 0) + 1
        return f"r{slot}"

    def addr(base_slot: int, offset: int) -> str:
        nonlocal addr_seq
        base = read(base_slot)
        key = (base_slot, reg_gen.get(base_slot, 0), offset)
        name = addr_cache.get(key)
        if name is None:
            name = f"w{addr_seq}_"
            addr_seq += 1
            if offset:
                lines.append(f"{bi}{name} = ({base} + {offset}) & 0xFFFFFFFC")
            else:
                lines.append(f"{bi}{name} = {base} & 0xFFFFFFFC")
            addr_cache[key] = name
        return name

    def access(base_slot: int, offset: int, is_store: bool) -> str:
        word = addr(base_slot, offset)
        group = mem_pending.setdefault(
            (base_slot, reg_gen.get(base_slot, 0)), {})
        record = group.get(offset)
        if record is None:
            record = group[offset] = [word, 0, False, False]
        record[1] += 1
        record[2 + is_store] = True
        return word

    def value_current(entry) -> bool:
        expression, version = entry
        return version is None or \
            reg_gen.get(int(expression[1:]), 0) == version

    def note_store(base_slot: int, offset: int, value: str) -> None:
        base_key = (base_slot, reg_gen.get(base_slot, 0))
        for key in list(value_cache):
            if key[:2] != base_key or abs(key[2] - offset) < 4:
                del value_cache[key]
        value_cache[base_key + (offset,)] = (
            value, None if value == "0" else reg_gen.get(int(value[1:]), 0))

    def emit_page(indent: str, word: str, count: int,
                  has_read: bool, has_write: bool) -> None:
        nonlocal page_seq
        page = f"p{page_seq}_"
        page_seq += 1
        lines.append(f"{indent}{page} = {word} >> {_PAGE_SHIFT}")
        lines.append(f"{indent}pac[{page}] = pg({page}, 0) + {count}")
        if has_read:
            lines.append(f"{indent}srd({page})")
        if has_write:
            lines.append(f"{indent}swr({page})")

    def flush_mem() -> None:
        nonlocal needs_pacget, page_seq
        for group in mem_pending.values():
            needs_pacget = True
            items = sorted(group.items())
            if len(items) == 1:
                word, count, has_read, has_write = items[0][1]
                emit_page(bi, word, count, has_read, has_write)
                continue
            total = sum(record[1] for _, record in items)
            any_read = any(record[2] for _, record in items)
            any_write = any(record[3] for _, record in items)
            low, high = f"p{page_seq}_", f"p{page_seq + 1}_"
            page_seq += 2
            lines.append(f"{bi}{low} = {items[0][1][0]} >> {_PAGE_SHIFT}")
            lines.append(f"{bi}{high} = {items[-1][1][0]} >> {_PAGE_SHIFT}")
            lines.append(f"{bi}if {low} == {high}:")
            lines.append(f"{bi}    pac[{low}] = pg({low}, 0) + {total}")
            if any_read:
                lines.append(f"{bi}    srd({low})")
            if any_write:
                lines.append(f"{bi}    swr({low})")
            lines.append(f"{bi}else:")
            for _, (word, count, has_read, has_write) in items:
                emit_page(bi + "    ", word, count, has_read, has_write)
        mem_pending.clear()

    def emit_exit(indent: str, count: int, pcs: tuple,
                  taken_pc: Optional[int], target: str,
                  backedge: bool = False) -> None:
        slot = first_exit_slot + len(exits)
        exits.append(SuperblockExit(slot, pcs, taken_pc))
        lines.append(f"{indent}xc[{slot}] += 1")
        if loop_form and backedge:
            lines.append(f"{indent}base += {count}")
            lines.append(f"{indent}if fuel - base >= {length}:")
            lines.append(f"{indent}    continue")
            for reg_slot in written_full:
                lines.append(f"{indent}regs[{reg_slot}] = r{reg_slot}")
            lines.append(f"{indent}return (base << 32) | {entry}")
            return
        if loop_form:
            for reg_slot in written_full:
                lines.append(f"{indent}regs[{reg_slot}] = r{reg_slot}")
            lines.append(f"{indent}return ((base + {count}) << 32) | {target}")
            return
        for reg_slot in sorted(written):
            lines.append(f"{indent}regs[{reg_slot}] = r{reg_slot}")
        if target.isdigit():     # static continuation: fold into one literal
            lines.append(f"{indent}return {(count << 32) | int(target)}")
        else:
            lines.append(f"{indent}return {count << 32} | {target}")

    for position, (pc, ins) in enumerate(zip(region.pcs, region.instrs)):
        k = ins[0]
        if k == K_ADDI:
            if ins[1]:
                a = read(ins[2])
                lines.append(f"{bi}{write(ins[1])} = "
                             f"({a} + {ins[3]}) & 0xFFFFFFFF")
        elif k == K_ADD:
            if ins[1]:
                a, b = read(ins[2]), read(ins[3])
                lines.append(f"{bi}{write(ins[1])} = "
                             f"({a} + {b}) & 0xFFFFFFFF")
        elif k == K_ALU_RR:
            if ins[1]:
                a, b = read(ins[2]), read(ins[3])
                template = _RR_EXPR.get(opcodes[pc])
                if template is None:   # div/divu/rem/remu: bound callable
                    name = f"op{pc}"
                    namespace[name] = ins[4]
                    expression = f"{name}({a}, {b})"
                else:
                    expression = template.format(a=a, b=b)
                lines.append(f"{bi}{write(ins[1])} = {expression}")
        elif k == K_ALU_RI:
            if ins[1]:
                a = read(ins[2])
                template = _RI_EXPR[opcodes[pc]]
                lines.append(f"{bi}{write(ins[1])} = "
                             f"{template.format(a=a, i=repr(ins[3]))}")
        elif k == K_LI:
            if ins[1]:
                lines.append(f"{bi}{write(ins[1])} = {ins[2]}")
        elif k == K_MV:
            if ins[1]:
                a = read(ins[2])
                lines.append(f"{bi}{write(ins[1])} = {a}")
        elif k == K_LW:
            word = access(ins[3], ins[2], is_store=False)
            if ins[1]:
                key = (ins[3], reg_gen.get(ins[3], 0), ins[2])
                cached = value_cache.get(key)
                if cached is not None and value_current(cached):
                    destination = write(ins[1])
                    if cached[0] != destination:
                        lines.append(f"{bi}{destination} = {cached[0]}")
                else:
                    needs_memget = True
                    # Stores and host-call writes always mask, so when the
                    # initial globals are masked too the load mask is
                    # redundant.
                    mask = "" if masked_memory else " & 0xFFFFFFFF"
                    destination = write(ins[1])
                    lines.append(f"{bi}{destination} = mg({word}, 0){mask}")
                value_cache[key] = (destination, reg_gen.get(ins[1], 0))
        elif k == K_SW:
            value = read(ins[1])
            word = access(ins[3], ins[2], is_store=True)
            lines.append(f"{bi}memory[{word}] = {value}")
            note_store(ins[3], ins[2], value)
        elif k == K_NOP:
            pass
        elif k in _BRANCH_KINDS:
            if k == K_BR:
                a, b = read(ins[1]), read(ins[2])
                condition = _BR_EXPR[opcodes[pc]].format(a=a, b=b)
                target = ins[3]
            else:
                a = read(ins[1])
                condition = (f"{a} == 0" if k == K_BEQZ else f"{a} != 0")
                target = ins[2]
            flush_mem()
            lines.append(f"{bi}if {condition}:")
            emit_exit(bi + "    ", position + 1,
                      tuple(region.pcs[:position + 1]), pc,
                      str(target), backedge=(target == entry))
        elif k == K_J:
            pass                      # taken count folds from the exec count
        elif k == K_CALL:
            lines.append(f"{bi}{write(1)} = {ins[2]}")       # ra = link
        elif k == K_JAL:
            if ins[1]:
                lines.append(f"{bi}{write(ins[1])} = {ins[3]}")
        elif k == K_JALR:
            base = read(ins[2])
            flush_mem()
            if ins[3] == 0:
                # Register locals are always masked, so a zero-offset target
                # (the universal function-return shape) needs no arithmetic.
                lines.append(f"{bi}t_ = {base}")
            else:
                lines.append(f"{bi}t_ = ({base} + {ins[3]}) & 0xFFFFFFFF")
            if ins[1]:
                lines.append(f"{bi}{write(ins[1])} = {ins[4]}")
            emit_exit(bi, position + 1, tuple(region.pcs), None, "t_")
        else:  # pragma: no cover - form_region admits only the kinds above
            raise EmulationError(f"untranslatable kind in region: {k}")

    if not region.dynamic_exit:
        # Fall-through exit: continuation pc is statically known.
        flush_mem()
        emit_exit(bi, length, tuple(region.pcs), None,
                  str(region.final_pc),
                  backedge=(region.final_pc == entry))

    header = ["def _superblock(regs, memory, pac, srd, swr, xc, fuel):"]
    if needs_memget:
        header.append("    mg = memory.get")
    if needs_pacget:
        header.append("    pg = pac.get")
    body = list(loads)
    if loop_form:
        body.append("    base = 0")
        body.append("    while True:")
    source = "\n".join(header + body + lines) + "\n"
    code_object = compile(source, f"<superblock@{entry}>", "exec")
    exec(code_object, namespace)       # noqa: S102 - our own generated source
    return Superblock(entry, namespace["_superblock"], length, exits, source)


class TranslationCache:
    """The per-program code cache: entry pc -> compiled superblock.

    ``blocks[pc]`` is ``None`` (never dispatched), ``False`` (irregular — the
    entry instruction cannot head a superblock), or a :class:`Superblock`.
    The cache lives on the shared :class:`DecodedProgram` (see
    :func:`translation_cache`), so every machine and every run of the same
    program reuses one set of compiled closures; exit-counter *slots* are
    allocated here so each run's flat counter array lines up.
    """

    def __init__(self, decoded: DecodedProgram, masked_memory: bool = False):
        self.decoded = decoded
        self.blocks: list = [None] * len(decoded.code)
        # Flat dispatch mirrors of ``blocks``: the hot loop reads one list
        # entry instead of two attribute lookups per dispatched block.
        self.fns: list = [None] * len(decoded.code)
        self.lens: list = [0] * len(decoded.code)
        self.exits: list = []
        #: True when every value memory can ever hold is already 32-bit
        #: masked (initial globals checked at construction; stores and
        #: host-call writes always mask) — lets loads skip their mask.
        self.masked_memory = masked_memory

    @property
    def compiled_blocks(self) -> int:
        return sum(1 for block in self.blocks if block)

    def block_at(self, pc: int):
        """The superblock entered at ``pc``, compiling it on first dispatch.

        Returns ``False`` for irregular entries (the caller falls back to the
        interpreter ladder for that instruction).
        """
        block = self.blocks[pc]
        if block is None:
            region = form_region(self.decoded, pc)
            if len(region) == 0:
                block = False
                self.fns[pc] = False
            else:
                block = compile_region(self.decoded, region, len(self.exits),
                                       self.masked_memory)
                self.exits.extend(block.exits)
                self.fns[pc] = block.fn
                self.lens[pc] = block.max_len
            self.blocks[pc] = block
        return block


def translation_cache(decoded: DecodedProgram,
                      program=None) -> TranslationCache:
    """The (shared) translation cache of a decoded program.

    Cached on the ``DecodedProgram`` the same way the decoded stream is
    cached on the ``AssemblyProgram``: one code cache per program per
    process, reused across machines and runs.  ``program`` (when given)
    enables the masked-memory load optimization if its initial globals are
    all 32-bit masked; a decoded program maps to exactly one
    ``AssemblyProgram``, so the flag is stable across machines.
    """
    cache = getattr(decoded, "_translation_cache", None)
    if cache is None:
        masked = program is not None and all(
            0 <= value <= WORD_MASK
            for value in program.globals_init.values())
        cache = TranslationCache(decoded, masked)
        try:
            decoded._translation_cache = cache
        except (AttributeError, TypeError):  # pragma: no cover - not slotted
            pass
    return cache


class TranslatedMachine(Machine):
    """A :class:`Machine` whose observer-free fast path runs superblocks.

    Everything else — construction, register/memory interface, the observed
    path, host calls, segment flushing — is inherited unchanged, so any run
    the block dispatcher cannot serve (observers attached, irregular code,
    boundary-straddling blocks) behaves *exactly* like the interpreter.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._tcache = translation_cache(self.decoded, self.program)
        self._sb_exit_counts: list = [0] * len(self._tcache.exits)

    def _reset_run_state(self) -> None:
        super()._reset_run_state()
        cache = getattr(self, "_tcache", None)
        if cache is not None:   # __init__'s first reset runs before the cache
            self._sb_exit_counts = [0] * len(cache.exits)

    # -- the superblock dispatcher ---------------------------------------------
    def _run_fast(self, pc: int) -> None:
        """Superblock-to-superblock dispatch with an inline interpreter ladder.

        Per iteration: if ``pc`` heads a compiled block *and* the block's
        maximum length fits inside both the instruction limit and the current
        segment countdown, run the whole block in one closure call; otherwise
        interpret exactly one instruction with the ladder below (verbatim
        from :class:`Machine`), which re-checks the cache on the next pc.
        """
        decoded = self.decoded
        code = decoded.code
        regs = self.registers
        memory = self.memory
        mem_get = memory.get
        pac = self.stats.page_access_counts
        pac_get = pac.get
        seg_read_add = self._segment_pages_read.add
        seg_write_add = self._segment_pages_written.add
        ec = self._exec_counts
        tc = self._taken_counts
        seg_size = self.segment_size
        limit = self.max_instructions
        executed = self._executed
        seg_left = seg_size - executed % seg_size
        M = WORD_MASK
        SENTINEL = RETURN_SENTINEL
        cache = self._tcache
        fns = cache.fns
        lens = cache.lens
        block_at = cache.block_at
        xc = self._sb_exit_counts
        exits = cache.exits
        ADDI, ADD, ALU_RR, ALU_RI, LW, SW, BR, MV, LI, BEQZ, BNEZ, J, CALL, \
            JAL, JALR, ECALL, NOP, BAD = (
                K_ADDI, K_ADD, K_ALU_RR, K_ALU_RI, K_LW, K_SW, K_BR, K_MV,
                K_LI, K_BEQZ, K_BNEZ, K_J, K_CALL, K_JAL, K_JALR, K_ECALL,
                K_NOP, K_BAD)

        try:
            while pc != SENTINEL:
                fn = fns[pc]
                if fn is None:
                    block_at(pc)
                    fn = fns[pc]
                    if len(xc) < len(exits):
                        xc.extend([0] * (len(exits) - len(xc)))
                if fn is not False:
                    room = limit - executed
                    fuel = seg_left if seg_left < room else room
                    if lens[pc] <= fuel:
                        packed = fn(regs, memory, pac, seg_read_add,
                                    seg_write_add, xc, fuel)
                        n = packed >> 32
                        executed += n
                        seg_left -= n
                        pc = packed & M
                        if not seg_left:
                            seg_left = seg_size
                            self._flush_segment()
                        continue

                # -- interpreter ladder, verbatim from Machine._run_fast ------
                ins = code[pc]
                if executed >= limit:
                    raise EmulationError(
                        f"instruction limit exceeded ({limit})")
                ec[pc] += 1
                executed += 1
                k = ins[0]
                if k == ADDI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + ins[3]) & M
                    pc += 1
                elif k == ADD:
                    rd = ins[1]
                    if rd:
                        regs[rd] = (regs[ins[2]] + regs[ins[3]]) & M
                    pc += 1
                elif k == ALU_RR:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], regs[ins[3]])
                    pc += 1
                elif k == ALU_RI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4](regs[ins[2]], ins[3])
                    pc += 1
                elif k == LW:
                    address = (regs[ins[3]] + ins[2]) & M
                    page = address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_read_add(page)
                    rd = ins[1]
                    if rd:
                        regs[rd] = mem_get(address & 0xFFFFFFFC, 0) & M
                    pc += 1
                elif k == SW:
                    address = (regs[ins[3]] + ins[2]) & M
                    page = address >> _PAGE_SHIFT
                    pac[page] = pac_get(page, 0) + 1
                    seg_write_add(page)
                    memory[address & 0xFFFFFFFC] = regs[ins[1]]
                    pc += 1
                elif k == BR:
                    if ins[4](regs[ins[1]], regs[ins[2]]):
                        tc[pc] += 1
                        target = ins[3]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == MV:
                    rd = ins[1]
                    if rd:
                        regs[rd] = regs[ins[2]]
                    pc += 1
                elif k == LI:
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[2]
                    pc += 1
                elif k == BEQZ:
                    if regs[ins[1]] == 0:
                        tc[pc] += 1
                        target = ins[2]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == BNEZ:
                    if regs[ins[1]] != 0:
                        tc[pc] += 1
                        target = ins[2]
                        if target < 0:
                            raise EmulationError(
                                f"unknown label: {decoded.unresolved[pc]}")
                        pc = target
                    else:
                        pc += 1
                elif k == J:
                    target = ins[1]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == CALL:
                    target = ins[1]
                    if target < 0:   # faults before the link write (ref order)
                        raise EmulationError(
                            f"call to unknown function: "
                            f"{decoded.unresolved[pc]}")
                    regs[1] = ins[2]                        # ra = link
                    pc = target
                elif k == JAL:
                    rd = ins[1]
                    if rd:           # link is written before the fault check,
                        regs[rd] = ins[3]                   # as in the reference
                    target = ins[2]
                    if target < 0:
                        raise EmulationError(
                            f"unknown label: {decoded.unresolved[pc]}")
                    pc = target
                elif k == JALR:
                    target = (regs[ins[2]] + ins[3]) & M
                    rd = ins[1]
                    if rd:
                        regs[rd] = ins[4]
                    pc = target
                elif k == ECALL:
                    self._ecall()
                    pc += 1
                elif k == NOP:
                    pc += 1
                elif k == BAD:
                    if not ins[3]:
                        ec[pc] -= 1
                        executed -= 1
                    raise (EmulationError(ins[2]) if ins[1]
                           else ValueError(ins[2]))
                else:  # pragma: no cover - decoder emits only known kinds
                    raise EmulationError(f"unknown handler id: {k}")

                seg_left -= 1
                if not seg_left:
                    seg_left = seg_size
                    self._flush_segment()
        except IndexError:
            if not 0 <= pc < len(code):
                raise EmulationError(
                    f"program counter out of range: {pc}") from None
            raise
        finally:
            self._executed = executed

    # -- statistics -------------------------------------------------------------
    def _fold_stats(self) -> None:
        """Expand per-exit counters into the per-pc arrays, then fold as usual.

        Counters are zeroed as they are expanded so re-folding stays
        idempotent (``Machine._fold_stats`` rebuilds the dicts from the flat
        arrays, which now carry the block-path executions too).
        """
        xc = self._sb_exit_counts
        ec = self._exec_counts
        tc = self._taken_counts
        for block_exit in self._tcache.exits[:len(xc)]:
            count = xc[block_exit.slot]
            if not count:
                continue
            for pc in block_exit.pcs:
                ec[pc] += count
            if block_exit.taken_pc is not None:
                tc[block_exit.taken_pc] += count
            xc[block_exit.slot] = 0
        super()._fold_stats()


def run_program_translated(program, entry: str = "main",
                           args: Optional[list] = None,
                           max_instructions: int = 50_000_000,
                           input_values: Optional[list] = None):
    """Execute ``program`` through the superblock engine; return TraceStats."""
    machine = TranslatedMachine(program, max_instructions=max_instructions,
                                input_values=input_values)
    return machine.run(entry, args)
