"""Execution-trace statistics collected while emulating a guest program.

The zkVM cycle models and the CPU timing model both consume this summary, so
one emulation run yields every metric the study needs (dynamic instruction
counts by class, memory page touches per segment, branch/dependency events).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: RISC Zero pages are 1 KiB.
PAGE_SIZE = 1024


@dataclass
class TraceStats:
    """Aggregate statistics of one guest execution."""

    #: Total dynamically executed instructions (ecall counts as one).
    instructions: int = 0
    #: Executed instructions per coarse opcode class (alu/mul/div/load/store/...).
    class_counts: dict = field(default_factory=dict)
    #: Executed instructions per opcode.
    opcode_counts: dict = field(default_factory=dict)
    #: Number of taken / not-taken conditional branches.
    branches_taken: int = 0
    branches_not_taken: int = 0
    #: Calls and returns (jal/jalr/call/ret pseudo expansion).
    calls: int = 0
    #: Host calls by name (precompile usage).
    host_calls: dict = field(default_factory=dict)
    #: Ordered list of (page, was_write) "first touches": a page appears once per
    #: segment per kind.  Segments follow the zkVM cycle budget (see models).
    page_touches: list = field(default_factory=list)
    #: Pages read / written over the whole execution (unique page numbers).
    pages_read: set = field(default_factory=set)
    pages_written: set = field(default_factory=set)
    #: Total memory loads/stores.
    loads: int = 0
    stores: int = 0
    #: Output values printed by the guest.
    output: list = field(default_factory=list)
    #: The guest's return value (main's a0 at halt).
    return_value: int = 0
    #: Memory access sequence folded into per-page counts.
    page_access_counts: dict = field(default_factory=dict)

    def record_instruction(self, opcode: str, instruction_class: str) -> None:
        self.instructions += 1
        self.class_counts[instruction_class] = self.class_counts.get(instruction_class, 0) + 1
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def record_memory(self, address: int, is_write: bool) -> None:
        page = address // PAGE_SIZE
        self.page_access_counts[page] = self.page_access_counts.get(page, 0) + 1
        if is_write:
            self.stores += 1
            self.pages_written.add(page)
        else:
            self.loads += 1
            self.pages_read.add(page)

    @property
    def unique_pages(self) -> int:
        return len(self.pages_read | self.pages_written)

    def summary(self) -> dict:
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches_taken": self.branches_taken,
            "branches_not_taken": self.branches_not_taken,
            "calls": self.calls,
            "unique_pages": self.unique_pages,
            "return_value": self.return_value,
        }
