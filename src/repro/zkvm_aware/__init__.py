"""The "modified LLVM" of Section 6.1: a zkVM-aware compilation configuration.

The paper implements three change sets in under 100 lines of LLVM:

* **Change set 1** — a zkVM-specific cost model (division is cheap, memory
  paging is expensive) wired into the RISC-V target hooks.
* **Change set 2** — retuned defaults and heuristics: a much higher inlining
  threshold, unrolling gated on instruction-count reduction, conservative
  branch elimination.
* **Change set 3** — disabling passes whose benefit relies on hardware
  features zkVMs do not have (speculative execution, prefetching).

In this reproduction the same three change sets are a configuration layer:
:func:`zkvm_aware_config` adjusts the shared :class:`PassConfig`,
:func:`zkvm_aware_pipeline` builds the modified -O3 pipeline, and the backend
selects the zkVM cost model for instruction selection.
"""

from __future__ import annotations

from ..backend.cost_model import ZKVM_COST_MODEL, TargetCostModel
from ..passes import PassConfig, PassManager, apply_zkvm_aware_overrides, pipeline_for_level


def zkvm_aware_config(base: PassConfig | None = None) -> PassConfig:
    """The pass configuration with Change Sets 1-2 applied."""
    return apply_zkvm_aware_overrides(base or PassConfig())


def zkvm_aware_pipeline(level: str = "-O3") -> PassManager:
    """The modified -O3 (or other level) pipeline with all three change sets."""
    return pipeline_for_level(level, zkvm_aware=True)


def zkvm_aware_backend_cost_model() -> TargetCostModel:
    """Change set 1 as seen by the instruction selector."""
    return ZKVM_COST_MODEL


__all__ = ["zkvm_aware_config", "zkvm_aware_pipeline", "zkvm_aware_backend_cost_model"]
