"""Plain-text rendering of the study's tables and figure series."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    columns = len(headers)
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(row[i]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) if i < len(row) else ""
                               for i in range(columns)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
