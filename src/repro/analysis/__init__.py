"""Statistical analysis and reporting utilities."""

from .stats import kendall_tau, pearson_r, mean, stddev
from .reporting import format_table

__all__ = ["kendall_tau", "pearson_r", "mean", "stddev", "format_table"]
