"""Statistics used by the study: Kendall's tau, Pearson's r, and helpers.

Kendall's tau quantifies the *monotonic* relationship between a cost metric
(dynamic instruction count, paging cycles) and a performance metric; Pearson's
r quantifies the *linear* relationship (Table 2 of the paper).
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy import stats as _scipy_stats


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's tau-b rank correlation; 0.0 for degenerate inputs."""
    if len(x) != len(y):
        raise ValueError("sequences must have equal length")
    if len(x) < 2 or len(set(x)) < 2 or len(set(y)) < 2:
        return 0.0
    tau, _ = _scipy_stats.kendalltau(list(x), list(y))
    return 0.0 if tau is None or math.isnan(tau) else float(tau)


def pearson_r(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    if len(x) != len(y):
        raise ValueError("sequences must have equal length")
    if len(x) < 2 or len(set(x)) < 2 or len(set(y)) < 2:
        return 0.0
    r, _ = _scipy_stats.pearsonr(list(x), list(y))
    return 0.0 if math.isnan(r) else float(r)


def concordance_probability(tau: float) -> float:
    """The paper's interpretation aid: P(concordant) = (1 + tau) / 2."""
    return (1.0 + tau) / 2.0
