"""RISC-V (RV32IM) backend: instruction selection, machine-level peephole
optimization, register allocation and frame lowering.

The top-level entry point is :func:`compile_module`, which turns an IR module
into an executable :class:`~repro.backend.isa.AssemblyProgram` through the
optimizing pipeline::

    lowering.py  →  peephole.py  →  regalloc.py  →  frame finalization

The pre-overhaul backend is preserved verbatim in
:mod:`repro.backend.seed_lowering` and reachable via
``compile_module(..., seed_backend=True)`` — the ``--seed-backend`` escape
hatch used by the backend differential tests and ``make bench-backend``.
"""

from ..ir import Module
from .cost_model import CPU_COST_MODEL, ZKVM_COST_MODEL, TargetCostModel, cost_model_for
from .encoding import (
    EncodeError, EncodedProgram, code_size_report, decode_words,
    encode_program, reassemble,
)
from .isa import AssemblyFunction, AssemblyProgram, Label, MachineInstr, classify
from .lowering import (
    DATA_SEGMENT_BASE, FunctionLowering, HOST_CALL_IDS, STACK_TOP,
    lower_module, remove_redundant_jumps,
)
from .peephole import cleanup_after_regalloc, recolor_for_rvc, run_peephole
from .regalloc import (
    LinearScanAllocator, allocate_registers, finalize_frame,
    weighted_static_cost,
)
from .seed_lowering import seed_compile_module


def compile_module(module: Module,
                   cost_model: TargetCostModel = CPU_COST_MODEL,
                   seed_backend: bool = False) -> AssemblyProgram:
    """Lower ``module`` to RV32IM and run the full backend on every function.

    ``seed_backend=True`` routes the compile through the preserved seed
    backend instead (:func:`repro.backend.seed_lowering.seed_compile_module`)
    for differential testing and benchmarking.

    The returned program carries ``backend_stats``: per-function dicts of
    static size before/after the peephole passes, per-rule peephole hit
    counts, and the allocator's spill statistics (``repro lower --stats``
    renders them).
    """
    if seed_backend:
        program = seed_compile_module(module, cost_model)
        _attach_code_sizes(program)
        return program
    program = lower_module(module, cost_model)
    ir_functions = {f.name: f for f in module.defined_functions()}
    backend_stats: dict[str, dict] = {}
    for name, asm in list(program.functions.items()):
        stats = _run_backend_pipeline(asm)
        if stats["spilled_vregs"] >= _HOIST_RETRY_SPILLS:
            # Loop-invariant hoisting raised register pressure enough to
            # spill; re-lower without it and keep the cheaper variant (by
            # the same loop-weighted cost the spill heuristic optimizes).
            retry = FunctionLowering(ir_functions[name], program, cost_model,
                                     hoist_limit=0).lower()
            remove_redundant_jumps(retry)
            retry_stats = _run_backend_pipeline(retry)
            if retry_stats["weighted_cost"] < stats["weighted_cost"]:
                program.functions[name] = retry
                stats = retry_stats
                stats["hoisting_disabled"] = True
        backend_stats[name] = stats
    program.backend_stats = backend_stats
    _attach_code_sizes(program, backend_stats)
    return program


def _attach_code_sizes(program: AssemblyProgram,
                       backend_stats: dict | None = None) -> None:
    """Measure the program's binary footprint and record it on the program.

    ``program.code_sizes`` holds the whole-program byte counts
    (``{"rv32": ..., "rvc": ...}``); with ``backend_stats`` given, each
    function's entry additionally gets ``code_bytes``/``code_bytes_rvc``.
    Programs carrying something the encoder rejects (possible for
    hand-built test inputs, never for lowered code) get ``code_sizes=None``
    rather than failing the compile.
    """
    try:
        sizes = code_size_report(program)
    except EncodeError:
        program.code_sizes = None
        return
    program.code_sizes = {"rv32": sizes["rv32"], "rvc": sizes["rvc"]}
    if backend_stats:
        for name, stats in backend_stats.items():
            per_function = sizes["functions"].get(name)
            if per_function is not None:
                stats["code_bytes"] = per_function["rv32"]
                stats["code_bytes_rvc"] = per_function["rvc"]


#: Spilled-vreg count at which ``compile_module`` re-lowers a function with
#: loop-invariant hoisting disabled and keeps the cheaper variant.
_HOIST_RETRY_SPILLS = 4


def _run_backend_pipeline(asm: AssemblyFunction) -> dict:
    """Peephole → allocate → cleanup → finalize one function, in place.

    Returns the per-function entry for ``AssemblyProgram.backend_stats``.
    """
    lowered = len(asm.instructions())
    peephole_hits = run_peephole(asm)
    allocator = LinearScanAllocator(asm)
    allocator.run()
    cleanup_hits = cleanup_after_regalloc(asm)
    finalize_frame(asm, allocator.used_callee_saved)
    recolored = recolor_for_rvc(asm)
    for key, value in cleanup_hits.items():
        peephole_hits[key] = peephole_hits.get(key, 0) + value
    return {
        "lowered_instructions": lowered,
        "final_instructions": len(asm.instructions()),
        "frame_bytes": asm.frame_size,
        "spilled_vregs": allocator.spilled_vregs,
        "spill_loads": allocator.spill_loads,
        "spill_stores": allocator.spill_stores,
        "weighted_cost": weighted_static_cost(asm),
        "rvc_recolored": recolored,
        "peephole": peephole_hits,
    }


__all__ = [
    "compile_module", "seed_compile_module", "lower_module",
    "allocate_registers", "run_peephole", "cleanup_after_regalloc",
    "AssemblyFunction", "AssemblyProgram", "Label", "MachineInstr", "classify",
    "TargetCostModel", "CPU_COST_MODEL", "ZKVM_COST_MODEL", "cost_model_for",
    "DATA_SEGMENT_BASE", "HOST_CALL_IDS", "STACK_TOP",
    "EncodeError", "EncodedProgram", "code_size_report", "decode_words",
    "encode_program", "reassemble",
]
