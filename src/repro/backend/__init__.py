"""RISC-V (RV32IM) backend: instruction selection, register allocation and
frame lowering.

The top-level entry point is :func:`compile_module`, which turns an IR module
into an executable :class:`~repro.backend.isa.AssemblyProgram`.
"""

from ..ir import Module
from .cost_model import CPU_COST_MODEL, ZKVM_COST_MODEL, TargetCostModel, cost_model_for
from .isa import AssemblyFunction, AssemblyProgram, Label, MachineInstr, classify
from .lowering import DATA_SEGMENT_BASE, HOST_CALL_IDS, STACK_TOP, lower_module
from .regalloc import allocate_registers


def compile_module(module: Module,
                   cost_model: TargetCostModel = CPU_COST_MODEL) -> AssemblyProgram:
    """Lower ``module`` to RV32IM and run register allocation on every function."""
    program = lower_module(module, cost_model)
    for asm in program.functions.values():
        allocate_registers(asm)
    return program


__all__ = [
    "compile_module", "lower_module", "allocate_registers",
    "AssemblyFunction", "AssemblyProgram", "Label", "MachineInstr", "classify",
    "TargetCostModel", "CPU_COST_MODEL", "ZKVM_COST_MODEL", "cost_model_for",
    "DATA_SEGMENT_BASE", "HOST_CALL_IDS", "STACK_TOP",
]
