"""Register allocation: lifetime-hole-aware linear scan with spilling.

This is where the register-pressure effects the paper discusses become real:
transformations that lengthen live ranges (aggressive inlining, hoisting by
licm) can push the number of simultaneously live values past the physical
register file, forcing spill loads/stores inside hot loops — cheap on a CPU
with a store buffer and an L1 hit, expensive on a zkVM where every spill is
another proven instruction and a potential page touch.

The allocator (rewritten in the backend code-quality overhaul; the seed's
single-range scan survives in :mod:`repro.backend.seed_lowering`) improves on
classic linear scan in three ways:

* **Lifetime holes.**  A virtual register's liveness is a list of disjoint
  segments, not one [start, end] envelope; a physical register is free for
  reuse inside another interval's holes (second-chance binpacking), which
  matters for the long, sparsely-used values produced by loop-invariant
  hoisting.
* **Loop-aware spill weights.**  Every use/def position is weighted by
  ``10 ** loop_depth`` (depths come from the lowering via
  ``AssemblyFunction.label_depths``); when registers run out, the victim is
  the cheapest conflicting interval, so spill code lands outside hot loops.
* **Callee-saved preference for call-crossing intervals.**  An interval live
  across a ``call``/``ecall`` only ever gets a callee-saved register (the
  seed rule), and non-crossing intervals prefer caller-saved registers so
  the callee-saved pool — which costs a save/restore pair in the frame —
  stays available for the values that need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import (
    ARGUMENT_REGISTERS, AssemblyFunction, CALLEE_SAVED, CALLER_SAVED, Label,
    MachineInstr, REGISTER_NAMES,
)

#: Registers handed out by the allocator.  t5/t6 are reserved as spill scratch.
ALLOCATABLE_CALLER = ["t0", "t1", "t2", "t3", "t4"]
ALLOCATABLE_CALLEE = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"]
SPILL_SCRATCH = ["t5", "t6"]


def _is_vreg(operand) -> bool:
    return isinstance(operand, str) and operand.startswith("%")


def instr_registers(instr: MachineInstr) -> tuple[list, list]:
    """(defs, uses) positions of register operands for an instruction.

    Returns two lists of operand *indices* so rewriting is straightforward.
    The classification mirrors the executable semantics in
    :mod:`repro.emulator.decoder` exactly — ``tests/test_backend_emulator.py``
    locks the two down against each other with a table-driven test:

    * stores (``sw``/``sb``/``sh``, operands ``value, offset, base``) read
      both registers and write none;
    * conditional branches read their one or two source registers;
    * ``j``/``call``/``ret``/``ecall``/``ebreak``/``nop`` define no register
      operand (``call`` writes ``ra`` and ``ecall`` writes ``a0``, but those
      are fixed physical registers, never allocatable operands);
    * ``jal rd, label`` and ``jalr rd, base, offset`` write ``rd`` (the link
      register) and ``jalr`` additionally reads ``base``;
    * everything else (ALU, loads, ``li``/``lui``/``mv``) writes its first
      register operand and reads the rest.
    """
    opcode = instr.opcode
    ops = instr.operands
    reg_positions = [i for i, op in enumerate(ops) if isinstance(op, str) and
                     (op.startswith("%") or op in REGISTER_NAMES)]
    if opcode in ("sw", "sb", "sh"):
        return [], reg_positions                       # store: value, base are uses
    if opcode in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return [], reg_positions
    if opcode in ("beqz", "bnez"):
        return [], reg_positions
    if opcode in ("j", "call", "ret", "ecall", "ebreak", "nop"):
        return [], reg_positions
    if opcode in ("jal", "jalr"):
        return reg_positions[:1], reg_positions[1:]
    # Default: first register operand is the destination, the rest are sources.
    return reg_positions[:1], reg_positions[1:]


@dataclass
class LiveInterval:
    """Liveness of one virtual register as disjoint [start, end] segments."""

    vreg: str
    segments: list = field(default_factory=list)  # sorted (start, end) pairs
    weight: float = 0.0
    crosses_call: bool = False
    assigned: str | None = None
    spill_slot: int | None = None

    @property
    def start(self) -> int:
        return self.segments[0][0]

    @property
    def end(self) -> int:
        return self.segments[-1][1]

    def overlaps(self, other_segments: list) -> bool:
        """True when any of this interval's segments intersects any of
        ``other_segments`` (both sorted)."""
        i = j = 0
        mine = self.segments
        while i < len(mine) and j < len(other_segments):
            a_start, a_end = mine[i]
            b_start, b_end = other_segments[j]
            if a_end < b_start:
                i += 1
            elif b_end < a_start:
                j += 1
            else:
                return True
        return False


def _block_boundaries(body: list) -> list[tuple[int, int]]:
    """(start, end) instruction-index ranges of the machine basic blocks."""
    boundaries = []
    start = 0
    for index, item in enumerate(body):
        if isinstance(item, Label) and index > start:
            boundaries.append((start, index))
            start = index
        elif isinstance(item, MachineInstr) and item.is_terminator_like:
            boundaries.append((start, index + 1))
            start = index + 1
    if start < len(body):
        boundaries.append((start, len(body)))
    return [b for b in boundaries if b[0] < b[1]]


def position_depths(asm: AssemblyFunction) -> list[int]:
    """Loop depth per body position, derived from the lowering's label depths."""
    depths = []
    current = 0
    for item in asm.body:
        if isinstance(item, Label):
            current = asm.label_depths.get(item.name, current)
        depths.append(current)
    return depths


def weighted_static_cost(asm: AssemblyFunction) -> float:
    """A loop-weighted proxy for a function's dynamic instruction count.

    Each instruction counts ``10 ** loop_depth`` — the same weighting the
    spill heuristic uses — so two compiled variants of one function can be
    compared without emulating them (see the hoist-retry in
    :func:`repro.backend.compile_module`).
    """
    depths = position_depths(asm)
    return sum(10 ** depths[index]
               for index, item in enumerate(asm.body)
               if isinstance(item, MachineInstr))


def compute_live_intervals(body: list,
                           depths: list | None = None) -> dict[str, LiveInterval]:
    """Hole-aware live intervals with CFG-aware extension.

    Runs iterative liveness over the machine basic blocks, then walks each
    block backwards to carve every vreg's liveness into precise [start, end]
    segments — the holes between segments are what the allocator binpacks.
    ``depths`` (per-position loop depth) feeds the spill weights; omitted,
    every position weighs 1.
    """
    blocks = _block_boundaries(body)
    label_to_block = {}
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if isinstance(item, Label):
                label_to_block[item.name] = block_index
            else:
                break

    def successors(block_index: int) -> list[int]:
        start, end = blocks[block_index]
        result = []
        fallthrough = True
        for position in range(end - 1, start - 1, -1):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            if item.opcode in ("j",):
                target = label_to_block.get(item.operands[0])
                if target is not None:
                    result.append(target)
                fallthrough = False
            elif item.is_branch and item.opcode != "j":
                target = label_to_block.get(item.operands[-1])
                if target is not None:
                    result.append(target)
            elif item.opcode in ("ret",):
                fallthrough = False
            break
        if fallthrough and block_index + 1 < len(blocks):
            result.append(block_index + 1)
        return result

    # Per-block def/use sets for virtual registers.
    defs: list[set] = [set() for _ in blocks]
    uses: list[set] = [set() for _ in blocks]
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = instr_registers(item)
            for pos in use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg) and reg not in defs[block_index]:
                    uses[block_index].add(reg)
            for pos in def_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    defs[block_index].add(reg)

    live_in: list[set] = [set() for _ in blocks]
    live_out: list[set] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for block_index in range(len(blocks) - 1, -1, -1):
            out = set()
            for succ in successors(block_index):
                out |= live_in[succ]
            new_in = uses[block_index] | (out - defs[block_index])
            if out != live_out[block_index] or new_in != live_in[block_index]:
                live_out[block_index] = out
                live_in[block_index] = new_in
                changed = True

    intervals: dict[str, LiveInterval] = {}
    raw_segments: dict[str, list] = {}

    def interval_for(vreg: str) -> LiveInterval:
        interval = intervals.get(vreg)
        if interval is None:
            interval = intervals[vreg] = LiveInterval(vreg)
            raw_segments[vreg] = []
        return interval

    # Backward walk per block: carve per-vreg live segments.
    for block_index, (start, end) in enumerate(blocks):
        open_end: dict[str, int] = {vreg: end - 1 for vreg in live_out[block_index]}
        for vreg in open_end:
            interval_for(vreg)
        for position in range(end - 1, start - 1, -1):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = instr_registers(item)
            for pos in def_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                interval = interval_for(reg)
                weight = 10 ** depths[position] if depths else 1
                interval.weight += weight
                segment_end = open_end.pop(reg, position)
                raw_segments[reg].append((position, segment_end))
            for pos in use_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                interval = interval_for(reg)
                weight = 10 ** depths[position] if depths else 1
                interval.weight += weight
                if reg not in open_end:
                    open_end[reg] = position
        for vreg, segment_end in open_end.items():
            # Live into the block: the segment spans from the block start.
            raw_segments[vreg].append((start, segment_end))

    # Sort and merge touching segments.
    call_positions = [i for i, item in enumerate(body)
                      if isinstance(item, MachineInstr)
                      and item.opcode in ("call", "ecall")]
    for vreg, interval in intervals.items():
        merged: list[tuple[int, int]] = []
        for seg_start, seg_end in sorted(raw_segments[vreg]):
            if merged and seg_start <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0],
                              max(merged[-1][1], seg_end))
            else:
                merged.append((seg_start, seg_end))
        interval.segments = merged
        # A call/ecall has no virtual-register operands, so a segment that
        # covers the call position (inclusively: ``call`` terminates a
        # machine block, ending live-through segments exactly at it) can only
        # be a value that must survive the call.
        interval.crosses_call = any(
            seg_start <= p <= seg_end
            for p in call_positions
            for seg_start, seg_end in merged)
    return intervals


class LinearScanAllocator:
    """Hole-aware linear scan with weighted eviction.

    Intervals are visited in start order; each tries the registers of its
    preferred pool (callee-saved for call-crossing intervals, caller-saved
    otherwise) and takes the first whose already-assigned segments leave its
    own segments free — the "second chance" that packs short intervals into
    the lifetime holes of long ones.  When nothing fits, the conflicting
    intervals on the cheapest register are evicted if their combined spill
    weight is lower than the newcomer's; otherwise the newcomer spills.
    """

    def __init__(self, asm: AssemblyFunction):
        self.asm = asm
        self.used_callee_saved: set[str] = set()
        self.spill_slots: dict[str, int] = {}
        self.next_spill_slot = 0
        #: Statistics surfaced by ``repro lower --stats``.
        self.spilled_vregs = 0
        self.spill_loads = 0
        self.spill_stores = 0

    def run(self) -> None:
        body = self.asm.body
        depths = position_depths(self.asm)
        #: Exposed for tests and diagnostics: vreg -> final LiveInterval.
        self.intervals = intervals = compute_live_intervals(body, depths)
        # Spilling a rematerializable value costs one ALU op per use (no
        # store, no memory traffic), roughly half the price of a genuine
        # reload-plus-spill — discount it so the allocator prefers dropping
        # a cached constant over spilling a loop-carried value.  The scan is
        # shared with _rewrite(), which consults the same table.
        self._remat_templates = self._rematerializable()
        for vreg in self._remat_templates:
            if vreg in intervals:
                intervals[vreg].weight *= 0.5
        ordered = sorted(intervals.values(),
                         key=lambda iv: (iv.start, -iv.weight))

        #: register -> list of (segments, interval) assigned to it.
        occupancy: dict[str, list] = {
            reg: [] for reg in ALLOCATABLE_CALLER + ALLOCATABLE_CALLEE}

        def fits(interval: LiveInterval, register: str) -> bool:
            return not any(interval.overlaps(segments)
                           for segments, _ in occupancy[register])

        def assign(interval: LiveInterval, register: str) -> None:
            interval.assigned = register
            occupancy[register].append((interval.segments, interval))
            if register in CALLEE_SAVED:
                self.used_callee_saved.add(register)

        for interval in ordered:
            if interval.crosses_call:
                candidates = ALLOCATABLE_CALLEE
            else:
                candidates = ALLOCATABLE_CALLER + ALLOCATABLE_CALLEE
            register = next((reg for reg in candidates
                             if fits(interval, reg)), None)
            if register is not None:
                assign(interval, register)
                continue
            # Eviction: spill the cheapest conflicting set if it is cheaper
            # than spilling the newcomer.
            best_register = None
            best_weight = None
            for reg in candidates:
                conflicting = [iv for segments, iv in occupancy[reg]
                               if interval.overlaps(segments)]
                conflict_weight = sum(iv.weight for iv in conflicting)
                if best_weight is None or conflict_weight < best_weight:
                    best_register, best_weight = reg, conflict_weight
            if best_register is not None and best_weight < interval.weight:
                for segments, victim in list(occupancy[best_register]):
                    if interval.overlaps(segments):
                        occupancy[best_register].remove((segments, victim))
                        victim.assigned = None
                        self._assign_spill_slot(victim)
                assign(interval, best_register)
            else:
                self._assign_spill_slot(interval)

        self._rewrite(intervals)

    def _assign_spill_slot(self, interval: LiveInterval) -> None:
        if interval.vreg not in self.spill_slots:
            self.spill_slots[interval.vreg] = self.asm.frame_size + 4 * self.next_spill_slot
            self.next_spill_slot += 1
        interval.spill_slot = self.spill_slots[interval.vreg]

    def _rematerializable(self) -> dict[str, MachineInstr]:
        """Spilled-value definitions that can be recomputed at each use.

        A virtual register defined exactly once by ``li`` (a constant) or by
        ``addi …, sp, imm`` (a frame address; ``sp`` only moves in the
        prologue/epilogue, outside the allocated body) never needs a stack
        slot: its defining instruction is deleted and re-emitted into the
        scratch register at each use.  This is what makes the lowering's
        loop-invariant hoisting safe under register pressure — a hoisted
        constant that loses its register degrades back to the seed's
        materialize-per-use, never to a reload-per-use plus store.
        """
        def_counts: dict[str, int] = {}
        templates: dict[str, MachineInstr] = {}
        for item in self.asm.body:
            if not isinstance(item, MachineInstr):
                continue
            def_positions, _ = instr_registers(item)
            for pos in def_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                def_counts[reg] = def_counts.get(reg, 0) + 1
                if item.opcode == "li" and isinstance(item.operands[1], int):
                    templates[reg] = item
                elif item.opcode == "addi" and item.operands[1] == "sp" \
                        and isinstance(item.operands[2], int):
                    templates[reg] = item
        return {reg: instr for reg, instr in templates.items()
                if def_counts.get(reg) == 1}

    def _rewrite(self, intervals: dict[str, LiveInterval]) -> None:
        """Replace virtual registers with physical ones; insert spill code."""
        assignment = {iv.vreg: iv.assigned for iv in intervals.values()}
        spilled = {iv.vreg for iv in intervals.values() if iv.assigned is None}
        remat = {reg: instr for reg, instr in self._remat_templates.items()
                 if reg in spilled}
        slots: dict[str, int] = {}
        for interval in intervals.values():
            if interval.assigned is None and interval.vreg not in remat:
                self._assign_spill_slot(interval)
                slots[interval.vreg] = interval.spill_slot
        self.spilled_vregs = len(spilled)

        new_body: list = []
        for item in self.asm.body:
            if not isinstance(item, MachineInstr):
                new_body.append(item)
                continue
            def_positions, use_positions = instr_registers(item)
            scratch_pool = list(SPILL_SCRATCH)
            reloads: list[MachineInstr] = []
            stores: list[MachineInstr] = []
            replacements: dict[int, str] = {}
            reloaded: dict[str, str] = {}  # spilled vreg -> scratch this instr
            drop_instruction = False

            for pos in use_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                elif reg in reloaded:
                    replacements[pos] = reloaded[reg]
                else:
                    scratch = scratch_pool.pop(0) if scratch_pool else SPILL_SCRATCH[0]
                    template = remat.get(reg)
                    if template is not None:
                        reloads.append(MachineInstr(
                            template.opcode, [scratch, *template.operands[1:]],
                            comment=f"remat {reg}"))
                    else:
                        reloads.append(MachineInstr(
                            "lw", [scratch, slots.get(reg, 0), "sp"],
                            comment=f"reload {reg}"))
                    replacements[pos] = reloaded[reg] = scratch

            for pos in def_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                elif reg in remat:
                    # The value is recomputed at each use; its one definition
                    # carries no other side effect and simply disappears.
                    drop_instruction = True
                else:
                    replacements[pos] = SPILL_SCRATCH[-1]
                    stores.append(MachineInstr(
                        "sw", [SPILL_SCRATCH[-1], slots.get(reg, 0), "sp"],
                        comment=f"spill {reg}"))

            if drop_instruction:
                continue
            for pos, reg in replacements.items():
                item.operands[pos] = reg
            self.spill_loads += len(reloads)
            self.spill_stores += len(stores)
            new_body.extend(reloads)
            new_body.append(item)
            new_body.extend(stores)

        self.asm.body = new_body
        self.asm.frame_size += 4 * self.next_spill_slot


def finalize_frame(asm: AssemblyFunction, used_callee_saved: set[str]) -> None:
    """Insert the prologue/epilogue and expand ``ret`` pseudo-instructions."""
    saved = sorted(used_callee_saved) + ["ra"]
    frame = asm.frame_size + 4 * len(saved)
    frame = (frame + 15) & ~15  # 16-byte stack alignment, as the RISC-V ABI requires
    save_base = asm.frame_size

    prologue: list[MachineInstr] = []
    if frame:
        prologue.append(MachineInstr("addi", ["sp", "sp", -frame], comment="prologue"))
    for index, reg in enumerate(saved):
        prologue.append(MachineInstr("sw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"save {reg}"))

    epilogue: list[MachineInstr] = []
    for index, reg in enumerate(saved):
        epilogue.append(MachineInstr("lw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"restore {reg}"))
    if frame:
        epilogue.append(MachineInstr("addi", ["sp", "sp", frame], comment="epilogue"))
    epilogue.append(MachineInstr("jalr", ["zero", "ra", 0], comment="return"))

    new_body: list = list(prologue)
    for item in asm.body:
        if isinstance(item, MachineInstr) and item.opcode == "ret":
            new_body.extend(MachineInstr(i.opcode, list(i.operands), i.comment)
                            for i in epilogue)
        else:
            new_body.append(item)
    asm.body = new_body
    asm.frame_size = frame


def allocate_registers(asm: AssemblyFunction) -> AssemblyFunction:
    """Run register allocation and frame finalization on a lowered function."""
    allocator = LinearScanAllocator(asm)
    allocator.run()
    finalize_frame(asm, allocator.used_callee_saved)
    return asm
