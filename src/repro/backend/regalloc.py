"""Register allocation: linear scan over virtual registers with spilling.

This is where the register-pressure effects the paper discusses become real:
transformations that lengthen live ranges (aggressive inlining, hoisting by
licm) can push the number of simultaneously live values past the physical
register file, forcing spill loads/stores inside hot loops — cheap on a CPU
with a store buffer and an L1 hit, expensive on a zkVM where every spill is
another proven instruction and a potential page touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import (
    ARGUMENT_REGISTERS, AssemblyFunction, CALLEE_SAVED, CALLER_SAVED, Label,
    MachineInstr, REGISTER_NAMES,
)

#: Registers handed out by the allocator.  t5/t6 are reserved as spill scratch.
ALLOCATABLE_CALLER = ["t0", "t1", "t2", "t3", "t4"]
ALLOCATABLE_CALLEE = ["s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"]
SPILL_SCRATCH = ["t5", "t6"]


def _is_vreg(operand) -> bool:
    return isinstance(operand, str) and operand.startswith("%")


def instr_registers(instr: MachineInstr) -> tuple[list, list]:
    """(defs, uses) positions of register operands for an instruction.

    Returns two lists of operand *indices* so rewriting is straightforward.
    """
    opcode = instr.opcode
    ops = instr.operands
    reg_positions = [i for i, op in enumerate(ops) if isinstance(op, str) and
                     (op.startswith("%") or op in REGISTER_NAMES)]
    if opcode in ("sw", "sb", "sh"):
        return [], reg_positions                       # store: value, base are uses
    if opcode in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
        return [], reg_positions
    if opcode in ("beqz", "bnez"):
        return [], reg_positions
    if opcode in ("j", "call", "ret", "ecall", "ebreak", "nop"):
        return [], reg_positions
    if opcode in ("jal", "jalr"):
        return reg_positions[:1], reg_positions[1:]
    # Default: first register operand is the destination, the rest are sources.
    return reg_positions[:1], reg_positions[1:]


@dataclass
class LiveInterval:
    vreg: str
    start: int
    end: int
    crosses_call: bool = False
    assigned: str | None = None
    spill_slot: int | None = None


def _block_boundaries(body: list) -> list[tuple[int, int]]:
    """(start, end) instruction-index ranges of the machine basic blocks."""
    boundaries = []
    start = 0
    for index, item in enumerate(body):
        if isinstance(item, Label) and index > start:
            boundaries.append((start, index))
            start = index
        elif isinstance(item, MachineInstr) and item.is_terminator_like:
            boundaries.append((start, index + 1))
            start = index + 1
    if start < len(body):
        boundaries.append((start, len(body)))
    return [b for b in boundaries if b[0] < b[1]]


def compute_live_intervals(body: list) -> dict[str, LiveInterval]:
    """Conservative single-range live intervals with CFG-aware extension.

    Uses iterative liveness over the machine basic blocks, then collapses each
    vreg's live positions into one [start, end] range (standard linear scan).
    """
    # Map labels to the block that starts there.
    blocks = _block_boundaries(body)
    label_to_block = {}
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if isinstance(item, Label):
                label_to_block[item.name] = block_index
            else:
                break

    def successors(block_index: int) -> list[int]:
        start, end = blocks[block_index]
        result = []
        fallthrough = True
        for position in range(end - 1, start - 1, -1):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            if item.opcode in ("j",):
                target = label_to_block.get(item.operands[0])
                if target is not None:
                    result.append(target)
                fallthrough = False
            elif item.is_branch and item.opcode != "j":
                target = label_to_block.get(item.operands[-1])
                if target is not None:
                    result.append(target)
            elif item.opcode in ("ret",):
                fallthrough = False
            break
        if fallthrough and block_index + 1 < len(blocks):
            result.append(block_index + 1)
        return result

    # Per-block def/use sets for virtual registers.
    defs: list[set] = [set() for _ in blocks]
    uses: list[set] = [set() for _ in blocks]
    for block_index, (start, end) in enumerate(blocks):
        for position in range(start, end):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = instr_registers(item)
            for pos in use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg) and reg not in defs[block_index]:
                    uses[block_index].add(reg)
            for pos in def_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    defs[block_index].add(reg)

    live_in: list[set] = [set() for _ in blocks]
    live_out: list[set] = [set() for _ in blocks]
    changed = True
    while changed:
        changed = False
        for block_index in range(len(blocks) - 1, -1, -1):
            out = set()
            for succ in successors(block_index):
                out |= live_in[succ]
            new_in = uses[block_index] | (out - defs[block_index])
            if out != live_out[block_index] or new_in != live_in[block_index]:
                live_out[block_index] = out
                live_in[block_index] = new_in
                changed = True

    intervals: dict[str, LiveInterval] = {}

    def touch(vreg: str, position: int) -> None:
        interval = intervals.get(vreg)
        if interval is None:
            intervals[vreg] = LiveInterval(vreg, position, position)
        else:
            interval.start = min(interval.start, position)
            interval.end = max(interval.end, position)

    for block_index, (start, end) in enumerate(blocks):
        for vreg in live_in[block_index]:
            touch(vreg, start)
        for vreg in live_out[block_index]:
            touch(vreg, end - 1)
        for position in range(start, end):
            item = body[position]
            if not isinstance(item, MachineInstr):
                continue
            def_positions, use_positions = instr_registers(item)
            for pos in def_positions + use_positions:
                reg = item.operands[pos]
                if _is_vreg(reg):
                    touch(reg, position)

    # Mark intervals that are live across a call (they need callee-saved regs).
    call_positions = [i for i, item in enumerate(body)
                      if isinstance(item, MachineInstr) and item.opcode in ("call", "ecall")]
    for interval in intervals.values():
        interval.crosses_call = any(interval.start < p < interval.end
                                    for p in call_positions)
    return intervals


class LinearScanAllocator:
    """Classic linear-scan register allocation with furthest-end spilling."""

    def __init__(self, asm: AssemblyFunction):
        self.asm = asm
        self.used_callee_saved: set[str] = set()
        self.spill_slots: dict[str, int] = {}
        self.next_spill_slot = 0

    def run(self) -> None:
        body = self.asm.body
        intervals = compute_live_intervals(body)
        ordered = sorted(intervals.values(), key=lambda iv: iv.start)

        active: list[LiveInterval] = []
        free_caller = list(ALLOCATABLE_CALLER)
        free_callee = list(ALLOCATABLE_CALLEE)

        def expire(position: int) -> None:
            for interval in list(active):
                if interval.end < position:
                    active.remove(interval)
                    if interval.assigned in ALLOCATABLE_CALLER:
                        free_caller.append(interval.assigned)
                    elif interval.assigned in ALLOCATABLE_CALLEE:
                        free_callee.append(interval.assigned)

        for interval in ordered:
            expire(interval.start)
            pools = ([free_callee, free_caller] if interval.crosses_call
                     else [free_caller, free_callee])
            register = None
            for pool in pools:
                if pool:
                    # Don't give a caller-saved register to a call-crossing range.
                    if interval.crosses_call and pool is free_caller:
                        continue
                    register = pool.pop(0)
                    break
            if register is not None:
                interval.assigned = register
                if register in CALLEE_SAVED:
                    self.used_callee_saved.add(register)
                active.append(interval)
                continue
            # Spill: choose between this interval and the active one ending last.
            candidates = [iv for iv in active
                          if not interval.crosses_call or iv.assigned in CALLEE_SAVED]
            victim = max(candidates, key=lambda iv: iv.end, default=None)
            if victim is not None and victim.end > interval.end:
                interval.assigned = victim.assigned
                active.remove(victim)
                active.append(interval)
                victim.assigned = None
                self._assign_spill_slot(victim)
            else:
                self._assign_spill_slot(interval)

        self._rewrite(intervals)

    def _assign_spill_slot(self, interval: LiveInterval) -> None:
        if interval.vreg not in self.spill_slots:
            self.spill_slots[interval.vreg] = self.asm.frame_size + 4 * self.next_spill_slot
            self.next_spill_slot += 1
        interval.spill_slot = self.spill_slots[interval.vreg]

    def _rewrite(self, intervals: dict[str, LiveInterval]) -> None:
        """Replace virtual registers with physical ones; insert spill code."""
        assignment = {iv.vreg: iv.assigned for iv in intervals.values()}
        spills = {iv.vreg: iv.spill_slot for iv in intervals.values()
                  if iv.assigned is None}

        new_body: list = []
        for item in self.asm.body:
            if not isinstance(item, MachineInstr):
                new_body.append(item)
                continue
            def_positions, use_positions = instr_registers(item)
            scratch_pool = list(SPILL_SCRATCH)
            reloads: list[MachineInstr] = []
            stores: list[MachineInstr] = []
            replacements: dict[int, str] = {}

            for pos in use_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                else:
                    slot = spills.get(reg, 0)
                    scratch = scratch_pool.pop(0) if scratch_pool else SPILL_SCRATCH[0]
                    reloads.append(MachineInstr("lw", [scratch, slot, "sp"],
                                                comment=f"reload {reg}"))
                    replacements[pos] = scratch

            for pos in def_positions:
                reg = item.operands[pos]
                if not _is_vreg(reg):
                    continue
                if assignment.get(reg):
                    replacements[pos] = assignment[reg]
                else:
                    slot = spills.get(reg, 0)
                    scratch = SPILL_SCRATCH[-1]
                    replacements[pos] = scratch
                    stores.append(MachineInstr("sw", [scratch, slot, "sp"],
                                               comment=f"spill {reg}"))

            for pos, reg in replacements.items():
                item.operands[pos] = reg
            new_body.extend(reloads)
            new_body.append(item)
            new_body.extend(stores)

        self.asm.body = new_body
        self.asm.frame_size += 4 * self.next_spill_slot


def finalize_frame(asm: AssemblyFunction, used_callee_saved: set[str]) -> None:
    """Insert the prologue/epilogue and expand ``ret`` pseudo-instructions."""
    saved = sorted(used_callee_saved) + ["ra"]
    frame = asm.frame_size + 4 * len(saved)
    frame = (frame + 15) & ~15  # 16-byte stack alignment, as the RISC-V ABI requires
    save_base = asm.frame_size

    prologue: list[MachineInstr] = []
    if frame:
        prologue.append(MachineInstr("addi", ["sp", "sp", -frame], comment="prologue"))
    for index, reg in enumerate(saved):
        prologue.append(MachineInstr("sw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"save {reg}"))

    epilogue: list[MachineInstr] = []
    for index, reg in enumerate(saved):
        epilogue.append(MachineInstr("lw", [reg, save_base + 4 * index, "sp"],
                                     comment=f"restore {reg}"))
    if frame:
        epilogue.append(MachineInstr("addi", ["sp", "sp", frame], comment="epilogue"))
    epilogue.append(MachineInstr("jalr", ["zero", "ra", 0], comment="return"))

    new_body: list = list(prologue)
    for item in asm.body:
        if isinstance(item, MachineInstr) and item.opcode == "ret":
            new_body.extend(MachineInstr(i.opcode, list(i.operands), i.comment)
                            for i in epilogue)
        else:
            new_body.append(item)
    asm.body = new_body
    asm.frame_size = frame


def allocate_registers(asm: AssemblyFunction) -> AssemblyFunction:
    """Run register allocation and frame finalization on a lowered function."""
    allocator = LinearScanAllocator(asm)
    allocator.run()
    finalize_frame(asm, allocator.used_callee_saved)
    return asm
