"""RV32IM instruction and register definitions used by the backend and emulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# -- registers ---------------------------------------------------------------
#: ABI register names, indexed by register number.
REGISTER_NAMES = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]
REGISTER_NUMBERS = {name: i for i, name in enumerate(REGISTER_NAMES)}

#: Registers the register allocator may assign to virtual registers.
ALLOCATABLE = [
    "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
]
CALLER_SAVED = frozenset(["ra", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
                          "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"])
CALLEE_SAVED = frozenset(["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
                          "s8", "s9", "s10", "s11"])
ARGUMENT_REGISTERS = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]

# -- opcode classes ------------------------------------------------------------
ALU_OPS = frozenset([
    "add", "addi", "sub", "and", "andi", "or", "ori", "xor", "xori",
    "sll", "slli", "srl", "srli", "sra", "srai",
    "slt", "slti", "sltu", "sltiu", "lui", "auipc", "li", "mv", "neg", "seqz", "snez",
])
#: Conditional-branch inversions (``taken`` and ``not taken`` swapped),
#: shared by the lowering's copy-free-edge inversion and the peephole's
#: branch-over-jump flip so the two can never drift apart.
INVERTED_BRANCHES = {"beq": "bne", "bne": "beq", "blt": "bge", "bge": "blt",
                     "bltu": "bgeu", "bgeu": "bltu",
                     "beqz": "bnez", "bnez": "beqz"}
MUL_OPS = frozenset(["mul", "mulh", "mulhu", "mulhsu"])
DIV_OPS = frozenset(["div", "divu", "rem", "remu"])
LOAD_OPS = frozenset(["lw", "lb", "lbu", "lh", "lhu"])
STORE_OPS = frozenset(["sw", "sb", "sh"])
BRANCH_OPS = frozenset(["beq", "bne", "blt", "bge", "bltu", "bgeu", "beqz", "bnez", "j"])
JUMP_OPS = frozenset(["jal", "jalr", "call", "ret"])
SYSTEM_OPS = frozenset(["ecall", "ebreak", "nop"])


@dataclass
class MachineInstr:
    """One RISC-V instruction (or pseudo-instruction).

    ``operands`` holds register names (strings such as ``"a0"`` or virtual
    registers ``"%v12"``), integers (immediates) and label names, in the usual
    assembler order for the opcode.
    """

    opcode: str
    operands: list = field(default_factory=list)
    comment: str = ""

    def __str__(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        text = f"{self.opcode} {ops}".rstrip()
        return f"{text}    # {self.comment}" if self.comment else text

    @property
    def is_branch(self) -> bool:
        """True for conditional branches and the unconditional ``j``."""
        return self.opcode in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        """True for ``jal``/``jalr``/``call``/``ret``."""
        return self.opcode in JUMP_OPS

    @property
    def is_load(self) -> bool:
        """True for memory loads (``lw`` and the byte/half variants)."""
        return self.opcode in LOAD_OPS

    @property
    def is_store(self) -> bool:
        """True for memory stores (``sw``/``sb``/``sh``)."""
        return self.opcode in STORE_OPS

    @property
    def is_terminator_like(self) -> bool:
        """True when the instruction ends a machine basic block."""
        return self.is_branch or self.is_jump


@dataclass
class Label:
    """A branch target inside a function's instruction stream."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class AssemblyFunction:
    """Lowered machine code for one function.

    ``label_depths`` maps each block label to its IR loop depth (0 = not in a
    loop); the lowering records it so the register allocator can weight spill
    decisions by how hot a use position is without re-deriving loop structure
    at the machine level.
    """

    name: str
    body: list = field(default_factory=list)  # MachineInstr | Label
    frame_size: int = 0
    label_depths: dict = field(default_factory=dict)  # label name -> loop depth

    def instructions(self) -> list[MachineInstr]:
        """The function's instructions, with labels filtered out."""
        return [item for item in self.body if isinstance(item, MachineInstr)]

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        for item in self.body:
            if isinstance(item, Label):
                lines.append(f"{item.name}:")
            else:
                lines.append(f"    {item}")
        return "\n".join(lines)


@dataclass
class AssemblyProgram:
    """A fully lowered module: functions plus global data layout.

    Programs compiled by the optimizing backend additionally carry a
    ``backend_stats`` attribute (per-function static counts, spill and
    peephole statistics) — see :func:`repro.backend.compile_module`.
    """

    functions: dict[str, AssemblyFunction] = field(default_factory=dict)
    globals_layout: dict[str, int] = field(default_factory=dict)  # name -> address
    globals_init: dict[int, int] = field(default_factory=dict)    # address -> word
    data_end: int = 0

    def total_static_instructions(self) -> int:
        """Static instruction count across all functions (labels excluded)."""
        return sum(len(f.instructions()) for f in self.functions.values())

    def __getstate__(self) -> dict:
        # The emulator caches its decoded instruction stream on the program
        # (see repro.emulator.decoder.decode_program); the stream holds bound
        # callables, so drop it from pickles — it is re-decoded on demand.
        state = self.__dict__.copy()
        state.pop("_decoded_cache", None)
        return state

    def __str__(self) -> str:
        parts = [f"# data end: {hex(self.data_end)}"]
        for name, addr in self.globals_layout.items():
            parts.append(f"# {name} @ {hex(addr)}")
        parts.extend(str(f) for f in self.functions.values())
        return "\n\n".join(parts)


#: Precomputed opcode -> class table.  The emulator's decoder and the cost
#: models share this so classification is a single dict probe instead of a
#: linear membership chain.
OPCODE_CLASS: dict[str, str] = {}
for _ops, _cls in ((ALU_OPS, "alu"), (MUL_OPS, "mul"), (DIV_OPS, "div"),
                   (LOAD_OPS, "load"), (STORE_OPS, "store"),
                   (BRANCH_OPS, "branch"), (JUMP_OPS, "jump"),
                   (SYSTEM_OPS, "system")):
    for _op in _ops:
        OPCODE_CLASS[_op] = _cls
del _ops, _cls, _op


class UnknownOpcodeError(ValueError):
    """An opcode with no ``OPCODE_CLASS`` entry.

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    call sites keep working; carries the offending mnemonic as ``opcode``
    so batch tooling (encoder coverage tests, fuzz triage) can report
    *which* opcode fell through instead of parsing the message.
    """

    def __init__(self, opcode: str):
        super().__init__(f"unknown opcode: {opcode!r} (no OPCODE_CLASS entry; "
                         f"add it to the opcode sets in repro.backend.isa)")
        self.opcode = opcode


def classify(opcode: str) -> str:
    """Coarse instruction class used by the cost models.

    Raises :class:`UnknownOpcodeError` for mnemonics outside the ISA.
    """
    try:
        return OPCODE_CLASS[opcode]
    except KeyError:
        raise UnknownOpcodeError(opcode) from None
