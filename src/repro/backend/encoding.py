"""Real RV32I binary encoding for lowered :class:`AssemblyProgram`\\ s.

The backend stops at textual assembly; this module turns that assembly into
actual machine words so code size is a measurable artifact, not a string
convention:

* :func:`encode_program` expands every pseudo-instruction into canonical
  RV32I *atoms* (``li`` into ``addi``/``lui``+``addi``, ``call`` into
  ``jal ra``, ``ret`` into ``jalr zero, ra, 0``, ...), lays the atoms out at
  byte addresses, resolves label and call relocations, and packs each atom
  through the R/I/S/B/U/J bitfield encoders.  Conditional branches whose
  target drifts outside the ±4 KiB B-format range are relaxed into an
  inverted branch over a ``jal`` (one atom, eight bytes); relaxation and RVC
  widening are monotone, so the address-assignment fixpoint terminates.
* With ``rvc=True`` eligible atoms are rewritten into 16-bit compressed
  halfwords via :mod:`repro.backend.rvc`; branch/jump compression depends on
  the very offsets that compression changes, so sizing iterates until stable.
* :func:`decode_words` is the matching disassembler: it turns the byte blob
  back into :class:`EncodedInstr` atoms, and :func:`encode_one` re-encodes a
  decoded atom so tests can assert encode → decode → re-encode is
  byte-identical.
* :func:`reassemble` lifts a decoded stream back into an
  :class:`AssemblyProgram` the emulator can run, closing the loop against
  :mod:`repro.emulator.decoder` semantics.

The module deliberately depends only on :mod:`repro.backend.isa` (and
:mod:`repro.backend.rvc`): the emulator imports the backend package, so
importing the emulator from here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from . import rvc as _rvc
from .isa import (AssemblyFunction, AssemblyProgram, INVERTED_BRANCHES, Label,
                  MachineInstr, REGISTER_NUMBERS)

#: Where the text segment starts.  Anything below ``DATA_SEGMENT_BASE``
#: (0x10000) works; 0x1000 leaves a null page unmapped like a real linker.
BASE_ADDRESS = 0x1000


# -- errors --------------------------------------------------------------------
class EncodeError(Exception):
    """Base class for every binary-encoding failure."""


class UnsupportedOpcodeError(EncodeError):
    """An opcode with no RV32 encoding (carries ``.opcode``)."""

    def __init__(self, opcode: str):
        super().__init__(f"no RV32 binary encoding for opcode {opcode!r}")
        self.opcode = opcode


class UnencodableOperandError(EncodeError):
    """An operand that cannot appear in a machine word (e.g. a vreg)."""


class ImmediateRangeError(EncodeError):
    """An immediate outside its bitfield's range."""


class RelocationError(EncodeError):
    """A label or call target that does not resolve."""


class DisassemblyError(EncodeError):
    """A 32-bit word outside the encoded subset."""


# -- bitfield packers ----------------------------------------------------------
def _reg(name) -> int:
    number = REGISTER_NUMBERS.get(name)
    if number is None:
        raise UnencodableOperandError(
            f"{name!r} is not a physical RV32 register")
    return number


def _signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not isinstance(value, int) or isinstance(value, bool):
        raise UnencodableOperandError(f"{what} must be an integer, got "
                                      f"{value!r}")
    if not lo <= value <= hi:
        raise ImmediateRangeError(
            f"{what} {value} outside [{lo}, {hi}]")
    return value & ((1 << bits) - 1)


def _even(offset: int, bits: int, what: str) -> int:
    if offset % 2:
        raise ImmediateRangeError(f"{what} {offset} is not 2-byte aligned")
    return _signed(offset, bits, what)


def encode_r(funct7: int, rs2: int, rs1: int, funct3: int, rd: int) -> int:
    return (funct7 << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12 | rd << 7
            | 0x33)


def encode_i(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (_signed(imm, 12, "I-type immediate") << 20 | rs1 << 15
            | funct3 << 12 | rd << 7 | opcode)


def encode_s(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    imm12 = _signed(imm, 12, "S-type immediate")
    return ((imm12 >> 5) << 25 | rs2 << 20 | rs1 << 15 | funct3 << 12
            | (imm12 & 0x1F) << 7 | 0x23)


def encode_b(offset: int, rs2: int, rs1: int, funct3: int) -> int:
    imm13 = _even(offset, 13, "branch offset")
    return (((imm13 >> 12) & 1) << 31 | ((imm13 >> 5) & 0x3F) << 25
            | rs2 << 20 | rs1 << 15 | funct3 << 12
            | ((imm13 >> 1) & 0xF) << 8 | ((imm13 >> 11) & 1) << 7 | 0x63)


def encode_u(imm: int, rd: int, opcode: int) -> int:
    if not isinstance(imm, int) or isinstance(imm, bool):
        raise UnencodableOperandError(f"U-type immediate must be an integer, "
                                      f"got {imm!r}")
    if not -(1 << 19) <= imm < (1 << 20):
        raise ImmediateRangeError(
            f"U-type immediate {imm} outside [-524288, 1048575]")
    return (imm & 0xFFFFF) << 12 | rd << 7 | opcode


def encode_j(offset: int, rd: int) -> int:
    imm21 = _even(offset, 21, "jal offset")
    return (((imm21 >> 20) & 1) << 31 | ((imm21 >> 1) & 0x3FF) << 21
            | ((imm21 >> 11) & 1) << 20 | ((imm21 >> 12) & 0xFF) << 12
            | rd << 7 | 0x6F)


# -- opcode tables -------------------------------------------------------------
_R_FUNCT = {
    "add": (0x00, 0), "sub": (0x20, 0), "sll": (0x00, 1), "slt": (0x00, 2),
    "sltu": (0x00, 3), "xor": (0x00, 4), "srl": (0x00, 5), "sra": (0x20, 5),
    "or": (0x00, 6), "and": (0x00, 7),
    "mul": (0x01, 0), "mulh": (0x01, 1), "mulhsu": (0x01, 2),
    "mulhu": (0x01, 3), "div": (0x01, 4), "divu": (0x01, 5),
    "rem": (0x01, 6), "remu": (0x01, 7),
}
_I_FUNCT = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_SHIFT_FUNCT = {"slli": (0x00, 1), "srli": (0x00, 5), "srai": (0x20, 5)}
_LOAD_FUNCT = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_FUNCT = {"sb": 0, "sh": 1, "sw": 2}
_BRANCH_FUNCT = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

_R_NAME = {v: k for k, v in _R_FUNCT.items()}
_I_NAME = {v: k for k, v in _I_FUNCT.items()}
_LOAD_NAME = {v: k for k, v in _LOAD_FUNCT.items()}
_STORE_NAME = {v: k for k, v in _STORE_FUNCT.items()}
_BRANCH_NAME = {v: k for k, v in _BRANCH_FUNCT.items()}

#: Every opcode :func:`encode_program` accepts on a ``MachineInstr``
#: (canonical forms plus the pseudo-instructions it expands).
ENCODABLE_OPCODES = frozenset(
    list(_R_FUNCT) + list(_I_FUNCT) + list(_SHIFT_FUNCT) + list(_LOAD_FUNCT)
    + list(_STORE_FUNCT) + list(_BRANCH_FUNCT)
    + ["lui", "auipc", "jal", "jalr", "ecall", "ebreak",
       "li", "mv", "neg", "seqz", "snez", "nop",
       "beqz", "bnez", "j", "call", "ret"])


def supports(opcode: str) -> bool:
    """True when :func:`encode_program` can encode ``opcode``."""
    return opcode in ENCODABLE_OPCODES


# -- canonical atoms -----------------------------------------------------------
@dataclass
class _Atom:
    """One canonical RV32 instruction between expansion and emission.

    ``relaxed`` (branch became branch-over-``jal``) and ``wide`` (RVC
    candidate forced back to 32 bits) are monotone: once set they stay set,
    which is what makes the layout fixpoint terminate.
    """

    opcode: str
    operands: tuple
    target: Optional[str] = None      # label or function symbol
    is_call: bool = False             # target names a function entry
    source: int = -1                  # flat MachineInstr index
    size: int = 4
    address: int = 0
    relaxed: bool = False
    wide: bool = False
    target_index: Optional[int] = None


@dataclass
class EncodedInstr:
    """One emitted machine word (or halfword) with its decoded meaning."""

    address: int
    size: int                         # 2 or 4 bytes
    word: int
    opcode: str
    operands: tuple
    target: Optional[int] = None      # absolute address for branches/jumps
    source: int = field(default=-1, compare=False)

    def __str__(self) -> str:
        word = f"{self.word:08x}" if self.size == 4 else f"    {self.word:04x}"
        ops = ", ".join(str(o) for o in self.operands)
        text = f"{self.address:#07x}:  {word}  {self.opcode} {ops}".rstrip()
        if self.target is not None:
            text += f" -> {self.target:#x}"
        return text


@dataclass
class EncodedProgram:
    """A fully encoded program: the byte blob plus its symbol/size tables."""

    instrs: list
    blob: bytes
    symbols: dict                     # function name -> entry address
    labels: dict                      # label name -> address
    function_sizes: dict              # function name -> bytes
    base_address: int = BASE_ADDRESS
    rvc: bool = False

    @property
    def code_bytes(self) -> int:
        return len(self.blob)

    def hexdump(self) -> str:
        entry_at = {addr: name for name, addr in self.symbols.items()}
        lines = []
        for instr in self.instrs:
            name = entry_at.get(instr.address)
            if name is not None:
                lines.append(f"{name}:")
            lines.append(f"  {instr}")
        return "\n".join(lines)


def _int_operand(value, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise UnencodableOperandError(f"{what} must be an integer, got "
                                      f"{value!r}")
    return value


def _expand(instr: MachineInstr, source: int) -> list:
    """Pseudo-expansion: one ``MachineInstr`` into canonical atoms.

    Expansions only use opcodes :mod:`repro.emulator.decoder` executes
    (never ``auipc``), so a reassembled round-trip stays runnable.
    """
    op, ops = instr.opcode, instr.operands

    def atom(opcode, operands, target=None, is_call=False):
        return _Atom(opcode, tuple(operands), target=target, is_call=is_call,
                     source=source)

    if op in _R_FUNCT:
        if op in ("add", "xor", "or", "and") \
                and ops[0] == ops[2] and ops[0] != ops[1]:
            # Commutative canonicalization: rd==rs2 blocks the 2-address
            # compressed forms (c.add needs rd==rs1), so swap the sources.
            return [atom(op, (ops[0], ops[2], ops[1]))]
        return [atom(op, (ops[0], ops[1], ops[2]))]
    if op in _I_FUNCT:
        return [atom(op, (ops[0], ops[1], _int_operand(ops[2], f"{op} immediate")))]
    if op in _SHIFT_FUNCT:
        shamt = _int_operand(ops[2], f"{op} shift amount") & 31
        return [atom(op, (ops[0], ops[1], shamt))]
    if op in _LOAD_FUNCT:
        return [atom(op, (ops[0], _int_operand(ops[1], "load offset"), ops[2]))]
    if op in _STORE_FUNCT:
        return [atom(op, (ops[0], _int_operand(ops[1], "store offset"), ops[2]))]
    if op in _BRANCH_FUNCT:
        return [atom(op, (ops[0], ops[1]), target=ops[2])]
    if op in ("beqz", "bnez"):
        return [atom("beq" if op == "beqz" else "bne", (ops[0], "zero"),
                     target=ops[1])]
    if op == "j":
        return [atom("jal", ("zero",), target=ops[0])]
    if op == "jal":
        return [atom("jal", (ops[0],), target=ops[1])]
    if op == "call":
        return [atom("jal", ("ra",), target=ops[0], is_call=True)]
    if op == "ret":
        return [atom("jalr", ("zero", "ra", 0))]
    if op == "jalr":
        return [atom("jalr", (ops[0], ops[1],
                              _int_operand(ops[2], "jalr offset")))]
    if op == "lui":
        return [atom("lui", (ops[0], _int_operand(ops[1], "lui immediate")))]
    if op == "auipc":
        return [atom("auipc", (ops[0],
                               _int_operand(ops[1], "auipc immediate")))]
    if op == "li":
        value = _int_operand(ops[1], "li immediate") & 0xFFFFFFFF
        if value >= 1 << 31:
            value -= 1 << 32
        if -2048 <= value <= 2047:
            return [atom("addi", (ops[0], "zero", value))]
        low = value & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        high = ((value - low) >> 12) & 0xFFFFF
        if low == 0:
            return [atom("lui", (ops[0], high))]
        return [atom("lui", (ops[0], high)),
                atom("addi", (ops[0], ops[0], low))]
    if op == "mv":
        return [atom("addi", (ops[0], ops[1], 0))]
    if op == "neg":
        return [atom("sub", (ops[0], "zero", ops[1]))]
    if op == "seqz":
        return [atom("sltiu", (ops[0], ops[1], 1))]
    if op == "snez":
        return [atom("sltu", (ops[0], "zero", ops[1]))]
    if op == "nop":
        return [atom("addi", ("zero", "zero", 0))]
    if op == "ecall":
        return [atom("ecall", ())]
    if op == "ebreak":
        return [atom("ebreak", ())]
    raise UnsupportedOpcodeError(op)


def _encode32(opcode: str, operands: tuple,
              offset: Optional[int] = None) -> int:
    """Pack one canonical atom into a 32-bit word."""
    if opcode in _R_FUNCT:
        funct7, funct3 = _R_FUNCT[opcode]
        rd, rs1, rs2 = operands
        return encode_r(funct7, _reg(rs2), _reg(rs1), funct3, _reg(rd))
    if opcode in _I_FUNCT:
        rd, rs1, imm = operands
        return encode_i(imm, _reg(rs1), _I_FUNCT[opcode], _reg(rd), 0x13)
    if opcode in _SHIFT_FUNCT:
        funct7, funct3 = _SHIFT_FUNCT[opcode]
        rd, rs1, shamt = operands
        if not 0 <= shamt <= 31:
            raise ImmediateRangeError(f"shift amount {shamt} outside [0, 31]")
        return (funct7 << 25 | shamt << 20 | _reg(rs1) << 15 | funct3 << 12
                | _reg(rd) << 7 | 0x13)
    if opcode in _LOAD_FUNCT:
        rd, off, base = operands
        return encode_i(off, _reg(base), _LOAD_FUNCT[opcode], _reg(rd), 0x03)
    if opcode in _STORE_FUNCT:
        rs2, off, base = operands
        return encode_s(off, _reg(rs2), _reg(base), _STORE_FUNCT[opcode])
    if opcode in _BRANCH_FUNCT:
        rs1, rs2 = operands
        return encode_b(offset, _reg(rs2), _reg(rs1), _BRANCH_FUNCT[opcode])
    if opcode == "jal":
        (rd,) = operands
        return encode_j(offset, _reg(rd))
    if opcode == "jalr":
        rd, base, imm = operands
        return encode_i(imm, _reg(base), 0, _reg(rd), 0x67)
    if opcode == "lui":
        rd, imm = operands
        return encode_u(imm, _reg(rd), 0x37)
    if opcode == "auipc":
        rd, imm = operands
        return encode_u(imm, _reg(rd), 0x17)
    if opcode == "ecall":
        return 0x00000073
    if opcode == "ebreak":
        return 0x00100073
    raise UnsupportedOpcodeError(opcode)


# -- program encoding ----------------------------------------------------------
def _collect_atoms(program: AssemblyProgram):
    """Expand the whole program; returns atoms plus symbol/label indices."""
    atoms: list = []
    function_starts: dict = {}
    function_ends: dict = {}
    label_at: dict = {}
    source = 0
    for name, function in program.functions.items():
        function_starts[name] = len(atoms)
        for item in function.body:
            if isinstance(item, Label):
                label_at[item.name] = len(atoms)
            else:
                atoms.extend(_expand(item, source))
                source += 1
        function_ends[name] = len(atoms)
    for atom in atoms:
        if atom.target is None:
            continue
        table = function_starts if atom.is_call else label_at
        index = table.get(atom.target)
        if index is None:
            kind = "function" if atom.is_call else "label"
            raise RelocationError(
                f"{kind} {atom.target!r} is referenced but never defined")
        atom.target_index = index
    return atoms, function_starts, function_ends, label_at


def _layout(atoms: list, base_address: int, rvc: bool) -> int:
    """Assign sizes and addresses; returns the end address.

    Widening (``wide``/``relaxed``) is monotone, so each iteration either
    changes nothing (done) or grows at least one atom — the loop runs at
    most ``len(atoms)`` times.
    """
    for atom in atoms:
        if rvc:
            probe = 0 if atom.target_index is not None else None
            compressed = _rvc.compress(atom.opcode, atom.operands, probe)
            atom.size = 2 if compressed is not None else 4
        else:
            atom.size = 4
    while True:
        address = base_address
        for atom in atoms:
            atom.address = address
            address += atom.size
        end_address = address
        changed = False
        for atom in atoms:
            if atom.target_index is None or atom.relaxed:
                continue
            if atom.target_index < len(atoms):
                target = atoms[atom.target_index].address
            else:
                target = end_address
            offset = target - atom.address
            if atom.size == 2 and not atom.wide:
                if _rvc.compress(atom.opcode, atom.operands, offset) is None:
                    atom.wide, atom.size, changed = True, 4, True
                    continue
            if atom.size == 4 and atom.opcode in _BRANCH_FUNCT:
                if not -4096 <= offset <= 4094:
                    atom.relaxed, atom.size, changed = True, 8, True
        if not changed:
            return end_address


def encode_program(program: AssemblyProgram, rvc: bool = False,
                   base_address: int = BASE_ADDRESS) -> EncodedProgram:
    """Encode every function of ``program`` into real RV32(C) machine words.

    Functions are laid out contiguously in dictionary order starting at
    ``base_address``; a label at the end of a function resolves to the next
    function's entry, mirroring the emulator's flattened-stream semantics.
    """
    atoms, function_starts, function_ends, label_at = _collect_atoms(program)
    end_address = _layout(atoms, base_address, rvc)

    def address_of(index: int) -> int:
        return atoms[index].address if index < len(atoms) else end_address

    instrs = []
    blob = bytearray()
    for atom in atoms:
        target = (address_of(atom.target_index)
                  if atom.target_index is not None else None)
        if atom.relaxed:
            inverted = INVERTED_BRANCHES[atom.opcode]
            over = atom.address + 8
            instrs.append(EncodedInstr(
                atom.address, 4, _encode32(inverted, atom.operands, 8),
                inverted, atom.operands, target=over, source=atom.source))
            jal_address = atom.address + 4
            instrs.append(EncodedInstr(
                jal_address, 4,
                _encode32("jal", ("zero",), target - jal_address),
                "jal", ("zero",), target=target, source=atom.source))
        else:
            offset = target - atom.address if target is not None else None
            if atom.size == 2:
                word = _rvc.compress(atom.opcode, atom.operands, offset)
                if word is None:  # layout() guarantees eligibility
                    raise EncodeError(
                        f"layout marked {atom.opcode} compressed but "
                        f"compression failed at {atom.address:#x}")
            else:
                word = _encode32(atom.opcode, atom.operands, offset)
            instrs.append(EncodedInstr(atom.address, atom.size, word,
                                       atom.opcode, atom.operands,
                                       target=target, source=atom.source))
    for instr in instrs:
        blob += instr.word.to_bytes(instr.size, "little")

    symbols = {name: address_of(index)
               for name, index in function_starts.items()}
    function_sizes = {
        name: (address_of(function_ends[name]) - address_of(start))
        for name, start in function_starts.items()}
    labels = {name: address_of(index) for name, index in label_at.items()}
    return EncodedProgram(instrs=instrs, blob=bytes(blob), symbols=symbols,
                          labels=labels, function_sizes=function_sizes,
                          base_address=base_address, rvc=rvc)


# -- disassembly ---------------------------------------------------------------
def _decode32(word: int):
    """Invert :func:`_encode32`: ``(opcode, operands, offset_or_None)``."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    names = _rvc.REGISTER_NAMES

    def imm_i():
        imm = word >> 20
        return imm - 4096 if imm & 0x800 else imm

    if opcode == 0x33:
        name = _R_NAME.get((funct7, funct3))
        if name is None:
            raise DisassemblyError(f"unknown R-type word {word:#010x}")
        return name, (names[rd], names[rs1], names[rs2]), None
    if opcode == 0x13:
        if funct3 == 1 or funct3 == 5:
            shamt = rs2
            if funct3 == 1 and funct7 == 0x00:
                name = "slli"
            elif funct3 == 5 and funct7 == 0x00:
                name = "srli"
            elif funct3 == 5 and funct7 == 0x20:
                name = "srai"
            else:
                raise DisassemblyError(f"unknown shift word {word:#010x}")
            return name, (names[rd], names[rs1], shamt), None
        return _I_NAME[funct3], (names[rd], names[rs1], imm_i()), None
    if opcode == 0x03:
        name = _LOAD_NAME.get(funct3)
        if name is None:
            raise DisassemblyError(f"unknown load word {word:#010x}")
        return name, (names[rd], imm_i(), names[rs1]), None
    if opcode == 0x23:
        name = _STORE_NAME.get(funct3)
        if name is None:
            raise DisassemblyError(f"unknown store word {word:#010x}")
        imm = (funct7 << 5) | rd
        imm = imm - 4096 if imm & 0x800 else imm
        return name, (names[rs2], imm, names[rs1]), None
    if opcode == 0x63:
        name = _BRANCH_NAME.get(funct3)
        if name is None:
            raise DisassemblyError(f"unknown branch word {word:#010x}")
        offset = (((word >> 31) & 1) << 12 | ((word >> 7) & 1) << 11
                  | ((word >> 25) & 0x3F) << 5 | ((word >> 8) & 0xF) << 1)
        offset = offset - 8192 if offset & 0x1000 else offset
        return name, (names[rs1], names[rs2]), offset
    if opcode == 0x37:
        return "lui", (names[rd], (word >> 12) & 0xFFFFF), None
    if opcode == 0x17:
        return "auipc", (names[rd], (word >> 12) & 0xFFFFF), None
    if opcode == 0x6F:
        offset = (((word >> 31) & 1) << 20 | ((word >> 12) & 0xFF) << 12
                  | ((word >> 20) & 1) << 11 | ((word >> 21) & 0x3FF) << 1)
        offset = offset - (1 << 21) if offset & (1 << 20) else offset
        return "jal", (names[rd],), offset
    if opcode == 0x67:
        if funct3 != 0:
            raise DisassemblyError(f"unknown jalr word {word:#010x}")
        return "jalr", (names[rd], names[rs1], imm_i()), None
    if opcode == 0x73:
        if word == 0x00000073:
            return "ecall", (), None
        if word == 0x00100073:
            return "ebreak", (), None
        raise DisassemblyError(f"unknown system word {word:#010x}")
    raise DisassemblyError(f"unknown major opcode in word {word:#010x}")


def decode_words(blob: Union[bytes, bytearray],
                 base_address: int = BASE_ADDRESS) -> list:
    """Disassemble a byte blob back into :class:`EncodedInstr` atoms.

    16-bit halfwords (low two bits != ``11``) go through
    :func:`repro.backend.rvc.decode_compressed`; everything else is a 32-bit
    word.  Branch/jump offsets come back as absolute ``target`` addresses.
    """
    data = bytes(blob)
    instrs = []
    index = 0
    while index < len(data):
        if index + 2 > len(data):
            raise DisassemblyError(f"trailing byte at offset {index}")
        address = base_address + index
        half = data[index] | data[index + 1] << 8
        if half & 0b11 == 0b11:
            if index + 4 > len(data):
                raise DisassemblyError(
                    f"truncated 32-bit instruction at offset {index}")
            word = int.from_bytes(data[index:index + 4], "little")
            opcode, operands, rel = _decode32(word)
            size = 4
        else:
            word, size = half, 2
            opcode, operands, rel = _rvc.decode_compressed(half)
        target = address + rel if rel is not None else None
        instrs.append(EncodedInstr(address, size, word, opcode, operands,
                                   target=target))
        index += size
    return instrs


def fold_relaxed_branches(instrs: list) -> list:
    """The ``(opcode, operands)`` stream with far-branch relaxation undone.

    Relaxation rewrites ``branch target`` into ``inverted-branch +8; jal
    zero, target`` when the offset exceeds the B-format's ±4 KiB.  Whether
    it fires depends on layout, so an RVC-compressed program (smaller, so
    offsets shrink) may relax fewer branches than its uncompressed twin.
    Folding each pair back into the original conditional jump gives a
    layout-independent stream the round-trip tests can compare
    instruction for instruction across encodings.
    """
    out = []
    index = 0
    while index < len(instrs):
        cur = instrs[index]
        nxt = instrs[index + 1] if index + 1 < len(instrs) else None
        if (nxt is not None and cur.opcode in _BRANCH_FUNCT
                and nxt.opcode == "jal" and nxt.operands == ("zero",)
                and cur.target == nxt.address + nxt.size):
            out.append((INVERTED_BRANCHES[cur.opcode], cur.operands))
            index += 2
            continue
        out.append((cur.opcode, cur.operands))
        index += 1
    return out


def encode_one(instr: EncodedInstr) -> int:
    """Re-encode a (possibly decoded) :class:`EncodedInstr` to its word."""
    offset = (instr.target - instr.address
              if instr.target is not None else None)
    if instr.size == 2:
        word = _rvc.compress(instr.opcode, instr.operands, offset)
        if word is None:
            raise EncodeError(f"{instr.opcode} {instr.operands} at "
                              f"{instr.address:#x} is not compressible")
        return word
    return _encode32(instr.opcode, instr.operands, offset)


# -- reassembly ----------------------------------------------------------------
def reassemble(instrs: list, symbols: dict,
               like: Optional[AssemblyProgram] = None) -> AssemblyProgram:
    """Lift a decoded instruction stream back into an ``AssemblyProgram``.

    ``jal ra`` to a function entry becomes ``call``; every other resolved
    target becomes a local label.  ``like`` supplies the data segment
    (globals layout/init) so the emulator can run the result.
    """
    entry_at = {address: name for name, address in symbols.items()}
    if not entry_at:
        raise RelocationError("reassemble needs at least one symbol")
    label_addresses = set()
    for instr in instrs:
        if instr.target is None:
            continue
        if (instr.opcode == "jal" and instr.operands[0] == "ra"
                and instr.target in entry_at):
            continue
        label_addresses.add(instr.target)
    label_name = {address: f".L{address:05x}" for address in label_addresses}

    program = AssemblyProgram()
    if like is not None:
        program.globals_layout = dict(like.globals_layout)
        program.globals_init = dict(like.globals_init)
        program.data_end = like.data_end
    function = None
    for instr in instrs:
        entry = entry_at.get(instr.address)
        if entry is not None:
            function = AssemblyFunction(name=entry)
            program.functions[entry] = function
        if function is None:
            raise RelocationError(
                f"instruction at {instr.address:#x} precedes every symbol")
        label = label_name.get(instr.address)
        if label is not None:
            function.body.append(Label(label))
        function.body.append(_lift(instr, entry_at, label_name))
    return program


def _lift(instr: EncodedInstr, entry_at: dict, label_name: dict):
    opcode, operands = instr.opcode, instr.operands
    if opcode == "jal":
        (rd,) = operands
        if rd == "ra" and instr.target in entry_at:
            return MachineInstr("call", [entry_at[instr.target]])
        label = label_name[instr.target]
        if rd == "zero":
            return MachineInstr("j", [label])
        return MachineInstr("jal", [rd, label])
    if opcode in _BRANCH_FUNCT:
        return MachineInstr(opcode, [operands[0], operands[1],
                                     label_name[instr.target]])
    return MachineInstr(opcode, list(operands))


# -- code-size reporting -------------------------------------------------------
def code_size_report(program: AssemblyProgram) -> dict:
    """Byte-accurate code sizes (plain RV32 and RVC), cached on the program."""
    cached = getattr(program, "_code_sizes", None)
    if cached is not None:
        return cached
    plain = encode_program(program)
    packed = encode_program(program, rvc=True)
    report = {
        "rv32": plain.code_bytes,
        "rvc": packed.code_bytes,
        "functions": {
            name: {"rv32": plain.function_sizes[name],
                   "rvc": packed.function_sizes[name]}
            for name in plain.function_sizes},
    }
    program._code_sizes = report
    return report
